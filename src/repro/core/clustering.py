"""Disjoint clusterings of a dataset.

A matching solution outputs a disjoint clustering ``{C1, C2, ...}`` of
the dataset ``D``; an equivalent representation is the set of all
intra-cluster pairs ``E ⊆ [D]^2``, which forms a transitively closed
identity-link network (Section 1.2).  This module provides conversions
between the two representations, transitive closure of arbitrary pair
sets, and clustering intersection.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from itertools import combinations

from repro.core.pairs import Pair, make_pair
from repro.core.unionfind import PairCountingUnionFind

__all__ = ["Clustering", "transitive_closure", "closure_distance"]


class Clustering:
    """A disjoint clustering of record ids.

    Singleton clusters may be omitted: a clustering is interpreted
    relative to a dataset, and every record not mentioned in any cluster
    implicitly forms its own singleton cluster.  ``Clustering`` instances
    are immutable after construction.
    """

    def __init__(self, clusters: Iterable[Iterable[str]]) -> None:
        materialized: list[tuple[str, ...]] = []
        membership: dict[str, int] = {}
        for cluster in clusters:
            members = tuple(sorted(set(cluster)))
            if not members:
                continue
            index = len(materialized)
            for record_id in members:
                if record_id in membership:
                    raise ValueError(
                        f"record {record_id!r} appears in more than one cluster"
                    )
                membership[record_id] = index
            materialized.append(members)
        self._clusters = materialized
        self._membership = membership

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Iterable[Iterable[str]]) -> "Clustering":
        """Clustering induced by the transitive closure of ``pairs``.

        This is the canonical way to turn a match set ``E`` into a
        clustering: connected components of the identity-link network.
        """
        parent: dict[str, str] = {}

        def find(x: str) -> str:
            """Root of ``element`` in the closure's union-find forest."""
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for raw in pairs:
            first, second = raw
            for record_id in (first, second):
                parent.setdefault(record_id, record_id)
            root_a, root_b = find(first), find(second)
            if root_a != root_b:
                parent[root_b] = root_a
        components: dict[str, list[str]] = {}
        for record_id in parent:
            components.setdefault(find(record_id), []).append(record_id)
        return cls(components.values())

    @classmethod
    def from_assignment(cls, assignment: dict[str, str]) -> "Clustering":
        """Clustering from a ``record_id -> cluster label`` mapping.

        This is the paper's second gold-standard format: "the gold
        standard can also be modeled within the actual dataset by adding
        an extra attribute that associates each record with its
        corresponding cluster" (Section 3.1.1).
        """
        by_label: dict[str, list[str]] = {}
        for record_id, label in assignment.items():
            by_label.setdefault(label, []).append(record_id)
        return cls(by_label.values())

    # -- container protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._clusters)

    def __iter__(self) -> Iterator[tuple[str, ...]]:
        return iter(self._clusters)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clustering):
            return NotImplemented
        return self.nontrivial_clusters() == other.nontrivial_clusters()

    def __hash__(self) -> int:
        return hash(frozenset(self.nontrivial_clusters()))

    def __repr__(self) -> str:
        return f"Clustering(clusters={len(self)}, records={len(self._membership)})"

    # -- queries -------------------------------------------------------------------

    @property
    def clusters(self) -> Sequence[tuple[str, ...]]:
        """All clusters as tuples of record ids."""
        return tuple(self._clusters)

    def nontrivial_clusters(self) -> frozenset[tuple[str, ...]]:
        """Clusters with at least two members (singletons are implicit)."""
        return frozenset(c for c in self._clusters if len(c) >= 2)

    def records(self) -> set[str]:
        """All record ids explicitly mentioned by the clustering."""
        return set(self._membership)

    def cluster_of(self, record_id: str) -> tuple[str, ...]:
        """The cluster containing ``record_id`` (singleton if unmentioned)."""
        index = self._membership.get(record_id)
        if index is None:
            return (record_id,)
        return self._clusters[index]

    def cluster_index(self, record_id: str) -> int | None:
        """Index of the cluster containing ``record_id``, or ``None``."""
        return self._membership.get(record_id)

    def same_cluster(self, first: str, second: str) -> bool:
        """Whether two records are clustered together (i.e. matched)."""
        index_a = self._membership.get(first)
        if index_a is None:
            return first == second
        return index_a == self._membership.get(second)

    def pairs(self) -> set[Pair]:
        """All intra-cluster pairs: the match set ``E`` (transitively closed)."""
        result: set[Pair] = set()
        for cluster in self._clusters:
            result.update(
                make_pair(a, b) for a, b in combinations(cluster, 2)
            )
        return result

    def pair_count(self) -> int:
        """Number of intra-cluster pairs without materializing them."""
        return sum(len(c) * (len(c) - 1) // 2 for c in self._clusters)

    def cluster_sizes(self) -> list[int]:
        """Sizes of all (explicit) clusters, descending."""
        return sorted((len(c) for c in self._clusters), reverse=True)

    # -- operations ------------------------------------------------------------------

    def intersect(self, other: "Clustering") -> "Clustering":
        """The intersection clustering (meet of the two partitions).

        Each output cluster is the set of records that share both their
        cluster in ``self`` and their cluster in ``other``.  The number
        of pairs in the intersection of experiment and ground truth is
        exactly the true-positive count (Appendix D.4).
        """
        groups: dict[tuple[int | str, int | str], list[str]] = {}
        records = self.records() | other.records()
        for record_id in records:
            key_self = self._membership.get(record_id, f"s:{record_id}")
            key_other = other._membership.get(record_id, f"o:{record_id}")
            groups.setdefault((key_self, key_other), []).append(record_id)
        return Clustering(groups.values())

    def restricted_to(self, record_ids: Iterable[str]) -> "Clustering":
        """Clustering restricted to a subset of records."""
        keep = set(record_ids)
        return Clustering(
            [record_id for record_id in cluster if record_id in keep]
            for cluster in self._clusters
        )

    def relabel(self) -> dict[str, int]:
        """``record_id -> cluster index`` mapping for explicit records."""
        return dict(self._membership)


def transitive_closure(pairs: Iterable[Iterable[str]]) -> set[Pair]:
    """Transitive closure of a set of match pairs.

    Ensures that "if r1 and r2 are matches and r2 and r3 are matches,
    r1 and r3 are considered to be matches, too" (Section 1.2).
    """
    return Clustering.from_pairs(pairs).pairs()


def closure_distance(pairs: Iterable[Iterable[str]]) -> int:
    """Pairs missing for the match set to be transitively closed.

    "The minimum number of pairs that must be added to [...] the set of
    detected matches for it to be transitively closed" — one of Frost's
    no-ground-truth quality indicators (Section 3.2.3).  The larger this
    number, the more inconsistent the proposed matches.
    """
    canonical = {make_pair(*pair) for pair in pairs}
    closed = transitive_closure(canonical)
    return len(closed) - len(canonical)


def _clustering_from_unionfind(
    unionfind: PairCountingUnionFind, ids: Sequence[str]
) -> Clustering:
    """Materialize a union-find partition over numeric ids as a Clustering."""
    groups: dict[int, list[str]] = {}
    for numeric_id, native_id in enumerate(ids):
        groups.setdefault(unionfind.find(numeric_id), []).append(native_id)
    return Clustering(groups.values())
