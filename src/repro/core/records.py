"""Records, schemas, and datasets.

A :class:`Dataset` is a collection of :class:`Record` objects that may
contain duplicates (Section 1.2 of the paper).  Records carry string (or
``None``) attribute values under a shared schema.  On construction every
record is assigned a dense numeric id (its position), mirroring
Snowman's import optimization: "During import, a unique numerical ID is
assigned to each record, allowing constant time access to records"
(Section 5.3).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

__all__ = ["Record", "Dataset", "DatasetError"]


class DatasetError(ValueError):
    """Raised for malformed datasets: duplicate ids, schema violations."""


@dataclass(frozen=True)
class Record:
    """A single record of a dataset.

    Attributes
    ----------
    record_id:
        The record's native identifier (as found in the source data).
    values:
        Mapping from attribute name to value.  ``None`` and ``""`` both
        denote a missing value; profiling treats them identically.
    """

    record_id: str
    values: Mapping[str, str | None] = field(default_factory=dict)

    def value(self, attribute: str) -> str | None:
        """Return the value of ``attribute``, or ``None`` if absent/empty."""
        raw = self.values.get(attribute)
        if raw is None or raw == "":
            return None
        return raw

    def is_null(self, attribute: str) -> bool:
        """Whether ``attribute`` is missing (``None`` or empty string)."""
        return self.value(attribute) is None

    def tokens(self, attribute: str | None = None) -> list[str]:
        """Whitespace tokens of one attribute, or of all attributes.

        Tokenization by whitespace matches the paper's vocabulary
        definition (Section 3.1.3).
        """
        if attribute is not None:
            value = self.value(attribute)
            return value.split() if value else []
        tokens: list[str] = []
        for name in self.values:
            value = self.value(name)
            if value:
                tokens.extend(value.split())
        return tokens


class Dataset:
    """An ordered collection of records with a shared schema.

    Records are indexable both by native id (``dataset["r1"]``) and by
    the dense numeric id assigned at construction
    (``dataset.by_numeric(0)``).  Iteration yields records in insertion
    order.
    """

    def __init__(
        self,
        records: Iterable[Record],
        name: str = "dataset",
        attributes: Sequence[str] | None = None,
    ) -> None:
        self.name = name
        self._records: list[Record] = list(records)
        self._by_native: dict[str, int] = {}
        for index, record in enumerate(self._records):
            if record.record_id in self._by_native:
                raise DatasetError(
                    f"duplicate record id {record.record_id!r} in dataset {name!r}"
                )
            self._by_native[record.record_id] = index
        if attributes is None:
            seen: dict[str, None] = {}
            for record in self._records:
                for attribute in record.values:
                    seen.setdefault(attribute)
            attributes = list(seen)
        self.attributes: tuple[str, ...] = tuple(attributes)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __contains__(self, record_id: object) -> bool:
        return record_id in self._by_native

    def __getitem__(self, record_id: str) -> Record:
        try:
            return self._records[self._by_native[record_id]]
        except KeyError:
            raise KeyError(
                f"record id {record_id!r} not in dataset {self.name!r}"
            ) from None

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, records={len(self)}, "
            f"attributes={len(self.attributes)})"
        )

    # -- id mapping ----------------------------------------------------------

    def numeric_id(self, record_id: str) -> int:
        """Dense numeric id (0-based) assigned to ``record_id`` at import."""
        try:
            return self._by_native[record_id]
        except KeyError:
            raise KeyError(
                f"record id {record_id!r} not in dataset {self.name!r}"
            ) from None

    def native_id(self, numeric_id: int) -> str:
        """Native id for a dense numeric id."""
        return self._records[numeric_id].record_id

    def by_numeric(self, numeric_id: int) -> Record:
        """Record for a dense numeric id (constant time)."""
        return self._records[numeric_id]

    @property
    def record_ids(self) -> list[str]:
        """Native ids in insertion order."""
        return [record.record_id for record in self._records]

    # -- derived quantities ---------------------------------------------------

    def total_pairs(self) -> int:
        """``C(|D|, 2)``: the number of record pairs in ``[D]^2``."""
        n = len(self._records)
        return n * (n - 1) // 2

    def vocabulary(self) -> set[str]:
        """The whitespace-token vocabulary of the dataset (Section 3.1.3)."""
        vocab: set[str] = set()
        for record in self._records:
            vocab.update(record.tokens())
        return vocab

    def subset(self, record_ids: Iterable[str], name: str | None = None) -> "Dataset":
        """A new dataset containing only ``record_ids`` (in given order)."""
        subset_name = name if name is not None else f"{self.name}-subset"
        return Dataset(
            (self[record_id] for record_id in record_ids),
            name=subset_name,
            attributes=self.attributes,
        )

    def columnar_store(self):
        """This dataset as a :class:`repro.columnar.ColumnarStore`.

        Rows are aligned with the dense numeric ids, so ``store.row_of``
        equals :meth:`numeric_id` for every record.  Built once and
        cached — records are immutable after construction, and the
        comparison stage may ask for the store repeatedly.
        """
        store = getattr(self, "_columnar_store", None)
        if store is None:
            from repro.columnar import ColumnarStore, count_store_build

            store = ColumnarStore.from_dataset(self)
            count_store_build()
            self._columnar_store = store
        return store
