"""repro — a reproduction of Frost (VLDB 2022).

Frost is a platform for benchmarking and exploring data matching
(entity resolution) results: quality metrics, soft KPIs, systematic
result exploration, and the optimized metric/metric-diagram algorithm
of the Snowman reference implementation.

Quickstart::

    from repro import (
        Dataset, Record, Experiment, GoldStandard, FrostPlatform,
    )

    platform = FrostPlatform()
    platform.add_dataset(dataset)
    platform.add_gold(dataset.name, gold)
    platform.add_experiment(dataset.name, experiment)
    platform.metrics_table(dataset.name, gold.name)

See README.md for the architecture overview and DESIGN.md for the
paper-to-module mapping.
"""

from repro.core import (
    Clustering,
    ConfusionMatrix,
    Dataset,
    Experiment,
    GoldStandard,
    Match,
    Record,
    compute_diagram_naive_clustering,
    compute_diagram_optimized,
    metric_metric_series,
)
from repro.core.platform import FrostPlatform
from repro.engine import ExperimentEngine, JobSpec
from repro.streaming import StreamingMatcher, build_session, open_session

__version__ = "1.2.0"

__all__ = [
    "Clustering",
    "ConfusionMatrix",
    "Dataset",
    "Experiment",
    "ExperimentEngine",
    "FrostPlatform",
    "GoldStandard",
    "JobSpec",
    "Match",
    "Record",
    "StreamingMatcher",
    "__version__",
    "build_session",
    "compute_diagram_naive_clustering",
    "compute_diagram_optimized",
    "metric_metric_series",
    "open_session",
]
