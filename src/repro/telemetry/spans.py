"""Low-overhead span tracing for pipeline and serving observability.

A *span* is one named, timed unit of work — a pipeline stage, an engine
job, a comparison shard — with free-form annotations (record counts,
cache hits) and child spans.  :class:`Tracer` maintains a thread-local
span stack, so nesting falls out of lexical structure::

    with tracer.span("pipeline.run", records=len(dataset)):
        with tracer.span("pipeline.prepare"):
            ...

Crossing execution boundaries needs *explicit* context propagation,
because a thread-local stack does not follow the work:

* **thread pools** — capture :meth:`Tracer.context` on the submitting
  thread, then wrap the worker-side execution in
  :meth:`Tracer.activate`; the engine's job runner does exactly this,
  so job spans hang off the span that submitted them;
* **process pools** — a worker process cannot share the parent's span
  tree at all, so externally-timed work is folded back in with
  :meth:`Tracer.record` (the comparison-shard workers time themselves
  and the parent records one completed child span per shard).

Tracing is **disabled by default** and must stay near-free that way:
the pipeline's hot paths call :func:`span` unconditionally, so a
disabled tracer answers with a shared no-op context manager after a
single attribute check — no allocation, no locking, no clock reads.
"""

from __future__ import annotations

import itertools
import threading
import time

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "get_tracer",
    "span",
    "annotate",
    "trace",
]

_ids = itertools.count(1)


class Span:
    """One named, timed unit of work in a trace tree."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "started_at",
        "seconds",
        "annotations",
        "children",
        "_start",
    )

    def __init__(self, name: str, parent_id: int | None, annotations: dict) -> None:
        self.name = name
        self.span_id = next(_ids)
        self.parent_id = parent_id
        self.started_at = time.time()
        self._start = time.perf_counter()
        self.seconds: float | None = None
        self.annotations = annotations
        self.children: list[Span] = []

    def annotate(self, **annotations: object) -> None:
        """Attach key/value annotations to this span."""
        self.annotations.update(annotations)

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable flat row (children are separate rows)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "started_at": self.started_at,
            "seconds": self.seconds,
            "annotations": dict(self.annotations),
        }

    def walk(self):
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return f"Span({self.name!r}, seconds={self.seconds})"


class _NullSpan:
    """The no-op span handed out while tracing is disabled.

    One shared instance: entering, exiting, and annotating all cost a
    single dynamic dispatch, which is what keeps disabled-mode overhead
    under the noise floor of any benchmark.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def annotate(self, **annotations: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager pushing one real span on the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, annotations: dict) -> None:
        self._tracer = tracer
        self._span = tracer._open(name, annotations)

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.annotations.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span)


class _ActivatedContext:
    """Context manager installing a captured span as this thread's parent."""

    __slots__ = ("_tracer", "_span", "_previous")

    def __init__(self, tracer: "Tracer", captured: Span) -> None:
        self._tracer = tracer
        self._span = captured
        self._previous = None

    def __enter__(self) -> Span:
        stack = self._tracer._stack()
        self._previous = list(stack)
        stack.append(self._span)
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._local.stack = self._previous


class SpanContext:
    """A capture of the current span, portable across threads."""

    __slots__ = ("span",)

    def __init__(self, span: Span | None) -> None:
        self.span = span


class Tracer:
    """A thread-aware span tracer with an on/off switch.

    Completed root spans accumulate in :meth:`roots` until
    :meth:`reset`; exporters read them from there.  All tree mutations
    are lock-guarded because context propagation means several threads
    may append children to one shared parent.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: list[Span] = []

    # -- switches ---------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop completed roots (any thread's open spans keep running)."""
        with self._lock:
            self._roots = []

    # -- span creation ----------------------------------------------------------

    def span(self, name: str, **annotations: object):
        """A context manager timing one unit of work.

        Returns the shared no-op span when tracing is disabled — the
        hot-path cost of an un-traced call is this one check.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, annotations)

    def trace(self, name: str | None = None):
        """Decorator form of :meth:`span` (span named after the function)."""

        def decorate(function):
            import functools

            span_name = name or function.__qualname__

            @functools.wraps(function)
            def wrapper(*args, **kwargs):
                with self.span(span_name):
                    return function(*args, **kwargs)

            return wrapper

        return decorate

    def record(
        self, name: str, seconds: float, **annotations: object
    ) -> Span | None:
        """Fold externally-timed work in as one completed child span.

        For work that ran where this tracer could not see it — a
        process-pool shard, a remote call — but whose duration the
        caller knows.  No-op while disabled.
        """
        if not self.enabled:
            return None
        span = Span(name, None, dict(annotations))
        span.seconds = seconds
        span.started_at = time.time() - seconds
        parent = self.current()
        if parent is not None and "request_id" not in span.annotations:
            inherited = parent.annotations.get("request_id")
            if inherited is not None:
                span.annotations["request_id"] = inherited
        with self._lock:
            if parent is not None:
                span.parent_id = parent.span_id
                parent.children.append(span)
            else:
                self._roots.append(span)
        return span

    def annotate(self, **annotations: object) -> None:
        """Annotate the innermost open span (no-op without one)."""
        if not self.enabled:
            return
        current = self.current()
        if current is not None:
            current.annotate(**annotations)

    # -- context propagation ----------------------------------------------------

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def context(self) -> SpanContext:
        """Capture the current span for another thread to adopt."""
        return SpanContext(self.current())

    def activate(self, context: SpanContext | None):
        """Install a captured context as this thread's span parent.

        Spans opened inside the ``with`` become children of the
        captured span even though they run on a different thread.
        ``None`` (or an empty capture, or a disabled tracer) is a
        no-op, so callers can thread contexts through unconditionally.
        """
        if not self.enabled or context is None or context.span is None:
            return _NULL_SPAN
        return _ActivatedContext(self, context.span)

    # -- results ----------------------------------------------------------------

    def roots(self) -> list[Span]:
        """Completed root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    # -- internals --------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _open(self, name: str, annotations: dict) -> Span:
        stack = self._stack()
        parent = stack[-1] if stack else None
        # Correlation ids flow down the tree: a child span inherits the
        # parent's request_id unless it carries its own, so every span
        # of one served request — including spans opened on engine
        # workers under an activated context — shares the id.
        if parent is not None and "request_id" not in annotations:
            inherited = parent.annotations.get("request_id")
            if inherited is not None:
                annotations["request_id"] = inherited
        span = Span(name, parent.span_id if parent else None, annotations)
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.seconds = time.perf_counter() - span._start
        stack = self._stack()
        # Tolerate exotic unwind orders (generators finalized late):
        # remove the span wherever it sits instead of corrupting peers.
        if span in stack:
            stack.remove(span)
        parent = stack[-1] if stack else None
        with self._lock:
            if parent is not None:
                parent.children.append(span)
            else:
                self._roots.append(span)


_DEFAULT_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide default tracer (disabled until enabled)."""
    return _DEFAULT_TRACER


def span(name: str, **annotations: object):
    """Open a span on the default tracer (no-op while disabled)."""
    return _DEFAULT_TRACER.span(name, **annotations)


def annotate(**annotations: object) -> None:
    """Annotate the default tracer's innermost open span."""
    _DEFAULT_TRACER.annotate(**annotations)


def trace(name: str | None = None):
    """Decorator tracing a function on the default tracer."""
    return _DEFAULT_TRACER.trace(name)
