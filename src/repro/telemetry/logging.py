"""Structured JSON logging and per-request correlation ids.

Every served request gets a ``request_id`` at the HTTP front-end (or
honors the client's ``X-Request-Id``).  Correlation across layers uses
two carriers:

* **this thread** — :func:`bind_request_id` installs the id in a
  thread-local for the duration of the request handler;
* **other threads** — the id is annotated onto the request's root span,
  and :class:`~repro.telemetry.spans.Tracer` propagates the
  ``request_id`` annotation to child spans, including spans activated
  from a captured :meth:`~repro.telemetry.spans.Tracer.context` on
  engine workers and the folded-in process-pool shard spans.

:func:`current_request_id` checks both carriers, so one log line
emitted anywhere along a request's execution — the access log, the
serving layer, an engine worker, the shard dispatcher — resolves the
same id.  :class:`RequestIdFilter` stamps it onto every log record and
:class:`JsonFormatter` renders records as one JSON object per line;
:func:`configure_structured_logging` wires both into the root logger.
"""

from __future__ import annotations

import json
import logging
import sys
import threading
import uuid

from repro.telemetry.spans import get_tracer

__all__ = [
    "new_request_id",
    "bind_request_id",
    "current_request_id",
    "RequestIdFilter",
    "JsonFormatter",
    "configure_structured_logging",
]

_local = threading.local()


def new_request_id() -> str:
    """A fresh 16-hex-digit correlation id."""
    return uuid.uuid4().hex[:16]


class _BoundRequestId:
    """Context manager scoping one request id to the current thread."""

    __slots__ = ("_request_id", "_previous")

    def __init__(self, request_id: str) -> None:
        self._request_id = request_id
        self._previous = None

    def __enter__(self) -> str:
        self._previous = getattr(_local, "request_id", None)
        _local.request_id = self._request_id
        return self._request_id

    def __exit__(self, *exc_info: object) -> None:
        _local.request_id = self._previous


def bind_request_id(request_id: str) -> _BoundRequestId:
    """Bind ``request_id`` to this thread for the ``with`` block."""
    return _BoundRequestId(request_id)


def current_request_id() -> str | None:
    """The correlation id of the request this thread is working for.

    Checks the thread-local binding first (the request's own handler
    thread), then the innermost open span's ``request_id`` annotation
    (engine workers executing under an activated context).  ``None``
    outside any request.
    """
    request_id = getattr(_local, "request_id", None)
    if request_id is not None:
        return request_id
    current = get_tracer().current()
    if current is not None:
        annotated = current.annotations.get("request_id")
        if annotated is not None:
            return str(annotated)
    return None


class RequestIdFilter(logging.Filter):
    """Stamp ``record.request_id`` onto every record passing through."""

    def filter(self, record: logging.LogRecord) -> bool:
        if getattr(record, "request_id", None) is None:
            record.request_id = current_request_id()
        return True


class JsonFormatter(logging.Formatter):
    """One JSON object per log line: ts, level, logger, message, request_id."""

    def format(self, record: logging.LogRecord) -> str:
        document: dict[str, object] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        request_id = getattr(record, "request_id", None)
        if request_id is None:
            request_id = current_request_id()
        if request_id is not None:
            document["request_id"] = request_id
        if record.exc_info:
            document["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(document, default=str)


def configure_structured_logging(
    level: int = logging.INFO, stream=None
) -> logging.Handler:
    """Install a JSON handler (with request-id stamping) on the root logger.

    Replaces existing root handlers (``logging.basicConfig(force=True)``
    semantics) so repeated CLI invocations in one process re-bind to the
    current stream.  Returns the installed handler.
    """
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter())
    handler.addFilter(RequestIdFilter())
    root = logging.getLogger()
    for existing in list(root.handlers):
        root.removeHandler(existing)
        existing.close()
    root.addHandler(handler)
    root.setLevel(level)
    return handler
