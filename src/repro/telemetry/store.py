"""SQLite telemetry warehouse: persisted traces, metrics, and profiles.

PR 6's telemetry is ephemeral — span trees and counter snapshots die
with the process.  This module gives it the same durable, queryable
treatment PR 9 gave blocking state: traces, metric snapshots, profiler
samples, and benchmark-trajectory points land in indexed SQLite tables,
and the questions operators actually ask — *which spans are slowest?
how has this stage's wall time moved across runs?  what changed between
run A and run B?* — are answered by SQL pushdown over those indexes
instead of by re-parsing JSON dumps in Python.

The tables are part of the :class:`~repro.storage.database.FrostStore`
schema since ``user_version`` 4 (older store files migrate in place on
open), and also bootstrap standalone in a dedicated warehouse file —
``python -m repro trace --store telemetry.db`` persists each traced run,
and ``python -m repro telemetry list|show|slowest|diff|prune`` queries
and curates the history.

A retention policy (``max_runs``) keeps the warehouse bounded: each
recorded run evicts the oldest runs beyond the cap, cascading over
their spans, metrics, and profile stacks.
"""

from __future__ import annotations

import json
import sqlite3
import time
import weakref
from pathlib import Path

from repro.telemetry.export import rows_to_trees, spans_to_rows
from repro.telemetry.metrics import Histogram, MetricsRegistry, get_metrics
from repro.telemetry.spans import Span

__all__ = ["TELEMETRY_SCHEMA", "TelemetryStore", "TelemetryError"]

# Appended to the FrostStore schema (user_version 4) and bootstrapped
# standalone for dedicated warehouse files.  Spans are indexed by name
# (stage history), by descending duration (slowest-spans pushdown), and
# trajectory points by area.
TELEMETRY_SCHEMA = """
CREATE TABLE IF NOT EXISTS telemetry_runs (
    run_id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    started_at REAL NOT NULL,
    recorded_at REAL NOT NULL,
    context TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_telemetry_runs_name
    ON telemetry_runs(name, run_id);
CREATE TABLE IF NOT EXISTS telemetry_spans (
    run_id INTEGER NOT NULL REFERENCES telemetry_runs(run_id),
    span_id INTEGER NOT NULL,
    parent_id INTEGER,
    name TEXT NOT NULL,
    started_at REAL NOT NULL,
    seconds REAL,
    annotations TEXT NOT NULL,
    PRIMARY KEY (run_id, span_id)
);
CREATE INDEX IF NOT EXISTS idx_telemetry_spans_name
    ON telemetry_spans(name, run_id);
CREATE INDEX IF NOT EXISTS idx_telemetry_spans_seconds
    ON telemetry_spans(run_id, seconds DESC);
CREATE TABLE IF NOT EXISTS telemetry_metrics (
    run_id INTEGER NOT NULL REFERENCES telemetry_runs(run_id),
    name TEXT NOT NULL,
    kind TEXT NOT NULL,
    value REAL,
    count INTEGER,
    total REAL,
    detail TEXT NOT NULL,
    PRIMARY KEY (run_id, name)
);
CREATE TABLE IF NOT EXISTS telemetry_profiles (
    run_id INTEGER NOT NULL REFERENCES telemetry_runs(run_id),
    stack TEXT NOT NULL,
    samples INTEGER NOT NULL,
    PRIMARY KEY (run_id, stack)
);
CREATE TABLE IF NOT EXISTS telemetry_trajectories (
    point_id INTEGER PRIMARY KEY,
    area TEXT NOT NULL,
    generated_at TEXT NOT NULL,
    recorded_at REAL NOT NULL,
    context TEXT NOT NULL,
    document TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_telemetry_trajectories_area
    ON telemetry_trajectories(area, point_id);
"""

_RUNS_RECORDED = get_metrics().counter(
    "frost_telemetry_runs_recorded_total",
    "Traced runs persisted into the telemetry warehouse",
)
_RUNS_PRUNED = get_metrics().counter(
    "frost_telemetry_runs_pruned_total",
    "Telemetry runs evicted by the retention policy or an explicit prune",
)
_TRAJECTORIES_INGESTED = get_metrics().counter(
    "frost_telemetry_trajectory_points_total",
    "Benchmark trajectory points ingested into the telemetry warehouse",
)


class TelemetryError(RuntimeError):
    """Raised for warehouse-level failures (unknown runs, bad input)."""


def _cleanup(connection: sqlite3.Connection | None) -> None:
    if connection is not None:
        try:
            connection.close()
        except sqlite3.Error:  # pragma: no cover - close() is best-effort
            pass


class TelemetryStore:
    """Owns the telemetry tables of one SQLite database.

    Parameters
    ----------
    path:
        Database file to use (created if missing).  Pointing it at a
        :class:`~repro.storage.database.FrostStore` file co-locates the
        telemetry history with the data it measures.
    connection:
        Reuse an existing connection instead of opening one (the
        :meth:`FrostStore.telemetry_store` view).  Borrowed connections
        are never closed.
    max_runs:
        Retention cap: after each :meth:`record_run`, runs beyond the
        newest ``max_runs`` are pruned.  ``None`` keeps everything.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        connection: sqlite3.Connection | None = None,
        max_runs: int | None = None,
    ) -> None:
        if max_runs is not None and max_runs < 1:
            raise ValueError(f"max_runs must be positive, got {max_runs}")
        self.max_runs = max_runs
        if connection is not None:
            if path is not None:
                raise ValueError("pass either path or connection, not both")
            self._connection = connection
            owned = None
        else:
            if path is None:
                raise ValueError("pass a database path or a connection")
            self._connection = sqlite3.connect(
                str(path), check_same_thread=False
            )
            owned = self._connection
        self._connection.executescript(TELEMETRY_SCHEMA)
        self._connection.commit()
        self._finalizer = weakref.finalize(self, _cleanup, owned)

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying SQLite connection (single-threaded use)."""
        return self._connection

    def close(self) -> None:
        """Close an owned connection (borrowed ones are left alone)."""
        self._finalizer()

    def __enter__(self) -> "TelemetryStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writing -----------------------------------------------------------------

    def record_run(
        self,
        name: str,
        roots: list[Span],
        registry: MetricsRegistry | None = None,
        profile_samples: dict[str, int] | None = None,
        context: dict | None = None,
    ) -> int:
        """Persist one traced run atomically; returns its ``run_id``.

        ``roots`` is the tracer's completed span forest
        (:meth:`Tracer.roots`), ``registry`` an optional metrics
        registry whose snapshot is stored alongside, and
        ``profile_samples`` the collapsed-stack table of a
        :class:`~repro.telemetry.profile.SamplingProfiler`.
        """
        rows = spans_to_rows(roots)
        started_at = min(
            (float(row["started_at"]) for row in rows), default=time.time()
        )
        with self._connection:
            cursor = self._connection.execute(
                "INSERT INTO telemetry_runs "
                "(name, started_at, recorded_at, context) VALUES (?, ?, ?, ?)",
                (
                    name,
                    started_at,
                    time.time(),
                    json.dumps(context or {}, sort_keys=True),
                ),
            )
            run_id = cursor.lastrowid
            self._connection.executemany(
                "INSERT INTO telemetry_spans (run_id, span_id, parent_id, "
                "name, started_at, seconds, annotations) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    (
                        run_id,
                        row["span_id"],
                        row["parent_id"],
                        row["name"],
                        row["started_at"],
                        row["seconds"],
                        json.dumps(row["annotations"], default=str),
                    )
                    for row in rows
                ),
            )
            if registry is not None:
                self._connection.executemany(
                    "INSERT INTO telemetry_metrics (run_id, name, kind, "
                    "value, count, total, detail) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        self._metric_row(run_id, instrument)
                        for instrument in registry.instruments()
                    ),
                )
            if profile_samples:
                self._connection.executemany(
                    "INSERT INTO telemetry_profiles (run_id, stack, samples) "
                    "VALUES (?, ?, ?)",
                    (
                        (run_id, stack, int(count))
                        for stack, count in profile_samples.items()
                    ),
                )
        _RUNS_RECORDED.inc()
        if self.max_runs is not None:
            self.prune(keep=self.max_runs)
        return run_id

    @staticmethod
    def _metric_row(run_id: int, instrument) -> tuple:
        if isinstance(instrument, Histogram):
            return (
                run_id,
                instrument.name,
                instrument.kind,
                None,
                instrument.count,
                instrument.sum,
                json.dumps(instrument._snapshot(), default=str),
            )
        return (
            run_id,
            instrument.name,
            instrument.kind,
            float(instrument.value),
            None,
            None,
            json.dumps(instrument._snapshot(), default=str),
        )

    def ingest_trajectory(self, document: dict) -> int:
        """Persist one ``BENCH_<area>.json`` point; returns its ``point_id``."""
        area = document.get("area")
        if not area:
            raise TelemetryError("trajectory document has no 'area'")
        with self._connection:
            cursor = self._connection.execute(
                "INSERT INTO telemetry_trajectories "
                "(area, generated_at, recorded_at, context, document) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    str(area),
                    str(document.get("generated_at", "")),
                    time.time(),
                    json.dumps(document.get("context") or {}, sort_keys=True),
                    json.dumps(document, sort_keys=True),
                ),
            )
        _TRAJECTORIES_INGESTED.inc()
        return cursor.lastrowid

    # -- run lookup --------------------------------------------------------------

    def resolve_run(self, run: int | str) -> int:
        """A run id from an integer id or a run name (latest wins)."""
        if isinstance(run, int) or (isinstance(run, str) and run.isdigit()):
            run_id = int(run)
            row = self._connection.execute(
                "SELECT run_id FROM telemetry_runs WHERE run_id = ?", (run_id,)
            ).fetchone()
            if row is None:
                raise TelemetryError(f"no telemetry run {run_id}")
            return run_id
        row = self._connection.execute(
            "SELECT run_id FROM telemetry_runs WHERE name = ? "
            "ORDER BY run_id DESC LIMIT 1",
            (run,),
        ).fetchone()
        if row is None:
            raise TelemetryError(f"no telemetry run named {run!r}")
        return row[0]

    def list_runs(self) -> list[dict]:
        """Every stored run (newest first) with span/sample counts."""
        return [
            {
                "run_id": run_id,
                "name": name,
                "started_at": started_at,
                "recorded_at": recorded_at,
                "context": json.loads(context),
                "spans": spans,
                "wall_seconds": wall or 0.0,
                "profile_samples": samples or 0,
            }
            for run_id, name, started_at, recorded_at, context, spans, wall,
            samples in self._connection.execute(
                """
                SELECT r.run_id, r.name, r.started_at, r.recorded_at,
                       r.context,
                       (SELECT COUNT(*) FROM telemetry_spans s
                        WHERE s.run_id = r.run_id),
                       (SELECT SUM(s.seconds) FROM telemetry_spans s
                        WHERE s.run_id = r.run_id AND s.parent_id IS NULL),
                       (SELECT SUM(p.samples) FROM telemetry_profiles p
                        WHERE p.run_id = r.run_id)
                FROM telemetry_runs r ORDER BY r.run_id DESC
                """
            )
        ]

    def run_spans(self, run: int | str) -> list[Span]:
        """The stored span forest of one run, rebuilt as ``Span`` trees."""
        run_id = self.resolve_run(run)
        rows = [
            {
                "span_id": span_id,
                "parent_id": parent_id,
                "name": name,
                "started_at": started_at,
                "seconds": seconds,
                "annotations": json.loads(annotations),
            }
            for span_id, parent_id, name, started_at, seconds, annotations
            in self._connection.execute(
                "SELECT span_id, parent_id, name, started_at, seconds, "
                "annotations FROM telemetry_spans WHERE run_id = ? "
                "ORDER BY span_id",
                (run_id,),
            )
        ]
        return rows_to_trees(rows)

    def run_metrics(self, run: int | str) -> dict[str, dict]:
        """The stored metric snapshot of one run (name -> snapshot)."""
        run_id = self.resolve_run(run)
        return {
            name: json.loads(detail)
            for name, detail in self._connection.execute(
                "SELECT name, detail FROM telemetry_metrics "
                "WHERE run_id = ? ORDER BY name",
                (run_id,),
            )
        }

    def run_profile(self, run: int | str) -> dict[str, int]:
        """The stored collapsed-stack samples of one run (hottest first)."""
        run_id = self.resolve_run(run)
        return {
            stack: samples
            for stack, samples in self._connection.execute(
                "SELECT stack, samples FROM telemetry_profiles "
                "WHERE run_id = ? ORDER BY samples DESC, stack",
                (run_id,),
            )
        }

    # -- SQL-pushdown queries ----------------------------------------------------

    def slowest_spans(
        self, run: int | str | None = None, limit: int = 10
    ) -> list[dict]:
        """The slowest recorded spans, warehouse-wide or per run.

        The sort runs in SQLite over the ``(run_id, seconds DESC)``
        index — the warehouse may hold orders of magnitude more spans
        than are worth materializing in Python.
        """
        query = (
            "SELECT s.run_id, r.name, s.span_id, s.name, s.seconds, "
            "s.annotations FROM telemetry_spans s "
            "JOIN telemetry_runs r ON r.run_id = s.run_id "
            "WHERE s.seconds IS NOT NULL"
        )
        parameters: list[object] = []
        if run is not None:
            query += " AND s.run_id = ?"
            parameters.append(self.resolve_run(run))
        query += " ORDER BY s.seconds DESC LIMIT ?"
        parameters.append(int(limit))
        return [
            {
                "run_id": run_id,
                "run_name": run_name,
                "span_id": span_id,
                "name": name,
                "seconds": seconds,
                "annotations": json.loads(annotations),
            }
            for run_id, run_name, span_id, name, seconds, annotations
            in self._connection.execute(query, parameters)
        ]

    def stage_history(self, stage: str) -> list[dict]:
        """Per-run wall-time history of one span name, oldest run first."""
        return [
            {
                "run_id": run_id,
                "run_name": run_name,
                "started_at": started_at,
                "spans": count,
                "total_seconds": total,
                "max_seconds": slowest,
            }
            for run_id, run_name, started_at, count, total, slowest
            in self._connection.execute(
                "SELECT s.run_id, r.name, r.started_at, COUNT(*), "
                "SUM(s.seconds), MAX(s.seconds) "
                "FROM telemetry_spans s "
                "JOIN telemetry_runs r ON r.run_id = s.run_id "
                "WHERE s.name = ? AND s.seconds IS NOT NULL "
                "GROUP BY s.run_id ORDER BY s.run_id",
                (stage,),
            )
        ]

    def _stage_totals(self, run_id: int) -> dict[str, tuple[float, int]]:
        return {
            name: (total, count)
            for name, total, count in self._connection.execute(
                "SELECT name, SUM(seconds), COUNT(*) FROM telemetry_spans "
                "WHERE run_id = ? AND seconds IS NOT NULL GROUP BY name",
                (run_id,),
            )
        }

    def diff_runs(self, run_a: int | str, run_b: int | str) -> list[dict]:
        """Per-stage wall-time deltas between two runs, largest first.

        Each row aggregates one span name: total seconds and span count
        in each run (``None`` where the stage only ran on one side),
        the absolute delta, and the relative change.
        """
        totals_a = self._stage_totals(self.resolve_run(run_a))
        totals_b = self._stage_totals(self.resolve_run(run_b))
        rows: list[dict] = []
        for stage in sorted(set(totals_a) | set(totals_b)):
            seconds_a, count_a = totals_a.get(stage, (None, None))
            seconds_b, count_b = totals_b.get(stage, (None, None))
            delta = (
                seconds_b - seconds_a
                if seconds_a is not None and seconds_b is not None
                else None
            )
            ratio = (
                seconds_b / seconds_a
                if delta is not None and seconds_a > 0
                else None
            )
            rows.append(
                {
                    "stage": stage,
                    "seconds_a": seconds_a,
                    "count_a": count_a,
                    "seconds_b": seconds_b,
                    "count_b": count_b,
                    "delta_seconds": delta,
                    "ratio": ratio,
                }
            )
        rows.sort(
            key=lambda row: (
                -(abs(row["delta_seconds"]) if row["delta_seconds"] is not None
                  else float("inf")),
                row["stage"],
            )
        )
        return rows

    def trajectory_history(self, area: str | None = None) -> list[dict]:
        """Stored benchmark-trajectory points, oldest first."""
        query = (
            "SELECT point_id, area, generated_at, document "
            "FROM telemetry_trajectories"
        )
        parameters: tuple = ()
        if area is not None:
            query += " WHERE area = ?"
            parameters = (area,)
        query += " ORDER BY point_id"
        return [
            {
                "point_id": point_id,
                "area": row_area,
                "generated_at": generated_at,
                "document": json.loads(document),
            }
            for point_id, row_area, generated_at, document
            in self._connection.execute(query, parameters)
        ]

    # -- retention ---------------------------------------------------------------

    def prune(
        self,
        keep: int | None = None,
        older_than_seconds: float | None = None,
    ) -> int:
        """Delete old runs (and their spans/metrics/profiles).

        ``keep`` retains only the newest N runs; ``older_than_seconds``
        drops runs recorded more than that long ago.  Either alone or
        both together; returns the number of runs deleted.
        """
        if keep is None and older_than_seconds is None:
            raise ValueError("prune needs keep and/or older_than_seconds")
        doomed: set[int] = set()
        if keep is not None:
            if keep < 0:
                raise ValueError(f"keep must be non-negative, got {keep}")
            doomed.update(
                run_id
                for (run_id,) in self._connection.execute(
                    "SELECT run_id FROM telemetry_runs "
                    "ORDER BY run_id DESC LIMIT -1 OFFSET ?",
                    (keep,),
                )
            )
        if older_than_seconds is not None:
            cutoff = time.time() - float(older_than_seconds)
            doomed.update(
                run_id
                for (run_id,) in self._connection.execute(
                    "SELECT run_id FROM telemetry_runs WHERE recorded_at < ?",
                    (cutoff,),
                )
            )
        if not doomed:
            return 0
        rows = [(run_id,) for run_id in sorted(doomed)]
        with self._connection:
            for table in (
                "telemetry_profiles", "telemetry_metrics", "telemetry_spans",
                "telemetry_runs",
            ):
                self._connection.executemany(
                    f"DELETE FROM {table} WHERE run_id = ?", rows
                )
        _RUNS_PRUNED.inc(len(rows))
        return len(rows)
