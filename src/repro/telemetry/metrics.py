"""Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.

Every serving-path component — the engine result cache, the serving
payload cache, the request coalescer, the storage connection pool, the
blocking/comparison stages — registers named instruments here, so one
registry snapshot describes the whole system and one Prometheus-style
exposition (:func:`repro.telemetry.export.render_prometheus`) serves
``GET /metrics``.

Design constraints:

* **exactness under concurrency** — every mutation takes the
  instrument's lock; eight HTTP threads incrementing one counter lose
  nothing (a bare ``+=`` on an attribute is *not* atomic in CPython);
* **near-zero cost when disabled** — :meth:`MetricsRegistry.disable`
  turns every ``inc``/``set``/``observe`` into a single flag check;
* **get-or-create registration** — instruments are addressed by name,
  so independent modules share one counter by naming it identically
  (re-registering with a different type is an error, not a silent
  shadow).
"""

from __future__ import annotations

import bisect
import threading
from collections.abc import Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "DEFAULT_LATENCY_BUCKETS",
]

# Upper bucket bounds (seconds) spanning cached microseconds to
# multi-second cold evaluations; +Inf is implicit.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class _Instrument:
    """Shared plumbing: name, help text, a lock, the enabled switch."""

    __slots__ = ("name", "help", "_lock", "_registry")

    def __init__(self, name: str, help_text: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._registry = registry


class Counter(_Instrument):
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    kind = "counter"

    def __init__(self, name: str, help_text: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, help_text, registry)
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def _snapshot(self) -> dict[str, object]:
        return {"type": self.kind, "help": self.help, "value": self.value}


class Gauge(_Instrument):
    """A value that can go up and down (pool sizes, queue depths)."""

    __slots__ = ("_value",)

    kind = "gauge"

    def __init__(self, name: str, help_text: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, help_text, registry)
        self._value = 0.0

    def set(self, value: int | float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = value

    def inc(self, amount: int | float = 1) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def _snapshot(self) -> dict[str, object]:
        return {"type": self.kind, "help": self.help, "value": self.value}


class Histogram(_Instrument):
    """Fixed-bucket distribution of observed values.

    Buckets are cumulative upper bounds (Prometheus semantics): an
    observation lands in every bucket whose bound is >= the value,
    with an implicit +Inf bucket counting everything.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        registry: "MetricsRegistry",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, registry)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot: +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative_counts(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` rows, +Inf last."""
        with self._lock:
            rows: list[tuple[float, int]] = []
            running = 0
            for bound, count in zip(self.buckets, self._counts):
                running += count
                rows.append((bound, running))
            rows.append((float("inf"), running + self._counts[-1]))
            return rows

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0

    def _snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "type": self.kind,
                "help": self.help,
                "count": self._count,
                "sum": self._sum,
                "buckets": {
                    str(bound): count
                    for bound, count in zip(self.buckets, self._counts)
                },
            }


class MetricsRegistry:
    """Named instruments with snapshot/reset semantics.

    Registration is get-or-create and thread-safe; module-level
    instrument handles stay valid across :meth:`reset` because a reset
    zeroes values instead of replacing objects.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    # -- switches ---------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        """Turn every mutation into a flag check (instruments freeze)."""
        self.enabled = False

    # -- registration -----------------------------------------------------------

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(name, help_text, Counter)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(name, help_text, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(
                        f"metric {name!r} is a {existing.kind}, not a histogram"
                    )
                return existing
            instrument = Histogram(name, help_text, self, buckets=buckets)
            self._instruments[name] = instrument
            return instrument

    def _register(self, name: str, help_text: str, cls) -> object:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} is a {existing.kind}, "
                        f"not a {cls.kind}"
                    )
                return existing
            instrument = cls(name, help_text, self)
            self._instruments[name] = instrument
            return instrument

    def get(self, name: str) -> _Instrument | None:
        """The instrument registered under ``name``, if any."""
        with self._lock:
            return self._instruments.get(name)

    # -- reading ----------------------------------------------------------------

    def instruments(self) -> list[_Instrument]:
        """Every registered instrument, name-ordered."""
        with self._lock:
            return [self._instruments[name] for name in sorted(self._instruments)]

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Full JSON-serializable state of every instrument."""
        return {
            instrument.name: instrument._snapshot()
            for instrument in self.instruments()
        }

    def values(self) -> dict[str, object]:
        """Flat ``name -> value`` view (histograms as count/sum pairs)."""
        flat: dict[str, object] = {}
        for instrument in self.instruments():
            if isinstance(instrument, Histogram):
                flat[f"{instrument.name}_count"] = instrument.count
                flat[f"{instrument.name}_sum"] = instrument.sum
            else:
                flat[instrument.name] = instrument.value
        return flat

    def reset(self) -> None:
        """Zero every instrument (handles stay valid)."""
        for instrument in self.instruments():
            instrument._reset()


_DEFAULT_REGISTRY = MetricsRegistry(enabled=True)


def get_metrics() -> MetricsRegistry:
    """The process-wide default registry every subsystem registers into."""
    return _DEFAULT_REGISTRY
