"""Sampling wall-clock profiler attaching flamegraph stacks to traces.

A :class:`SamplingProfiler` is an opt-in background thread that walks
``sys._current_frames()`` at a fixed interval and aggregates what it
sees as *collapsed stacks* — the semicolon-joined frame format every
flamegraph tool reads (``file:function;file:function ... count``).
Sampling observes wall-clock time, so blocking waits (SQLite commits,
pool joins) show up with the same weight as CPU work — exactly the
breakdown a "runs as fast as the hardware allows" claim needs evidence
for.

The profiler mirrors the null-span discipline of
:mod:`repro.telemetry.spans`: :func:`maybe_profile` hands out a shared
no-op profiler unless profiling was explicitly requested, so an
un-profiled run pays one flag check and nothing else — no thread, no
frame walking, no allocation.

On :meth:`~SamplingProfiler.stop` the sample table is attached to the
span that was active when sampling started (``profile_samples`` /
``profile_stacks`` annotations), and callers persist the stacks next to
the trace through :class:`repro.telemetry.store.TelemetryStore`.
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path

from repro.telemetry.spans import get_tracer

__all__ = [
    "SamplingProfiler",
    "NullProfiler",
    "maybe_profile",
    "collapse_frame",
]

DEFAULT_INTERVAL_SECONDS = 0.005
_MAX_STACK_DEPTH = 64


def collapse_frame(frame) -> str:
    """One frame's collapsed-stack token: ``filename:function``."""
    code = frame.f_code
    return f"{Path(code.co_filename).name}:{code.co_name}"


def _collapse_stack(frame) -> str:
    """Root-first semicolon-joined stack of one thread's current frame."""
    tokens: list[str] = []
    depth = 0
    while frame is not None and depth < _MAX_STACK_DEPTH:
        tokens.append(collapse_frame(frame))
        frame = frame.f_back
        depth += 1
    tokens.reverse()
    return ";".join(tokens)


class NullProfiler:
    """The shared no-op handed out while profiling is off."""

    __slots__ = ()

    enabled = False

    def start(self) -> None:
        pass

    def stop(self) -> dict[str, int]:
        return {}

    def samples(self) -> dict[str, int]:
        return {}

    @property
    def sample_count(self) -> int:
        return 0

    def __enter__(self) -> "NullProfiler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_PROFILER = NullProfiler()


class SamplingProfiler:
    """Walk ``sys._current_frames()`` on a timer; aggregate collapsed stacks.

    Parameters
    ----------
    interval:
        Seconds between samples (default 5ms).  The sampler holds the
        GIL only while snapshotting frames, so the steady-state cost is
        a few microseconds per interval.
    """

    enabled = True

    def __init__(self, interval: float = DEFAULT_INTERVAL_SECONDS) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = float(interval)
        self._samples: dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None
        self.wall_seconds = 0.0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Begin sampling on a daemon thread (idempotent)."""
        if self._thread is not None:
            return
        self._stop_event.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="frost-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> dict[str, int]:
        """Stop sampling; annotate the active span; return the samples."""
        thread = self._thread
        if thread is None:
            return self.samples()
        self._stop_event.set()
        thread.join(timeout=5)
        self._thread = None
        if self._started_at is not None:
            self.wall_seconds += time.perf_counter() - self._started_at
            self._started_at = None
        samples = self.samples()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.annotate(
                profile_samples=sum(samples.values()),
                profile_stacks=len(samples),
            )
        return samples

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- results -----------------------------------------------------------------

    def samples(self) -> dict[str, int]:
        """``collapsed_stack -> sample_count``, most-sampled first."""
        with self._lock:
            items = sorted(self._samples.items(), key=lambda kv: (-kv[1], kv[0]))
        return dict(items)

    @property
    def sample_count(self) -> int:
        with self._lock:
            return sum(self._samples.values())

    def collapsed(self) -> str:
        """The samples in flamegraph collapsed format, one stack per line."""
        return "\n".join(
            f"{stack} {count}" for stack, count in self.samples().items()
        )

    # -- internals ---------------------------------------------------------------

    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop_event.wait(self.interval):
            frames = sys._current_frames()
            with self._lock:
                for thread_id, frame in frames.items():
                    if thread_id == own_id:
                        continue
                    stack = _collapse_stack(frame)
                    if stack:
                        self._samples[stack] = self._samples.get(stack, 0) + 1


def maybe_profile(enabled: bool, interval: float = DEFAULT_INTERVAL_SECONDS):
    """A :class:`SamplingProfiler` when ``enabled``, the shared no-op otherwise."""
    if not enabled:
        return _NULL_PROFILER
    return SamplingProfiler(interval=interval)
