"""End-to-end telemetry: span tracing, a metrics registry, exporters.

The measurement backbone of the platform (production graph/data systems
treat instrumentation as a first-class layer — every design decision in
the columnar-graph-DBMS line of work is driven by per-operator timing
breakdowns, and this package gives the reproduction the same substrate):

:mod:`repro.telemetry.spans`
    A low-overhead span tracer (context-manager + decorator API,
    thread-local stack, explicit cross-thread/cross-process context
    propagation).  Disabled by default; near-free while disabled.
:mod:`repro.telemetry.metrics`
    Named counters, gauges, and fixed-bucket histograms with
    thread-safe mutation and snapshot/reset semantics.  The engine
    cache, serving cache, request coalescer, storage connection pool,
    and matching stages all register here.
:mod:`repro.telemetry.export`
    JSON-lines span dumps, Prometheus text exposition (``GET
    /metrics``), and the human-readable span tree behind
    ``python -m repro trace``.
"""

from repro.telemetry.export import (
    render_prometheus,
    render_span_tree,
    rows_to_trees,
    spans_to_rows,
    write_metrics_json,
    write_spans_jsonl,
)
from repro.telemetry.logging import (
    JsonFormatter,
    RequestIdFilter,
    bind_request_id,
    configure_structured_logging,
    current_request_id,
    new_request_id,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
)
from repro.telemetry.profile import (
    NullProfiler,
    SamplingProfiler,
    maybe_profile,
)
from repro.telemetry.spans import (
    Span,
    SpanContext,
    Tracer,
    annotate,
    get_tracer,
    span,
    trace,
)
from repro.telemetry.store import TELEMETRY_SCHEMA, TelemetryError, TelemetryStore

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "annotate",
    "get_tracer",
    "span",
    "trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "render_prometheus",
    "render_span_tree",
    "rows_to_trees",
    "spans_to_rows",
    "write_metrics_json",
    "write_spans_jsonl",
    "JsonFormatter",
    "RequestIdFilter",
    "bind_request_id",
    "configure_structured_logging",
    "current_request_id",
    "new_request_id",
    "NullProfiler",
    "SamplingProfiler",
    "maybe_profile",
    "TELEMETRY_SCHEMA",
    "TelemetryError",
    "TelemetryStore",
]
