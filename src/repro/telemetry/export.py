"""Telemetry exporters: JSON-lines dumps, Prometheus text, span trees.

Three consumers, three formats:

* **run directories** — :func:`write_spans_jsonl` /
  :func:`write_metrics_json` persist one run's spans and metric
  snapshot as plain files next to its other outputs;
* **scrapers** — :func:`render_prometheus` produces the text
  exposition format (version 0.0.4) served by ``GET /metrics``;
* **humans** — :func:`render_span_tree` draws the span hierarchy with
  per-stage timings, which is what ``python -m repro trace`` prints.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.spans import Span

__all__ = [
    "spans_to_rows",
    "rows_to_trees",
    "write_spans_jsonl",
    "write_metrics_json",
    "render_prometheus",
    "render_span_tree",
]


def spans_to_rows(roots: list[Span]) -> list[dict[str, object]]:
    """Flat depth-first JSON rows of the given span trees."""
    rows: list[dict[str, object]] = []
    for root in roots:
        for span in root.walk():
            rows.append(span.as_dict())
    return rows


def rows_to_trees(rows: list[dict]) -> list[Span]:
    """Rebuild :class:`Span` trees from flat rows (inverse of
    :func:`spans_to_rows`).

    Rows whose ``parent_id`` was never recorded — a crashed run, a
    partial export — are *orphans* and are promoted to roots rather
    than dropped, so a damaged trace still renders.
    """
    spans: dict[int, Span] = {}
    for row in rows:
        span = Span(str(row["name"]), None, dict(row.get("annotations") or {}))
        span.span_id = int(row["span_id"])
        span.started_at = float(row["started_at"])
        seconds = row.get("seconds")
        span.seconds = None if seconds is None else float(seconds)
        spans[span.span_id] = span
    roots: list[Span] = []
    for row in rows:
        span = spans[int(row["span_id"])]
        parent_id = row.get("parent_id")
        parent = spans.get(int(parent_id)) if parent_id is not None else None
        if parent is not None and parent is not span:
            span.parent_id = parent.span_id
            parent.children.append(span)
        else:
            roots.append(span)
    return roots


def write_spans_jsonl(path: str | Path, roots: list[Span]) -> Path:
    """Write one span per line (flat rows, ``parent_id`` links the tree)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for row in spans_to_rows(roots):
            handle.write(json.dumps(row, default=str) + "\n")
    return path


def write_metrics_json(path: str | Path, registry: MetricsRegistry) -> Path:
    """Write the registry's full snapshot as one JSON document."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def _format_value(value: float) -> str:
    """Prometheus-style number formatting (integers without the dot)."""
    if value == math.inf:
        return "+Inf"
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (0.0.4)."""
    lines: list[str] = []
    for instrument in registry.instruments():
        name = instrument.name
        # Every metric gets a HELP line (falling back to its own name)
        # so exposition parsers that require the full comment preamble
        # accept the endpoint.
        lines.append(
            f"# HELP {name} {_escape_help(instrument.help or name)}"
        )
        lines.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, Histogram):
            for bound, cumulative in instrument.cumulative_counts():
                lines.append(
                    f'{name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                )
            lines.append(f"{name}_sum {_format_value(instrument.sum)}")
            lines.append(f"{name}_count {instrument.count}")
        else:
            lines.append(f"{name} {_format_value(instrument.value)}")
    return "\n".join(lines) + "\n"


def _annotation_text(span: Span) -> str:
    if not span.annotations:
        return ""
    parts = [f"{key}={value}" for key, value in span.annotations.items()]
    return "  [" + " ".join(parts) + "]"


def _tree_lines(span: Span, prefix: str, is_last: bool, is_root: bool) -> list[str]:
    if is_root:
        connector, child_prefix = "", ""
    else:
        connector = prefix + ("└─ " if is_last else "├─ ")
        child_prefix = prefix + ("   " if is_last else "│  ")
    seconds = "?" if span.seconds is None else f"{span.seconds * 1000:9.2f} ms"
    lines = [f"{connector}{span.name}  {seconds}{_annotation_text(span)}"]
    for index, child in enumerate(span.children):
        lines.extend(
            _tree_lines(
                child, child_prefix, index == len(span.children) - 1, False
            )
        )
    return lines


def render_span_tree(root: Span) -> str:
    """An indented, human-readable tree of one trace with timings."""
    return "\n".join(_tree_lines(root, "", True, True))
