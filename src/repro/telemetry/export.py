"""Telemetry exporters: JSON-lines dumps, Prometheus text, span trees.

Three consumers, three formats:

* **run directories** — :func:`write_spans_jsonl` /
  :func:`write_metrics_json` persist one run's spans and metric
  snapshot as plain files next to its other outputs;
* **scrapers** — :func:`render_prometheus` produces the text
  exposition format (version 0.0.4) served by ``GET /metrics``;
* **humans** — :func:`render_span_tree` draws the span hierarchy with
  per-stage timings, which is what ``python -m repro trace`` prints.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.spans import Span

__all__ = [
    "spans_to_rows",
    "write_spans_jsonl",
    "write_metrics_json",
    "render_prometheus",
    "render_span_tree",
]


def spans_to_rows(roots: list[Span]) -> list[dict[str, object]]:
    """Flat depth-first JSON rows of the given span trees."""
    rows: list[dict[str, object]] = []
    for root in roots:
        for span in root.walk():
            rows.append(span.as_dict())
    return rows


def write_spans_jsonl(path: str | Path, roots: list[Span]) -> Path:
    """Write one span per line (flat rows, ``parent_id`` links the tree)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for row in spans_to_rows(roots):
            handle.write(json.dumps(row, default=str) + "\n")
    return path


def write_metrics_json(path: str | Path, registry: MetricsRegistry) -> Path:
    """Write the registry's full snapshot as one JSON document."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def _format_value(value: float) -> str:
    """Prometheus-style number formatting (integers without the dot)."""
    if value == math.inf:
        return "+Inf"
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (0.0.4)."""
    lines: list[str] = []
    for instrument in registry.instruments():
        name = instrument.name
        if instrument.help:
            lines.append(f"# HELP {name} {_escape_help(instrument.help)}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, Histogram):
            for bound, cumulative in instrument.cumulative_counts():
                lines.append(
                    f'{name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                )
            lines.append(f"{name}_sum {_format_value(instrument.sum)}")
            lines.append(f"{name}_count {instrument.count}")
        else:
            lines.append(f"{name} {_format_value(instrument.value)}")
    return "\n".join(lines) + "\n"


def _annotation_text(span: Span) -> str:
    if not span.annotations:
        return ""
    parts = [f"{key}={value}" for key, value in span.annotations.items()]
    return "  [" + " ".join(parts) + "]"


def _tree_lines(span: Span, prefix: str, is_last: bool, is_root: bool) -> list[str]:
    if is_root:
        connector, child_prefix = "", ""
    else:
        connector = prefix + ("└─ " if is_last else "├─ ")
        child_prefix = prefix + ("   " if is_last else "│  ")
    seconds = "?" if span.seconds is None else f"{span.seconds * 1000:9.2f} ms"
    lines = [f"{connector}{span.name}  {seconds}{_annotation_text(span)}"]
    for index, child in enumerate(span.children):
        lines.extend(
            _tree_lines(
                child, child_prefix, index == len(span.children) - 1, False
            )
        )
    return lines


def render_span_tree(root: Span) -> str:
    """An indented, human-readable tree of one trace with timings."""
    return "\n".join(_tree_lines(root, "", True, True))
