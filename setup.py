"""Setup shim for environments without the `wheel` package.

`pip install -e .` requires wheel under PEP 517; in offline environments
without it, use `python setup.py develop` or add `src/` via a .pth file.
"""
from setuptools import setup

setup()
