"""Cross-thread FrostStore regression tests.

The multi-threaded HTTP front-end hits one store from many request
threads at once; file-backed stores hand each thread its own SQLite
connection, in-memory stores serialize on one shared handle.  These
tests hammer both modes from 8 threads and assert nothing corrupts,
raises, or deadlocks.
"""

import threading

import pytest

from repro.core import Dataset, Experiment, Record
from repro.storage.database import FrostStore, StorageError

THREADS = 8
ROUNDS = 25


def _dataset(name: str = "people") -> Dataset:
    return Dataset(
        [Record(f"r{index}", {"name": f"person {index}"}) for index in range(20)],
        name=name,
    )


def _hammer(store: FrostStore) -> None:
    """Mixed reads and writes from THREADS threads; raises on any error."""
    store.save_dataset(_dataset())
    barrier = threading.Barrier(THREADS)
    errors: list[Exception] = []

    def worker(index: int) -> None:
        try:
            barrier.wait(timeout=10)
            for round_index in range(ROUNDS):
                name = f"run-{index}-{round_index}"
                store.save_experiment(
                    "people",
                    Experiment([("r0", "r1", 0.9)], name=name),
                )
                loaded = store.load_experiment("people", name)
                assert len(loaded) == 1
                store.cache_put(f"key-{index}-{round_index}", "metrics", {
                    "value": round_index,
                })
                assert store.cache_get(f"key-{index}-{round_index}") == {
                    "value": round_index
                }
                assert len(store.load_dataset("people")) == 20
                assert name in store.experiment_names("people")
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(index,)) for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors
    assert len(store.experiment_names("people")) == THREADS * ROUNDS
    assert len(store.cache_entries()) == THREADS * ROUNDS


class TestFileBackedStore:
    def test_eight_thread_hammer(self, tmp_path):
        with FrostStore(tmp_path / "hammer.db") as store:
            _hammer(store)

    def test_each_thread_gets_its_own_connection(self, tmp_path):
        with FrostStore(tmp_path / "conn.db") as store:
            main_connection = store._connection
            seen = []

            def capture() -> None:
                seen.append(store._connection)

            thread = threading.Thread(target=capture)
            thread.start()
            thread.join(timeout=10)
            assert len(seen) == 1
            assert seen[0] is not main_connection
            # the same thread keeps reusing its connection
            assert store._connection is main_connection

    def test_writes_from_one_thread_visible_to_others(self, tmp_path):
        with FrostStore(tmp_path / "visible.db") as store:
            thread = threading.Thread(
                target=lambda: store.save_dataset(_dataset("imported"))
            )
            thread.start()
            thread.join(timeout=10)
            assert store.dataset_names() == ["imported"]
            assert len(store.load_dataset("imported")) == 20

    def test_dead_thread_connections_are_pruned(self, tmp_path):
        """Retired request threads must not pin connections forever."""
        with FrostStore(tmp_path / "prune.db") as store:
            for _ in range(10):
                thread = threading.Thread(target=lambda: store.dataset_names())
                thread.start()
                thread.join(timeout=10)
            # a fresh thread's connect prunes every dead thread's entry
            thread = threading.Thread(target=lambda: store.dataset_names())
            thread.start()
            thread.join(timeout=10)
            alive = [entry for entry in store._pool if entry[0].is_alive()]
            assert len(store._pool) <= len(alive) + 1  # at most the joiner
            assert len(store._pool) <= 3

    def test_close_releases_every_threads_connection(self, tmp_path):
        store = FrostStore(tmp_path / "close.db")
        thread = threading.Thread(target=lambda: store.dataset_names())
        thread.start()
        thread.join(timeout=10)
        assert len(store._pool) == 2
        store.close()
        with pytest.raises(Exception):
            store.dataset_names()

    def test_closed_store_rejects_new_threads(self, tmp_path):
        store = FrostStore(tmp_path / "closed.db")
        store.close()
        errors = []

        def late_reader() -> None:
            try:
                store.dataset_names()
            except (StorageError, Exception) as error:
                errors.append(error)

        thread = threading.Thread(target=late_reader)
        thread.start()
        thread.join(timeout=10)
        assert len(errors) == 1


class TestInMemoryStore:
    def test_eight_thread_hammer(self):
        with FrostStore() as store:
            _hammer(store)

    def test_all_threads_share_one_connection(self):
        with FrostStore() as store:
            main_connection = store._connection
            seen = []
            thread = threading.Thread(
                target=lambda: seen.append(store._connection)
            )
            thread.start()
            thread.join(timeout=10)
            assert seen == [main_connection]
