"""Tests for the SQLite-backed store (Appendix A.3)."""

import pytest

from repro.core import Experiment, Match
from repro.storage.database import FrostStore, StorageError


@pytest.fixture
def store():
    with FrostStore() as store:
        yield store


class TestDatasets:
    def test_round_trip(self, store, people_dataset):
        store.save_dataset(people_dataset)
        loaded = store.load_dataset("people")
        assert loaded.record_ids == people_dataset.record_ids
        assert loaded.attributes == people_dataset.attributes
        assert loaded["p3"].value("first") == "mary"
        assert loaded["p3"].value("zip") is None

    def test_numeric_ids_preserved_by_order(self, store, people_dataset):
        store.save_dataset(people_dataset)
        loaded = store.load_dataset("people")
        for record_id in people_dataset.record_ids:
            assert loaded.numeric_id(record_id) == people_dataset.numeric_id(
                record_id
            )

    def test_duplicate_name_rejected(self, store, people_dataset):
        store.save_dataset(people_dataset)
        with pytest.raises(StorageError, match="already stored"):
            store.save_dataset(people_dataset)

    def test_unknown_dataset(self, store):
        with pytest.raises(StorageError, match="no dataset"):
            store.load_dataset("nope")

    def test_dataset_names(self, store, people_dataset):
        assert store.dataset_names() == []
        store.save_dataset(people_dataset)
        assert store.dataset_names() == ["people"]


class TestExperiments:
    def test_round_trip(self, store, people_dataset, people_experiment):
        store.save_dataset(people_dataset)
        store.save_experiment("people", people_experiment)
        loaded = store.load_experiment("people", "people-run")
        assert loaded.pairs() == people_experiment.pairs()
        assert loaded.score_of("p1", "p2") == 0.95
        assert loaded.solution == "test-solution"

    def test_from_clustering_flag_survives(self, store, people_dataset):
        store.save_dataset(people_dataset)
        experiment = Experiment(
            [Match(pair=("p1", "p2"), score=0.9),
             Match(pair=("p1", "p3"), from_clustering=True)],
            name="flagged",
        )
        store.save_experiment("people", experiment)
        loaded = store.load_experiment("people", "flagged")
        assert loaded.original_pairs() == {("p1", "p2")}

    def test_metadata_round_trip(self, store, people_dataset):
        store.save_dataset(people_dataset)
        experiment = Experiment(
            [("p1", "p2")], name="meta", metadata={"threshold": 0.8}
        )
        store.save_experiment("people", experiment)
        assert store.load_experiment("people", "meta").metadata == {
            "threshold": 0.8
        }

    def test_unknown_record_rejected(self, store, people_dataset):
        store.save_dataset(people_dataset)
        bad = Experiment([("p1", "ghost")], name="bad")
        with pytest.raises(StorageError, match="unknown"):
            store.save_experiment("people", bad)

    def test_duplicate_name_rejected(self, store, people_dataset, people_experiment):
        store.save_dataset(people_dataset)
        store.save_experiment("people", people_experiment)
        with pytest.raises(StorageError, match="already stored"):
            store.save_experiment("people", people_experiment)

    def test_delete(self, store, people_dataset, people_experiment):
        store.save_dataset(people_dataset)
        store.save_experiment("people", people_experiment)
        store.delete_experiment("people", "people-run")
        assert store.experiment_names("people") == []
        with pytest.raises(StorageError, match="no experiment"):
            store.load_experiment("people", "people-run")

    def test_delete_unknown(self, store, people_dataset):
        store.save_dataset(people_dataset)
        with pytest.raises(StorageError, match="no experiment"):
            store.delete_experiment("people", "ghost")


class TestGoldStandards:
    def test_round_trip(self, store, people_dataset, people_gold):
        store.save_dataset(people_dataset)
        store.save_gold_standard("people", people_gold)
        loaded = store.load_gold_standard("people", "people-gold")
        assert loaded.pairs() == people_gold.pairs()

    def test_names(self, store, people_dataset, people_gold):
        store.save_dataset(people_dataset)
        store.save_gold_standard("people", people_gold)
        assert store.gold_standard_names("people") == ["people-gold"]

    def test_unknown_record_rejected(self, store, people_dataset):
        from repro.core import GoldStandard

        store.save_dataset(people_dataset)
        bad = GoldStandard.from_pairs([("p1", "ghost")], name="bad")
        with pytest.raises(StorageError, match="unknown record"):
            store.save_gold_standard("people", bad)


class TestPersistence:
    def test_survives_reopen(self, tmp_path, people_dataset, people_experiment):
        path = tmp_path / "frost.db"
        with FrostStore(path) as store:
            store.save_dataset(people_dataset)
            store.save_experiment("people", people_experiment)
        with FrostStore(path) as reopened:
            assert reopened.dataset_names() == ["people"]
            loaded = reopened.load_experiment("people", "people-run")
            assert loaded.pairs() == people_experiment.pairs()


_TELEMETRY_TABLES = (
    "telemetry_trajectories", "telemetry_profiles", "telemetry_metrics",
    "telemetry_spans", "telemetry_runs",
)


class TestBlockingSchemaMigration:
    def _seed_pre_blocking_store(self, path, people_dataset) -> None:
        """A store file as a PR-7-era process left it: datasets saved,
        no blocking or telemetry tables, user_version 2."""
        import sqlite3

        with FrostStore(path) as store:
            store.save_dataset(people_dataset)
        connection = sqlite3.connect(path)
        with connection:
            for table in (
                "blocking_signatures", "blocking_keys", "blocking_runs",
                *_TELEMETRY_TABLES,
            ):
                connection.execute(f"DROP TABLE {table}")
            connection.execute("PRAGMA user_version = 2")
        connection.close()

    def test_v2_store_migrates_in_place(self, tmp_path, people_dataset):
        from repro.storage.database import SCHEMA_VERSION

        path = str(tmp_path / "old.db")
        self._seed_pre_blocking_store(path, people_dataset)
        with FrostStore(path) as store:
            assert store.schema_version == SCHEMA_VERSION == 4
            # existing rows survive and the new tables work
            assert store.dataset_names() == ["people"]
            blocking = store.blocking_store()
            run_id = blocking.begin_run("standard_blocking", {})
            blocking.spill_keys(run_id, [("k", "p1"), ("k", "p2")])
            assert blocking.candidates(run_id) == {("p1", "p2")}
        # the stamp survives the reopen
        with FrostStore(path) as store:
            assert store.schema_version == SCHEMA_VERSION


class TestTelemetrySchemaMigration:
    def _seed_v3_store(self, path, people_dataset) -> None:
        """A store file as a PR-9-era process left it: datasets and
        blocking tables present, no telemetry tables, user_version 3."""
        import sqlite3

        with FrostStore(path) as store:
            store.save_dataset(people_dataset)
        connection = sqlite3.connect(path)
        with connection:
            for table in _TELEMETRY_TABLES:
                connection.execute(f"DROP TABLE {table}")
            connection.execute("PRAGMA user_version = 3")
        connection.close()

    def test_v3_store_migrates_to_v4_in_place(self, tmp_path, people_dataset):
        from repro.storage.database import SCHEMA_VERSION
        from repro.telemetry.spans import Tracer

        path = str(tmp_path / "pr9.db")
        self._seed_v3_store(path, people_dataset)
        with FrostStore(path) as store:
            assert store.schema_version == SCHEMA_VERSION == 4
            assert store.dataset_names() == ["people"]
            # the migrated telemetry tables round-trip a trace
            tracer = Tracer(enabled=True)
            with tracer.span("migration.check"):
                pass
            warehouse = store.telemetry_store()
            run_id = warehouse.record_run("migrated", tracer.roots())
            spans = warehouse.run_spans(run_id)
            assert [span.name for span in spans] == ["migration.check"]
        with FrostStore(path) as store:
            assert store.schema_version == SCHEMA_VERSION

    def test_newer_schema_version_refused(self, tmp_path):
        import sqlite3

        path = str(tmp_path / "future.db")
        FrostStore(path).close()
        connection = sqlite3.connect(path)
        with connection:
            connection.execute("PRAGMA user_version = 99")
        connection.close()
        with pytest.raises(StorageError, match="newer"):
            FrostStore(path)
