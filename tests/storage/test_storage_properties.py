"""Property-based round trips through the SQLite store."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Dataset, Experiment, GoldStandard, Match, Record
from repro.core.pairs import make_pair
from repro.storage.database import FrostStore

# SQLite stores any text; exercise quotes, unicode, and newlines.
# Surrogates are excluded (not encodable), as is NUL.
attr_text = st.text(
    alphabet=st.characters(blacklist_characters="\x00", blacklist_categories=("Cs",)),
    max_size=16,
)

record_ids = st.lists(
    st.text(
        alphabet=st.characters(
            blacklist_characters="\x00", blacklist_categories=("Cs",)
        ),
        min_size=1,
        max_size=8,
    ),
    min_size=2,
    max_size=8,
    unique=True,
)


@st.composite
def dataset_with_artifacts(draw):
    ids = draw(record_ids)
    records = [
        Record(record_id, {"name": draw(st.one_of(st.none(), attr_text))})
        for record_id in ids
    ]
    dataset = Dataset(records, name="prop-store")

    pair_budget = draw(st.integers(min_value=0, max_value=5))
    matches = []
    seen = set()
    for _ in range(pair_budget):
        indexes = draw(
            st.lists(
                st.integers(min_value=0, max_value=len(ids) - 1),
                min_size=2,
                max_size=2,
                unique=True,
            )
        )
        pair = make_pair(ids[indexes[0]], ids[indexes[1]])
        if pair in seen:
            continue
        seen.add(pair)
        score = draw(
            st.one_of(
                st.none(),
                st.floats(min_value=0, max_value=1, allow_nan=False),
            )
        )
        from_clustering = draw(st.booleans())
        matches.append(
            Match(pair=pair, score=score, from_clustering=from_clustering)
        )
    experiment = Experiment(matches, name="prop-run", solution="prop")
    gold = GoldStandard.from_pairs(
        [tuple(match.pair) for match in matches[: len(matches) // 2]],
        name="prop-gold",
    )
    return dataset, experiment, gold


class TestStoreRoundTripProperties:
    @given(dataset_with_artifacts())
    @settings(max_examples=25, deadline=None)
    def test_everything_survives(self, artifacts):
        dataset, experiment, gold = artifacts
        with FrostStore() as store:
            store.save_dataset(dataset)
            store.save_experiment(dataset.name, experiment)
            store.save_gold_standard(dataset.name, gold)

            reloaded_dataset = store.load_dataset(dataset.name)
            assert reloaded_dataset.record_ids == dataset.record_ids
            for record in dataset:
                assert reloaded_dataset[record.record_id].value(
                    "name"
                ) == record.value("name")

            reloaded_experiment = store.load_experiment(
                dataset.name, experiment.name
            )
            assert reloaded_experiment.pairs() == experiment.pairs()
            for match in experiment.matches:
                clone = next(
                    m for m in reloaded_experiment.matches if m.pair == match.pair
                )
                assert clone.from_clustering == match.from_clustering
                if match.score is None:
                    assert clone.score is None
                else:
                    assert clone.score is not None
                    assert abs(clone.score - match.score) < 1e-12

            reloaded_gold = store.load_gold_standard(dataset.name, gold.name)
            assert reloaded_gold.pairs() == gold.pairs()

    @given(dataset_with_artifacts())
    @settings(max_examples=10, deadline=None)
    def test_confusion_matrix_invariant_under_storage(self, artifacts):
        """Evaluating reloaded artifacts gives identical matrices."""
        from repro.core.confusion import ConfusionMatrix

        dataset, experiment, gold = artifacts
        original = ConfusionMatrix.from_clusterings(
            experiment.clustering(), gold.clustering, dataset.total_pairs()
        )
        with FrostStore() as store:
            store.save_dataset(dataset)
            store.save_experiment(dataset.name, experiment)
            store.save_gold_standard(dataset.name, gold)
            reloaded = ConfusionMatrix.from_clusterings(
                store.load_experiment(dataset.name, experiment.name).clustering(),
                store.load_gold_standard(dataset.name, gold.name).clustering,
                store.load_dataset(dataset.name).total_pairs(),
            )
        assert reloaded == original
