"""Structured logging and request-id correlation across carriers."""

from __future__ import annotations

import io
import json
import logging

from repro.telemetry.logging import (
    JsonFormatter,
    RequestIdFilter,
    bind_request_id,
    configure_structured_logging,
    current_request_id,
    new_request_id,
)
from repro.telemetry.spans import get_tracer


class TestRequestIds:
    def test_new_request_id_is_unique_hex(self):
        first, second = new_request_id(), new_request_id()
        assert first != second
        assert len(first) == 16
        int(first, 16)  # parses as hex

    def test_bind_scopes_to_the_with_block(self):
        assert current_request_id() is None
        with bind_request_id("req-1"):
            assert current_request_id() == "req-1"
            with bind_request_id("req-2"):
                assert current_request_id() == "req-2"
            assert current_request_id() == "req-1"
        assert current_request_id() is None

    def test_span_annotation_is_the_fallback_carrier(self):
        tracer = get_tracer()
        tracer.reset()
        tracer.enable()
        try:
            with tracer.span("request.work", request_id="req-span"):
                # no thread-local binding: the open span answers
                assert current_request_id() == "req-span"
                with tracer.span("request.child"):
                    # inherited annotation keeps the id through nesting
                    assert current_request_id() == "req-span"
        finally:
            tracer.disable()
            tracer.reset()

    def test_thread_local_wins_over_span_annotation(self):
        tracer = get_tracer()
        tracer.reset()
        tracer.enable()
        try:
            with tracer.span("request.work", request_id="from-span"):
                with bind_request_id("from-thread"):
                    assert current_request_id() == "from-thread"
        finally:
            tracer.disable()
            tracer.reset()

    def test_record_inherits_request_id_across_process_boundary(self):
        """Folded shard spans carry the id of the request that ran them."""
        tracer = get_tracer()
        tracer.reset()
        tracer.enable()
        try:
            with tracer.span("http.request", request_id="req-pool"):
                shard = tracer.record("comparison.shard", 0.01, pairs=3)
            assert shard.annotations["request_id"] == "req-pool"
            assert shard.annotations["pairs"] == 3
        finally:
            tracer.disable()
            tracer.reset()


class TestJsonLogging:
    def test_formatter_emits_one_json_object(self):
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "hello %s", ("world",), None
        )
        document = json.loads(JsonFormatter().format(record))
        assert document["message"] == "hello world"
        assert document["level"] == "INFO"
        assert document["logger"] == "repro.test"
        assert "request_id" not in document

    def test_formatter_includes_bound_request_id(self):
        record = logging.LogRecord(
            "repro.test", logging.DEBUG, __file__, 1, "work", (), None
        )
        with bind_request_id("req-json"):
            document = json.loads(JsonFormatter().format(record))
        assert document["request_id"] == "req-json"

    def test_filter_stamps_records(self):
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "x", (), None
        )
        with bind_request_id("req-filter"):
            assert RequestIdFilter().filter(record) is True
        assert record.request_id == "req-filter"

    def test_filter_keeps_explicit_request_id(self):
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "x", (), None
        )
        record.request_id = "explicit"
        with bind_request_id("ambient"):
            RequestIdFilter().filter(record)
        assert record.request_id == "explicit"

    def test_configure_structured_logging_end_to_end(self):
        stream = io.StringIO()
        previous_handlers = logging.getLogger().handlers[:]
        try:
            configure_structured_logging(level=logging.DEBUG, stream=stream)
            with bind_request_id("req-e2e"):
                logging.getLogger("repro.configured").debug("traced line")
            lines = [
                json.loads(line)
                for line in stream.getvalue().splitlines()
                if line
            ]
            ours = [d for d in lines if d["logger"] == "repro.configured"]
            assert ours[0]["message"] == "traced line"
            assert ours[0]["request_id"] == "req-e2e"
        finally:
            root = logging.getLogger()
            for handler in root.handlers[:]:
                root.removeHandler(handler)
            for handler in previous_handlers:
                root.addHandler(handler)

    def test_exceptions_are_rendered_into_the_document(self):
        formatter = JsonFormatter()
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            import sys

            record = logging.LogRecord(
                "repro.test", logging.ERROR, __file__, 1, "failed", (),
                sys.exc_info(),
            )
        document = json.loads(formatter.format(record))
        assert "RuntimeError: boom" in document["exc_info"]
