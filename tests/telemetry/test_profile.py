"""The sampling profiler: collection, collapse format, null discipline."""

from __future__ import annotations

import time

import pytest

from repro.telemetry.profile import (
    NullProfiler,
    SamplingProfiler,
    _NULL_PROFILER,
    collapse_frame,
    maybe_profile,
)
from repro.telemetry.spans import get_tracer


def spin(seconds: float) -> None:
    """Busy-wait so the sampler has a distinctive frame to observe."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(100))


class TestSampling:
    def test_collects_samples_while_running(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            spin(0.08)
        samples = profiler.samples()
        assert profiler.sample_count > 0
        assert samples
        # this module's busy-wait shows up as a collapsed-stack token
        assert any("test_profile.py:spin" in stack for stack in samples)

    def test_collapsed_output_is_flamegraph_format(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            spin(0.05)
        for line in profiler.collapsed().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack
            assert count.isdigit()
            assert all(":" in token for token in stack.split(";"))

    def test_samples_sorted_most_sampled_first(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            spin(0.05)
        counts = list(profiler.samples().values())
        assert counts == sorted(counts, reverse=True)

    def test_stop_is_idempotent_and_start_reentrant(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        profiler.start()  # second start is a no-op
        spin(0.02)
        first = profiler.stop()
        assert profiler.stop() == first  # no thread: returns the samples
        assert profiler.wall_seconds > 0

    def test_stop_annotates_the_active_span(self):
        tracer = get_tracer()
        tracer.reset()
        tracer.enable()
        try:
            with tracer.span("profiled.work") as span:
                profiler = SamplingProfiler(interval=0.001)
                profiler.start()
                spin(0.05)
                profiler.stop()
            assert span.annotations["profile_samples"] == profiler.sample_count
            assert span.annotations["profile_stacks"] == len(profiler.samples())
        finally:
            tracer.disable()
            tracer.reset()

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            SamplingProfiler(interval=0)


class TestNullDiscipline:
    def test_maybe_profile_disabled_returns_shared_null(self):
        assert maybe_profile(False) is _NULL_PROFILER
        assert maybe_profile(False) is maybe_profile(False)
        assert not _NULL_PROFILER.enabled

    def test_maybe_profile_enabled_returns_fresh_sampler(self):
        profiler = maybe_profile(True, interval=0.002)
        assert isinstance(profiler, SamplingProfiler)
        assert profiler.enabled
        assert profiler.interval == 0.002
        assert profiler is not maybe_profile(True)

    def test_null_profiler_is_inert(self):
        null = NullProfiler()
        with null as entered:
            assert entered is null
        null.start()
        assert null.stop() == {}
        assert null.samples() == {}
        assert null.sample_count == 0


class TestCollapse:
    def test_collapse_frame_is_file_and_function(self):
        import sys

        frame = sys._getframe()
        token = collapse_frame(frame)
        assert token == "test_profile.py:test_collapse_frame_is_file_and_function"
