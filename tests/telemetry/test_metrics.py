"""Metrics registry unit tests: exactness under threads, exposition."""

from __future__ import annotations

import re
import threading

import pytest

from repro.telemetry import MetricsRegistry, render_prometheus, write_metrics_json

THREADS = 8
ROUNDS = 2_000


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


def test_counter_is_exact_under_eight_threads(registry):
    counter = registry.counter("test_hits_total", "hammered counter")
    gauge = registry.gauge("test_depth")
    histogram = registry.histogram("test_seconds", buckets=(0.5, 1.0))
    barrier = threading.Barrier(THREADS)

    def hammer():
        barrier.wait(timeout=30)
        for index in range(ROUNDS):
            counter.inc()
            gauge.inc()
            histogram.observe(0.25 if index % 2 else 0.75)

    threads = [threading.Thread(target=hammer) for _ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)

    assert counter.value == THREADS * ROUNDS
    assert gauge.value == THREADS * ROUNDS
    assert histogram.count == THREADS * ROUNDS
    assert histogram.sum == pytest.approx(THREADS * ROUNDS * 0.5)
    cumulative = dict(histogram.cumulative_counts())
    assert cumulative[0.5] == THREADS * ROUNDS // 2
    assert cumulative[float("inf")] == THREADS * ROUNDS


def test_counters_reject_negative_increments(registry):
    counter = registry.counter("strict_total")
    with pytest.raises(ValueError):
        counter.inc(-1)
    counter.inc(0)  # zero is a legal no-op
    assert counter.value == 0


def test_registration_is_get_or_create_and_type_checked(registry):
    first = registry.counter("shared_total", "help text")
    second = registry.counter("shared_total")
    assert first is second
    with pytest.raises(ValueError):
        registry.gauge("shared_total")
    with pytest.raises(ValueError):
        registry.histogram("shared_total")
    assert registry.get("shared_total") is first
    assert registry.get("unknown") is None


def test_disabled_registry_freezes_instruments(registry):
    counter = registry.counter("frozen_total")
    histogram = registry.histogram("frozen_seconds")
    registry.disable()
    counter.inc(5)
    histogram.observe(1.0)
    assert counter.value == 0
    assert histogram.count == 0
    registry.enable()
    counter.inc(5)
    assert counter.value == 5


def test_reset_zeroes_values_but_keeps_handles(registry):
    counter = registry.counter("resettable_total")
    counter.inc(3)
    registry.reset()
    assert counter.value == 0
    counter.inc()  # the module-level handle keeps working
    assert registry.values()["resettable_total"] == 1


def test_snapshot_and_values_flatten_histograms(registry):
    registry.counter("c_total").inc(2)
    registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
    values = registry.values()
    assert values["c_total"] == 2
    assert values["h_seconds_count"] == 1
    assert values["h_seconds_sum"] == 0.5
    snapshot = registry.snapshot()
    assert snapshot["c_total"]["type"] == "counter"
    assert snapshot["h_seconds"]["buckets"] == {"1.0": 1}


def test_prometheus_exposition_parses(registry):
    registry.counter("demo_hits_total", "demo counter").inc(7)
    registry.gauge("demo_depth", "demo gauge").set(3.5)
    registry.histogram("demo_seconds", "demo histogram", buckets=(0.1, 1.0)).observe(
        0.05
    )
    text = render_prometheus(registry)
    assert text.endswith("\n")
    # every non-comment line is `name{labels} value` or `name value`
    sample = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$"
    )
    for line in text.strip().splitlines():
        if line.startswith("#"):
            assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ", line)
        else:
            assert sample.match(line), line
    assert "# TYPE demo_hits_total counter" in text
    assert "demo_hits_total 7" in text
    assert "demo_depth 3.5" in text
    assert 'demo_seconds_bucket{le="0.1"} 1' in text
    assert 'demo_seconds_bucket{le="+Inf"} 1' in text
    assert "demo_seconds_count 1" in text


def test_metrics_json_export(registry, tmp_path):
    registry.counter("exported_total").inc(4)
    path = write_metrics_json(tmp_path / "metrics.json", registry)
    import json

    document = json.loads(path.read_text())
    assert document["exported_total"]["value"] == 4
