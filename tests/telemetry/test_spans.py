"""Span tracer unit tests: nesting, propagation, disabled-mode no-ops."""

from __future__ import annotations

import json
import threading

import pytest

from repro.telemetry import (
    Tracer,
    get_tracer,
    render_span_tree,
    spans_to_rows,
    write_spans_jsonl,
)
from repro.telemetry.spans import _NULL_SPAN


@pytest.fixture
def tracer():
    return Tracer(enabled=True)


def test_nesting_follows_lexical_structure(tracer):
    with tracer.span("outer", records=10) as outer:
        with tracer.span("inner") as inner:
            inner.annotate(pairs=4)
    roots = tracer.roots()
    assert [root.name for root in roots] == ["outer"]
    assert roots[0].annotations == {"records": 10}
    assert [child.name for child in roots[0].children] == ["inner"]
    assert roots[0].children[0].annotations == {"pairs": 4}
    assert roots[0].children[0].parent_id == outer.span_id
    assert roots[0].seconds >= roots[0].children[0].seconds >= 0.0


def test_disabled_tracer_hands_out_the_shared_null_span():
    tracer = Tracer(enabled=False)
    assert tracer.span("anything", records=1) is _NULL_SPAN
    with tracer.span("anything") as span:
        span.annotate(ignored=True)  # must not raise
    assert tracer.roots() == []
    assert tracer.activate(tracer.context()) is _NULL_SPAN
    assert tracer.record("shard", 0.5) is None
    tracer.annotate(ignored=True)  # no open span, disabled: no-op


def test_trace_decorator_names_span_after_function(tracer):
    @tracer.trace()
    def scored_function():
        return 42

    assert scored_function() == 42
    assert tracer.roots()[0].name.endswith("scored_function")


def test_exception_annotates_and_closes_the_span(tracer):
    with pytest.raises(ValueError):
        with tracer.span("failing"):
            raise ValueError("boom")
    (root,) = tracer.roots()
    assert root.annotations["error"] == "ValueError"
    assert root.seconds is not None


def test_context_propagates_across_threads(tracer):
    def worker(context):
        with tracer.activate(context):
            with tracer.span("worker.job"):
                pass

    with tracer.span("submit") as submit_span:
        context = tracer.context()
        thread = threading.Thread(target=worker, args=(context,))
        thread.start()
        thread.join()
    (root,) = tracer.roots()
    assert root is submit_span
    assert [child.name for child in root.children] == ["worker.job"]


def test_record_folds_external_timing_into_the_tree(tracer):
    with tracer.span("comparison.sharded"):
        tracer.record("comparison.shard", 0.25, pairs=100)
    (root,) = tracer.roots()
    (shard,) = root.children
    assert shard.seconds == 0.25
    assert shard.annotations == {"pairs": 100}


def test_reset_drops_completed_roots(tracer):
    with tracer.span("one"):
        pass
    tracer.reset()
    assert tracer.roots() == []


def test_default_tracer_is_disabled():
    assert get_tracer().enabled is False


def test_spans_export_jsonl_and_tree(tracer, tmp_path):
    with tracer.span("root", records=5):
        with tracer.span("child"):
            pass
    roots = tracer.roots()
    rows = spans_to_rows(roots)
    assert {row["name"] for row in rows} == {"root", "child"}
    path = write_spans_jsonl(tmp_path / "spans.jsonl", roots)
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == 2
    child = next(row for row in lines if row["name"] == "child")
    root = next(row for row in lines if row["name"] == "root")
    assert child["parent_id"] == root["span_id"]
    tree = render_span_tree(roots[0])
    assert "root" in tree and "└─ child" in tree and "[records=5]" in tree
