"""End-to-end telemetry: one traced pipeline run, one coherent tree.

The tentpole guarantee: enabling the default tracer and running a
pipeline through the engine produces a single span tree covering
blocking, comparison (including process-pool shards), clustering, and
the engine job wrapper — with cache hits visible both as span
annotations and as registry counters.
"""

from __future__ import annotations

import pytest

from repro.core.platform import FrostPlatform
from repro.datagen import make_person_benchmark
from repro.engine import ExperimentEngine, JobSpec
from repro.streaming import build_pipeline_and_index, build_session
from repro.telemetry import get_metrics, get_tracer

CONFIG = {
    "key": {"kind": "first_token", "attribute": "last_name"},
    "similarities": {
        "first_name": "jaro_winkler",
        "last_name": "jaro_winkler",
        "city": "jaro_winkler",
    },
    "threshold": 0.8,
}


@pytest.fixture
def telemetry():
    tracer = get_tracer()
    registry = get_metrics()
    tracer.reset()
    registry.reset()
    tracer.enable()
    yield tracer, registry
    tracer.disable()
    tracer.reset()
    registry.reset()


def _span_names(root):
    return [span.name for span in root.walk()]


def test_traced_engine_run_builds_one_coherent_tree(telemetry):
    tracer, registry = telemetry
    benchmark = make_person_benchmark(200, seed=11)
    platform = FrostPlatform()
    platform.add_dataset(benchmark.dataset)
    platform.add_gold(benchmark.dataset.name, benchmark.gold)
    pipeline, _ = build_pipeline_and_index(CONFIG)
    pipeline = pipeline.with_parallelism(workers=2, shards=4, min_pairs=0)
    engine = ExperimentEngine(platform, max_workers=2)

    with tracer.span("test.run"):
        first = engine.submit(
            JobSpec(
                "pipeline",
                {"pipeline": pipeline, "dataset": benchmark.dataset.name},
                job_id="traced#0",
            )
        )
        engine.submit(
            JobSpec(
                "pipeline",
                {"pipeline": pipeline, "dataset": benchmark.dataset.name},
                job_id="traced#1",
                depends_on=(first,),
            )
        )
        results = engine.run()

    assert all(r.state.value == "succeeded" for r in results.values())
    assert results["traced#0"].cached is False
    assert results["traced#1"].cached is True

    (root,) = tracer.roots()
    names = _span_names(root)
    # one tree spans submission, the engine's worker thread, every
    # pipeline stage, and the process-pool comparison shards
    assert root.name == "test.run"
    for stage in (
        "engine.job",
        "pipeline.run",
        "pipeline.prepare",
        "pipeline.candidates",
        "pipeline.similarity",
        "comparison.sharded",
        "comparison.shard",
        "pipeline.decision",
        "pipeline.clustering",
    ):
        assert stage in names, f"missing span {stage!r} in {sorted(set(names))}"
    assert names.count("comparison.shard") == 4  # one per shard
    assert names.count("engine.job") == 2

    jobs = [span for span in root.walk() if span.name == "engine.job"]
    cached_flags = sorted(span.annotations.get("cached") for span in jobs)
    assert cached_flags == [False, True]
    # the cached job must not re-run the pipeline
    cached_job = next(s for s in jobs if s.annotations.get("cached"))
    assert _span_names(cached_job) == ["engine.job"]

    # shard spans carry the pair counts the workers measured
    shards = [span for span in root.walk() if span.name == "comparison.shard"]
    candidates = next(
        span for span in root.walk() if span.name == "pipeline.candidates"
    )
    assert sum(span.annotations["pairs"] for span in shards) == (
        candidates.annotations["pairs"]
    )

    values = registry.values()
    assert values["frost_engine_cache_hits_total"] == 1
    assert values["frost_engine_cache_misses_total"] == 1
    assert values["frost_blocking_candidates_total"] > 0
    assert values["frost_comparison_pairs_total"] == (
        candidates.annotations["pairs"]
    )
    assert values["frost_clustering_matches_total"] > 0
    assert values["frost_engine_job_seconds_count"] == 2


def test_streaming_ingest_is_traced_and_counted(telemetry):
    tracer, registry = telemetry
    benchmark = make_person_benchmark(120, seed=5)
    records = list(benchmark.dataset)
    session = build_session(CONFIG, name="traced-stream")
    session.ingest(records[:100])
    session.ingest(records[100:])

    roots = tracer.roots()
    assert [root.name for root in roots] == ["stream.ingest", "stream.ingest"]
    assert roots[0].annotations["records"] == 100
    assert roots[1].annotations["records"] == 20
    assert "delta_candidates" in roots[1].annotations

    values = registry.values()
    assert values["frost_stream_batches_total"] == 2
    assert values["frost_stream_records_total"] == 120


def test_disabled_tracing_leaves_no_spans_behind():
    tracer = get_tracer()
    tracer.reset()
    assert tracer.enabled is False
    benchmark = make_person_benchmark(80, seed=3)
    pipeline, _ = build_pipeline_and_index(CONFIG)
    run = pipeline.run(benchmark.dataset)
    assert run.experiment is not None
    assert tracer.roots() == []
