"""Exporter edge cases: empty traces, orphans, single spans, full HELP."""

from __future__ import annotations

import re

from repro.telemetry.export import (
    render_prometheus,
    render_span_tree,
    rows_to_trees,
    spans_to_rows,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Tracer


class TestEmptyTrace:
    def test_no_roots_yields_no_rows(self):
        assert spans_to_rows([]) == []

    def test_rows_to_trees_of_nothing(self):
        assert rows_to_trees([]) == []

    def test_empty_registry_renders_bare_newline(self):
        assert render_prometheus(MetricsRegistry()) == "\n"


class TestOrphanedSpans:
    def _row(self, span_id, parent_id, name):
        return {
            "span_id": span_id,
            "parent_id": parent_id,
            "name": name,
            "started_at": 1.0,
            "seconds": 0.5,
            "annotations": {},
        }

    def test_orphan_is_promoted_to_root(self):
        """A span whose parent was never recorded still renders."""
        rows = [
            self._row(1, None, "root"),
            self._row(2, 1, "child"),
            self._row(3, 99, "orphan"),  # parent 99 was never recorded
        ]
        trees = rows_to_trees(rows)
        assert [tree.name for tree in trees] == ["root", "orphan"]
        assert [child.name for child in trees[0].children] == ["child"]
        # rendering a damaged trace does not crash
        assert "orphan" in render_span_tree(trees[1])

    def test_self_parenting_row_does_not_recurse(self):
        trees = rows_to_trees([self._row(7, 7, "loop")])
        assert [tree.name for tree in trees] == ["loop"]
        assert trees[0].children == []


class TestSingleSpanTree:
    def test_render_span_tree_of_one_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("lonely", items=3):
            pass
        (root,) = tracer.roots()
        rendered = render_span_tree(root)
        assert rendered.splitlines()[0].startswith("lonely")
        assert "items=3" in rendered
        assert "ms" in rendered

    def test_unfinished_span_renders_a_question_mark(self):
        from repro.telemetry.spans import Span

        never_closed = Span("still.open", None, {})
        assert never_closed.seconds is None
        rendered = render_span_tree(never_closed)
        assert rendered.startswith("still.open")
        assert "?" in rendered


class TestPrometheusHelp:
    def test_every_metric_gets_help_and_type(self):
        registry = MetricsRegistry()
        registry.counter("with_help_total", "documented")
        registry.counter("without_help_total")  # no help text
        registry.histogram("latency_seconds")
        text = render_prometheus(registry)
        for name in ("with_help_total", "without_help_total", "latency_seconds"):
            assert f"# HELP {name} " in text
            assert f"# TYPE {name} " in text
        # empty help falls back to the metric's own name
        assert "# HELP without_help_total without_help_total" in text

    def test_full_exposition_parses(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "first").inc(2)
        registry.gauge("b_current").set(1.5)
        registry.histogram("c_seconds", "third").observe(0.2)
        text = render_prometheus(registry)
        sample = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$")
        comment = re.compile(
            r"^# (HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+"
            r"|TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram))$"
        )
        lines = text.strip().splitlines()
        assert lines
        for line in lines:
            assert sample.match(line) or comment.match(line), line
        # the comment preamble is complete: HELP then TYPE per metric
        helps = [line for line in lines if line.startswith("# HELP")]
        types = [line for line in lines if line.startswith("# TYPE")]
        assert len(helps) == len(types) == 3
