"""The telemetry warehouse: persistence, SQL-pushdown queries, retention."""

from __future__ import annotations

import sqlite3

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Tracer
from repro.telemetry.store import TelemetryError, TelemetryStore


def traced_roots(stage_seconds: dict[str, float]):
    """A one-root trace whose children carry fixed durations."""
    tracer = Tracer(enabled=True)
    with tracer.span("run.root"):
        for name, seconds in stage_seconds.items():
            tracer.record(name, seconds, fixture=True)
    return tracer.roots()


@pytest.fixture
def warehouse(tmp_path):
    with TelemetryStore(tmp_path / "telemetry.db") as store:
        yield store


class TestRecordAndRoundTrip:
    def test_trace_round_trips(self, warehouse):
        roots = traced_roots({"stage.a": 0.5, "stage.b": 0.25})
        run_id = warehouse.record_run("smoke", roots)
        trees = warehouse.run_spans(run_id)
        assert len(trees) == 1
        root = trees[0]
        assert root.name == "run.root"
        assert [child.name for child in root.children] == ["stage.a", "stage.b"]
        assert root.children[0].annotations == {"fixture": True}
        assert root.children[0].seconds == pytest.approx(0.5)

    def test_metrics_snapshot_round_trips(self, warehouse):
        registry = MetricsRegistry()
        registry.counter("demo_total", "demo").inc(7)
        registry.histogram("demo_seconds").observe(0.25)
        run_id = warehouse.record_run("smoke", traced_roots({}), registry)
        stored = warehouse.run_metrics(run_id)
        assert stored["demo_total"]["value"] == 7
        assert stored["demo_seconds"]["count"] == 1

    def test_profile_samples_round_trip(self, warehouse):
        samples = {"a.py:f;b.py:g": 12, "a.py:f": 3}
        run_id = warehouse.record_run(
            "smoke", traced_roots({}), profile_samples=samples
        )
        stored = warehouse.run_profile(run_id)
        assert stored == samples
        # hottest first
        assert list(stored) == ["a.py:f;b.py:g", "a.py:f"]

    def test_list_runs_newest_first(self, warehouse):
        first = warehouse.record_run("alpha", traced_roots({"s": 0.1}))
        second = warehouse.record_run("beta", traced_roots({"s": 0.1}))
        runs = warehouse.list_runs()
        assert [run["run_id"] for run in runs] == [second, first]
        assert runs[0]["name"] == "beta"
        assert runs[0]["spans"] == 2

    def test_resolve_by_name_picks_latest(self, warehouse):
        warehouse.record_run("nightly", traced_roots({}))
        latest = warehouse.record_run("nightly", traced_roots({}))
        assert warehouse.resolve_run("nightly") == latest

    def test_unknown_run_raises(self, warehouse):
        with pytest.raises(TelemetryError, match="no telemetry run"):
            warehouse.resolve_run(99)
        with pytest.raises(TelemetryError, match="no telemetry run"):
            warehouse.resolve_run("ghost")

    def test_constructor_rejects_path_and_connection(self, tmp_path):
        connection = sqlite3.connect(":memory:")
        with pytest.raises(ValueError, match="not both"):
            TelemetryStore(tmp_path / "x.db", connection=connection)
        with pytest.raises(ValueError, match="path or a connection"):
            TelemetryStore()


class TestQueries:
    def test_slowest_spans_orders_by_duration(self, warehouse):
        warehouse.record_run(
            "smoke", traced_roots({"fast": 0.01, "slow": 2.0, "mid": 0.5})
        )
        rows = warehouse.slowest_spans(limit=2)
        assert [row["name"] for row in rows] == ["slow", "mid"]

    def test_slowest_spans_scoped_to_run(self, warehouse):
        warehouse.record_run("a", traced_roots({"slow": 5.0}))
        run_b = warehouse.record_run("b", traced_roots({"quick": 0.1}))
        rows = warehouse.slowest_spans(run=run_b, limit=1)
        assert rows[0]["run_id"] == run_b
        assert rows[0]["name"] == "quick"

    def test_stage_history_across_runs(self, warehouse):
        warehouse.record_run("day1", traced_roots({"stage.sim": 1.0}))
        warehouse.record_run("day2", traced_roots({"stage.sim": 2.0}))
        history = warehouse.stage_history("stage.sim")
        assert [row["total_seconds"] for row in history] == [1.0, 2.0]
        assert [row["run_name"] for row in history] == ["day1", "day2"]

    def test_diff_reports_per_stage_deltas(self, warehouse):
        run_a = warehouse.record_run(
            "base", traced_roots({"stage.sim": 1.0, "stage.only_a": 0.2})
        )
        run_b = warehouse.record_run(
            "cand", traced_roots({"stage.sim": 3.0, "stage.only_b": 0.1})
        )
        rows = {row["stage"]: row for row in warehouse.diff_runs(run_a, run_b)}
        sim = rows["stage.sim"]
        assert sim["delta_seconds"] == pytest.approx(2.0)
        assert sim["ratio"] == pytest.approx(3.0)
        assert rows["stage.only_a"]["seconds_b"] is None
        assert rows["stage.only_b"]["seconds_a"] is None
        # one-sided stages (unmeasurable delta) sort first
        assert warehouse.diff_runs(run_a, run_b)[0]["delta_seconds"] is None

    def test_diff_accepts_run_names(self, warehouse):
        warehouse.record_run("base", traced_roots({"s": 1.0}))
        warehouse.record_run("cand", traced_roots({"s": 1.0}))
        rows = {row["stage"]: row for row in warehouse.diff_runs("base", "cand")}
        assert rows["s"]["delta_seconds"] == pytest.approx(0.0)


class TestRetention:
    def test_prune_keeps_newest(self, warehouse):
        ids = [
            warehouse.record_run(f"run{i}", traced_roots({"s": 0.1}))
            for i in range(4)
        ]
        assert warehouse.prune(keep=2) == 2
        kept = [run["run_id"] for run in warehouse.list_runs()]
        assert kept == [ids[3], ids[2]]
        # the evicted runs' spans are gone too
        span_owners = {
            row["run_id"] for row in warehouse.slowest_spans(limit=100)
        }
        assert span_owners == set(kept)

    def test_prune_requires_a_policy(self, warehouse):
        with pytest.raises(ValueError, match="keep and/or older_than"):
            warehouse.prune()

    def test_prune_by_age(self, warehouse):
        warehouse.record_run("old", traced_roots({}))
        # everything was recorded "now", so a large cutoff keeps all
        assert warehouse.prune(older_than_seconds=3600) == 0
        assert warehouse.prune(older_than_seconds=-1) == 1
        assert warehouse.list_runs() == []

    def test_max_runs_retention_on_record(self, tmp_path):
        with TelemetryStore(tmp_path / "t.db", max_runs=2) as store:
            for index in range(5):
                store.record_run(f"run{index}", traced_roots({"s": 0.1}))
            names = [run["name"] for run in store.list_runs()]
        assert names == ["run4", "run3"]

    def test_max_runs_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            TelemetryStore(tmp_path / "t.db", max_runs=0)


class TestTrajectoryIngest:
    def test_points_accumulate_per_area(self, warehouse):
        for value in (100.0, 140.0):
            warehouse.ingest_trajectory(
                {
                    "area": "parallel",
                    "generated_at": "2026-08-08T00:00:00Z",
                    "context": {"smoke": True},
                    "throughput": {"pairs_per_second": value},
                }
            )
        warehouse.ingest_trajectory({"area": "serving", "generated_at": "x"})
        points = warehouse.trajectory_history("parallel")
        assert len(points) == 2
        assert points[0]["document"]["throughput"]["pairs_per_second"] == 100.0
        assert len(warehouse.trajectory_history()) == 3

    def test_area_is_required(self, warehouse):
        with pytest.raises(TelemetryError, match="area"):
            warehouse.ingest_trajectory({"generated_at": "x"})


class TestStoreView:
    def test_frost_store_view_shares_the_file(self, tmp_path):
        from repro.storage.database import FrostStore

        path = tmp_path / "frost.db"
        with FrostStore(path) as store:
            warehouse = store.telemetry_store()
            run_id = warehouse.record_run("co-located", traced_roots({"s": 1.0}))
            # closing the borrowed view must not close the store
            warehouse.close()
            assert store.dataset_names() == []
        # a standalone reopen of the same file sees the run
        with TelemetryStore(path) as reopened:
            assert reopened.resolve_run("co-located") == run_id
