"""Tests for the corruption model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import corruption


@pytest.fixture
def rng():
    return random.Random(42)


class TestCharacterCorruptors:
    def test_insert_grows_by_one(self, rng):
        assert len(corruption.typo_insert("hello", rng)) == 6

    def test_delete_shrinks_by_one(self, rng):
        assert len(corruption.typo_delete("hello", rng)) == 4

    def test_delete_keeps_single_char(self, rng):
        assert corruption.typo_delete("x", rng) == "x"

    def test_substitute_keeps_length(self, rng):
        assert len(corruption.typo_substitute("hello", rng)) == 5

    def test_transpose_keeps_multiset(self, rng):
        result = corruption.typo_transpose("abcdef", rng)
        assert sorted(result) == sorted("abcdef")

    def test_transpose_short_string(self, rng):
        assert corruption.typo_transpose("a", rng) == "a"

    def test_ocr_confuse_applies_known_confusion(self, rng):
        result = corruption.ocr_confuse("0k", rng)
        assert result == "ok"

    def test_ocr_confuse_no_candidates(self, rng):
        assert corruption.ocr_confuse("xyx", rng) == "xyx"


class TestTokenCorruptors:
    def test_swap_tokens(self, rng):
        result = corruption.swap_tokens("alpha beta", rng)
        assert result == "beta alpha"

    def test_swap_single_token(self, rng):
        assert corruption.swap_tokens("alpha", rng) == "alpha"

    def test_drop_token(self, rng):
        result = corruption.drop_token("a b c", rng)
        assert len(result.split()) == 2

    def test_drop_last_token_keeps_one(self, rng):
        assert corruption.drop_token("solo", rng) == "solo"

    def test_duplicate_token(self, rng):
        result = corruption.duplicate_token("a b", rng)
        assert len(result.split()) == 3

    def test_abbreviate_token(self, rng):
        result = corruption.abbreviate_token("john smith", rng)
        assert any(token.endswith(".") for token in result.split())

    def test_abbreviate_short_tokens_unchanged(self, rng):
        assert corruption.abbreviate_token("ab cd", rng) == "ab cd"

    def test_case_noise_changes_case_only(self, rng):
        result = corruption.case_noise("hello world", rng)
        assert result.lower() == "hello world"


class TestCorruptionModel:
    def test_zero_rate_is_identity(self, rng):
        model = corruption.CorruptionModel(attribute_rate=0.0, null_rate=0.0)
        assert model.corrupt_value("unchanged", rng) == "unchanged"

    def test_null_rate_one_always_nulls(self, rng):
        model = corruption.CorruptionModel(null_rate=1.0)
        assert model.corrupt_value("anything", rng) is None

    def test_none_stays_none(self, rng):
        model = corruption.CorruptionModel(attribute_rate=1.0)
        assert model.corrupt_value(None, rng) is None

    def test_full_rate_usually_changes_value(self):
        model = corruption.CorruptionModel(attribute_rate=1.0, errors_per_value=2.0)
        rng = random.Random(1)
        changed = sum(
            1
            for _ in range(50)
            if model.corrupt_value("representative value", rng)
            != "representative value"
        )
        assert changed > 40

    def test_corrupt_record_visits_all_attributes(self):
        model = corruption.CorruptionModel(null_rate=1.0)
        rng = random.Random(0)
        values = {"a": "x", "b": "y"}
        assert model.corrupt_record(values, rng) == {"a": None, "b": None}

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30)
    def test_deterministic_given_seed(self, seed):
        model = corruption.CorruptionModel(attribute_rate=0.8)
        first = model.corrupt_value("some test value", random.Random(seed))
        second = model.corrupt_value("some test value", random.Random(seed))
        assert first == second
