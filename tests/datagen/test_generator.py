"""Tests for the dirty-dataset generation engine."""

import random

import pytest

from repro.datagen.corruption import CorruptionModel
from repro.datagen.generator import (
    DirtyDatasetGenerator,
    cluster_sizes_fixed,
    cluster_sizes_zipf,
    scored_benchmark_experiment,
)


def entity(rng):
    return {"name": f"entity-{rng.randrange(10_000)}", "kind": "thing"}


class TestClusterSizeSamplers:
    def test_fixed(self):
        sampler = cluster_sizes_fixed(3)
        assert sampler(random.Random(0)) == 3

    def test_fixed_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            cluster_sizes_fixed(0)

    def test_zipf_range(self):
        sampler = cluster_sizes_zipf(maximum=4)
        rng = random.Random(0)
        sizes = {sampler(rng) for _ in range(200)}
        assert sizes <= {1, 2, 3, 4}
        assert 1 in sizes

    def test_zipf_skew_prefers_small(self):
        sampler = cluster_sizes_zipf(maximum=5, skew=3.0)
        rng = random.Random(0)
        sizes = [sampler(rng) for _ in range(500)]
        assert sizes.count(1) > sizes.count(5)

    def test_zipf_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            cluster_sizes_zipf(maximum=0)


class TestGenerator:
    def test_exact_record_count(self):
        generator = DirtyDatasetGenerator(entity_factory=entity, seed=1)
        benchmark = generator.generate(137)
        assert len(benchmark.dataset) == 137

    def test_zero_records(self):
        generator = DirtyDatasetGenerator(entity_factory=entity)
        assert len(generator.generate(0).dataset) == 0

    def test_negative_rejected(self):
        generator = DirtyDatasetGenerator(entity_factory=entity)
        with pytest.raises(ValueError, match="non-negative"):
            generator.generate(-1)

    def test_gold_covers_only_generated_records(self):
        generator = DirtyDatasetGenerator(entity_factory=entity, seed=2)
        benchmark = generator.generate(50)
        record_ids = set(benchmark.dataset.record_ids)
        assert benchmark.gold.clustering.records() <= record_ids

    def test_duplicates_exist_with_fixed_clusters(self):
        generator = DirtyDatasetGenerator(
            entity_factory=entity, cluster_sizes=cluster_sizes_fixed(2), seed=3
        )
        benchmark = generator.generate(40)
        assert benchmark.duplicate_pairs == 20

    def test_reproducible(self):
        make = lambda: DirtyDatasetGenerator(entity_factory=entity, seed=9).generate(30)
        first, second = make(), make()
        assert first.dataset.record_ids == second.dataset.record_ids
        assert first.gold.pairs() == second.gold.pairs()

    def test_base_sparsity_nulls_values(self):
        generator = DirtyDatasetGenerator(
            entity_factory=entity, base_sparsity=0.9, seed=4
        )
        benchmark = generator.generate(60)
        nulls = sum(
            1
            for record in benchmark.dataset
            for attribute in benchmark.dataset.attributes
            if record.is_null(attribute)
        )
        total = len(benchmark.dataset) * len(benchmark.dataset.attributes)
        assert nulls / total > 0.7

    def test_originals_clean_by_default(self):
        generator = DirtyDatasetGenerator(
            entity_factory=lambda rng: {"fixed": "constant value here"},
            cluster_sizes=cluster_sizes_fixed(3),
            corruption=CorruptionModel(attribute_rate=1.0, errors_per_value=3.0),
            seed=5,
        )
        benchmark = generator.generate(30)
        # each cluster's -0 record keeps the clean value
        originals = [
            record
            for record in benchmark.dataset
            if record.record_id.endswith("-0")
        ]
        assert all(r.value("fixed") == "constant value here" for r in originals)

    def test_duplicates_shuffled(self):
        generator = DirtyDatasetGenerator(
            entity_factory=entity, cluster_sizes=cluster_sizes_fixed(2), seed=6
        )
        benchmark = generator.generate(100)
        ids = benchmark.dataset.record_ids
        adjacent_duplicates = sum(
            1
            for a, b in zip(ids, ids[1:])
            if a.split("-")[0] == b.split("-")[0]
        )
        assert adjacent_duplicates < len(ids) // 2


class TestScoredBenchmarkExperiment:
    def test_target_match_count(self):
        generator = DirtyDatasetGenerator(
            entity_factory=entity, cluster_sizes=cluster_sizes_fixed(2), seed=7
        )
        benchmark = generator.generate(60)
        experiment = scored_benchmark_experiment(benchmark, target_matches=100)
        assert len(experiment) == 100
        assert experiment.has_scores()

    def test_true_pairs_score_higher_on_average(self):
        generator = DirtyDatasetGenerator(
            entity_factory=entity, cluster_sizes=cluster_sizes_fixed(2), seed=8
        )
        benchmark = generator.generate(80)
        experiment = scored_benchmark_experiment(benchmark, target_matches=120)
        gold_pairs = benchmark.gold.pairs()
        true_scores = [
            sp.score for sp in experiment.scored_pairs() if sp.pair in gold_pairs
        ]
        false_scores = [
            sp.score for sp in experiment.scored_pairs() if sp.pair not in gold_pairs
        ]
        assert sum(true_scores) / len(true_scores) > sum(false_scores) / len(
            false_scores
        )
