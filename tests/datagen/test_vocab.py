"""Sanity tests for the embedded word pools behind the generators."""

import pytest

from repro.datagen import vocab


POOLS = [
    "GIVEN_NAMES",
    "SURNAMES",
    "STREETS",
    "CITIES",
    "RESEARCH_WORDS",
    "VENUES",
    "ARTIST_WORDS",
    "MUSIC_WORDS",
    "GENRES",
    "PRODUCT_BRANDS",
    "PRODUCT_WORDS",
    "MARKETING_WORDS",
    "LAPTOP_BRANDS",
    "LAPTOP_SERIES",
    "CPU_MODELS",
    "RAM_SIZES",
    "STORAGE",
    "SCREEN_SIZES",
]


@pytest.mark.parametrize("pool_name", POOLS)
def test_pool_exists_and_is_usable(pool_name):
    pool = getattr(vocab, pool_name)
    assert len(pool) >= 3, f"{pool_name} is too small to drive a generator"
    assert all(isinstance(entry, str) and entry for entry in pool)


@pytest.mark.parametrize("pool_name", POOLS)
def test_pool_entries_unique(pool_name):
    pool = getattr(vocab, pool_name)
    assert len(set(pool)) == len(pool), f"{pool_name} contains duplicates"


def test_sampling_pools_support_rngsample():
    """Generators draw several distinct words per value."""
    assert len(vocab.RESEARCH_WORDS) >= 9  # bibliographic titles draw up to 8
    assert len(vocab.PRODUCT_WORDS) >= 5  # product offers draw up to 4
