"""Tests for the calibrated SIGMOD contest substitutes (Table 2)."""

import pytest

from repro.datagen.sigmod import make_sigmod_contest
from repro.profiling import sparsity, textuality, vocabulary_similarity


@pytest.fixture(scope="module")
def contest():
    return make_sigmod_contest(scale=0.01, seed=0)


class TestStructure:
    def test_split_lookup(self, contest):
        assert contest.split("X2") is contest.x2
        assert contest.split("z3") is contest.z3

    def test_unknown_split(self, contest):
        with pytest.raises(KeyError, match="x2/z2/x3/z3"):
            contest.split("q9")

    def test_scale_validation(self):
        with pytest.raises(ValueError, match="positive"):
            make_sigmod_contest(scale=0)

    def test_record_counts_scale(self, contest):
        assert len(contest.x2.dataset) == round(58_653 * 0.01)
        assert len(contest.z2.dataset) == round(18_915 * 0.01)


class TestProfileCalibration:
    def test_sparsity_ordering(self, contest):
        """Table 2: X3/Z3 are much sparser than X2/Z2."""
        assert sparsity(contest.x3.dataset) > 2 * sparsity(contest.x2.dataset)
        assert sparsity(contest.z3.dataset) > sparsity(contest.z2.dataset)

    def test_sparsity_magnitudes(self, contest):
        assert sparsity(contest.x2.dataset) == pytest.approx(0.111, abs=0.05)
        assert sparsity(contest.x3.dataset) == pytest.approx(0.501, abs=0.06)

    def test_textuality_ordering(self, contest):
        """Table 2: D2 is much more textual than D3."""
        assert textuality(contest.x2.dataset) > textuality(contest.x3.dataset)

    def test_vocabulary_similarity_ordering(self, contest):
        """Table 2: VS(X2,Z2)=59% > VS(X3,Z3)=37.7%."""
        vs_d2 = vocabulary_similarity(contest.x2.dataset, contest.z2.dataset)
        vs_d3 = vocabulary_similarity(contest.x3.dataset, contest.z3.dataset)
        assert vs_d2 > vs_d3

    def test_positive_ratio_ordering(self, contest):
        """Table 2: PR(Z3)=12.1% far above PR(X3)=2.2%."""
        assert contest.z3.labeled.positive_ratio > 3 * contest.x3.labeled.positive_ratio

    def test_labeled_positive_ratios_near_targets(self, contest):
        assert contest.x2.labeled.positive_ratio == pytest.approx(0.022, abs=0.01)
        assert contest.z3.labeled.positive_ratio == pytest.approx(0.121, abs=0.03)


class TestLabeledPairs:
    def test_labels_consistent_with_gold(self, contest):
        clustering = contest.x2.gold.clustering
        for pair, label in contest.x2.labeled.pairs[:200]:
            assert clustering.same_cluster(*pair) == label

    def test_positives_helper(self, contest):
        positives = contest.x2.labeled.positives()
        assert len(positives) == sum(
            1 for _, label in contest.x2.labeled.pairs if label
        )

    def test_pairs_reference_dataset_records(self, contest):
        dataset = contest.x2.dataset
        for pair, _ in contest.x2.labeled.pairs[:100]:
            assert pair[0] in dataset and pair[1] in dataset
