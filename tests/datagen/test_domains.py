"""Tests for the domain generators and their paper calibrations."""

import random

import pytest

from repro.datagen import domains


class TestEntityFactories:
    @pytest.mark.parametrize(
        "factory",
        [
            domains.person_entity,
            domains.bibliographic_entity,
            domains.cd_entity,
            domains.song_entity,
            domains.product_offer_entity,
        ],
    )
    def test_produces_string_or_none_values(self, factory):
        entity = factory(random.Random(0))
        assert entity
        for value in entity.values():
            assert value is None or isinstance(value, str)

    def test_person_schema(self):
        entity = domains.person_entity(random.Random(1))
        assert {"first_name", "last_name", "city", "zip"} <= set(entity)

    def test_bibliographic_rich_schema(self):
        """§4.5.2 needs a 'meaningful and sophisticated schema' —
        Cora has many attributes."""
        entity = domains.bibliographic_entity(random.Random(1))
        assert len(entity) >= 7

    def test_product_offer_cluttered_name(self):
        """§5.4: 'unstructured, cluttered information in the attribute
        name'."""
        entity = domains.product_offer_entity(random.Random(2))
        assert len(entity["name"].split()) >= 4


class TestPackagedBenchmarks:
    def test_person_benchmark(self):
        benchmark = domains.make_person_benchmark(200, seed=0)
        assert len(benchmark.dataset) == 200
        assert benchmark.duplicate_pairs > 0

    def test_cora_like_sizes(self):
        benchmark = domains.make_cora_like_benchmark(500, seed=0)
        assert len(benchmark.dataset) == 500
        # heavy cluster tail: some cluster of size >= 5
        assert max(benchmark.gold.clustering.cluster_sizes()) >= 5

    def test_freedb_like_few_duplicates(self):
        benchmark = domains.make_freedb_like_benchmark(2000, seed=0)
        # FreeDB regime: very low duplicate density
        assert benchmark.duplicate_pairs < len(benchmark.dataset) * 0.05

    def test_x4_like_dense_clusters(self):
        benchmark = domains.make_x4_like_benchmark(200, seed=0)
        # X4 regime: matched pairs greatly exceed record count
        assert benchmark.duplicate_pairs > len(benchmark.dataset) * 2

    def test_full_scale_x4_calibration(self):
        """Table 1 row 1: 835 records, ~4 005 matched pairs."""
        benchmark = domains.make_x4_like_benchmark()
        assert len(benchmark.dataset) == 835
        assert 2500 < benchmark.duplicate_pairs < 6000
