"""Tests for quality-scheduled experiment synthesis."""

import pytest

from repro.core import ConfusionMatrix
from repro.datagen import make_person_benchmark
from repro.datagen.synthesize import synthesize_experiment
from repro.metrics.pairwise import precision, recall


@pytest.fixture(scope="module")
def bench_data():
    return make_person_benchmark(300, seed=11)


class TestSynthesize:
    def test_hits_recall_target(self, bench_data):
        experiment = synthesize_experiment(
            bench_data.dataset, bench_data.gold, precision=1.0, recall=0.6, seed=0
        )
        matrix = ConfusionMatrix.from_pair_sets(
            experiment.pairs(), bench_data.gold.pairs(),
            bench_data.dataset.total_pairs(),
        )
        assert recall(matrix) == pytest.approx(0.6, abs=0.05)
        assert precision(matrix) == 1.0

    def test_hits_precision_target(self, bench_data):
        """Targets refer to the transitively closed result (what Frost
        evaluates); the raw match set carries only spanning edges for
        its false-positive clusters."""
        experiment = synthesize_experiment(
            bench_data.dataset, bench_data.gold, precision=0.7, recall=0.8, seed=1
        )
        matrix = ConfusionMatrix.from_clusterings(
            experiment.clustering(), bench_data.gold.clustering,
            bench_data.dataset.total_pairs(),
        )
        assert precision(matrix) == pytest.approx(0.7, abs=0.07)

    def test_closed_precision_across_targets(self, bench_data):
        for target in (0.3, 0.5, 0.9):
            experiment = synthesize_experiment(
                bench_data.dataset, bench_data.gold,
                precision=target, recall=0.6, seed=4,
            )
            matrix = ConfusionMatrix.from_clusterings(
                experiment.clustering(), bench_data.gold.clustering,
                bench_data.dataset.total_pairs(),
            )
            assert precision(matrix) == pytest.approx(target, abs=0.07)

    def test_scores_separate_true_from_false(self, bench_data):
        experiment = synthesize_experiment(
            bench_data.dataset, bench_data.gold, precision=0.6, recall=0.9, seed=2
        )
        gold_pairs = bench_data.gold.pairs()
        true_scores = [
            sp.score for sp in experiment.scored_pairs() if sp.pair in gold_pairs
        ]
        false_scores = [
            sp.score for sp in experiment.scored_pairs() if sp.pair not in gold_pairs
        ]
        assert sum(true_scores) / len(true_scores) > sum(false_scores) / len(
            false_scores
        )

    def test_without_scores(self, bench_data):
        experiment = synthesize_experiment(
            bench_data.dataset, bench_data.gold,
            precision=0.9, recall=0.5, with_scores=False,
        )
        assert not experiment.has_scores() or len(experiment) == 0

    def test_validation(self, bench_data):
        with pytest.raises(ValueError, match="recall"):
            synthesize_experiment(
                bench_data.dataset, bench_data.gold, precision=0.9, recall=1.5
            )
        with pytest.raises(ValueError, match="precision"):
            synthesize_experiment(
                bench_data.dataset, bench_data.gold, precision=0.0, recall=0.5
            )

    def test_deterministic(self, bench_data):
        make = lambda: synthesize_experiment(
            bench_data.dataset, bench_data.gold, precision=0.8, recall=0.7, seed=5
        )
        assert make().pairs() == make().pairs()
