"""Shared fixtures: small datasets, gold standards, and experiments."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import Dataset, Experiment, GoldStandard, Record


def _purge_stale_pycache() -> None:
    """Drop compiled test modules whose source file no longer exists.

    Stale ``__pycache__`` entries (left behind by renames or by runs
    without package ``__init__.py`` files) make pytest's import system
    report "import file mismatch" collection errors.
    """
    for pycache in Path(__file__).resolve().parent.rglob("__pycache__"):
        for compiled in pycache.glob("*.pyc"):
            source = pycache.parent / (compiled.name.split(".")[0] + ".py")
            if not source.exists():
                compiled.unlink(missing_ok=True)


_purge_stale_pycache()


@pytest.fixture
def abcd_dataset() -> Dataset:
    """The four-record dataset of the paper's Figure 10 example."""
    return Dataset(
        [Record(x, {"name": x}) for x in "abcd"], name="abcd"
    )


@pytest.fixture
def abcd_gold() -> GoldStandard:
    """Ground truth g0: {a, b}, g1: {c, d} (Figure 10)."""
    return GoldStandard.from_assignment(
        {"a": "g0", "b": "g0", "c": "g1", "d": "g1"}
    )


@pytest.fixture
def abcd_experiment() -> Experiment:
    """Detected matches {a,c}, {b,d}, {a,b} in descending score order."""
    return Experiment(
        [("a", "c", 0.9), ("b", "d", 0.8), ("a", "b", 0.7)], name="fig10"
    )


@pytest.fixture
def people_dataset() -> Dataset:
    """Six person records with two duplicate clusters and nulls."""
    rows = [
        ("p1", "john", "smith", "springfield", "12345"),
        ("p2", "jon", "smith", "springfield", "12345"),
        ("p3", "mary", "jones", "riverside", None),
        ("p4", "mary", "jones", "riverside", "99999"),
        ("p5", "alice", "brown", None, "55555"),
        ("p6", "robert", "taylor", "salem", "77777"),
    ]
    return Dataset(
        [
            Record(
                record_id,
                {
                    "first": first,
                    "last": last,
                    "city": city,
                    "zip": zip_code,
                },
            )
            for record_id, first, last, city, zip_code in rows
        ],
        name="people",
    )


@pytest.fixture
def people_gold() -> GoldStandard:
    """p1~p2 and p3~p4 are duplicates; p5, p6 are unique."""
    return GoldStandard.from_pairs([("p1", "p2"), ("p3", "p4")], name="people-gold")


@pytest.fixture
def people_experiment() -> Experiment:
    """A solution that found p1~p2, missed p3~p4, and invented p5~p6."""
    return Experiment(
        [("p1", "p2", 0.95), ("p5", "p6", 0.72)],
        name="people-run",
        solution="test-solution",
    )
