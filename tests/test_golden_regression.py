"""Golden end-to-end regression fixture.

A small checked-in dataset + gold clustering + stored metrics guard the
whole pipeline against *silent scoring drift*: any change to
preparation, blocking, similarity measures, decision scoring, or
clustering that shifts a single match will change the stored experiment
digest and surface here — even if every unit test still passes.

The fixture files live in ``tests/fixtures/golden/`` and were produced
by ``python tests/fixtures/golden/regenerate.py`` (run it after an
*intentional* behaviour change and commit the diff; the script refuses
to run under pytest so the test can never "fix" itself).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.confusion import ConfusionMatrix
from repro.engine.jobs import experiment_fingerprint
from repro.io.csvio import CsvFormat
from repro.io.importers import import_dataset, import_gold_standard
from repro.metrics.registry import default_registry

FIXTURES = Path(__file__).parent / "fixtures" / "golden"

# The full pipeline under guard, in the JSON form shared by CLI/API.
GOLDEN_CONFIG = {
    "key": {"kind": "first_token", "attribute": "last_name"},
    "similarities": {
        "first_name": "jaro_winkler",
        "last_name": "jaro_winkler",
        "street": "monge_elkan",
        "city": "jaro_winkler",
        "zip": "exact",
    },
    "threshold": 0.8,
    "preparers": ["normalize_whitespace", "lowercase_values"],
}
# A second guard over the approximate path: identical scoring, but
# candidate generation through seeded MinHash-LSH — any drift in the
# signature scheme (token hashing, permutation drawing, banding) moves
# the stored digest even if the exact-blocking fixture stays green.
GOLDEN_LSH_CONFIG = {
    **GOLDEN_CONFIG,
    "key": {"kind": "lsh", "num_perm": 128, "bands": 32, "seed": 7},
}
# fixture file -> the config whose outputs it freezes
GOLDEN_FIXTURES = {
    "metrics.json": GOLDEN_CONFIG,
    "metrics_lsh.json": GOLDEN_LSH_CONFIG,
}
GOLDEN_METRICS = ["precision", "recall", "f1", "accuracy"]


def run_golden_pipeline(config=GOLDEN_CONFIG):
    """Load the checked-in dataset and run one golden pipeline on it."""
    from repro.streaming import build_pipeline_and_index

    dataset = import_dataset(
        FIXTURES / "dataset.csv", id_column="id", name="golden"
    )
    gold = import_gold_standard(
        FIXTURES / "gold.csv", format_="clusters", fmt=CsvFormat()
    )
    pipeline, _ = build_pipeline_and_index(config)
    run = pipeline.run(dataset)
    return dataset, gold, run


def summarize(dataset, gold, run) -> dict[str, object]:
    """The facts the fixture freezes (must stay JSON-stable)."""
    matrix = ConfusionMatrix.from_clusterings(
        run.experiment.clustering(), gold.clustering, dataset.total_pairs()
    )
    metrics = default_registry().evaluate(matrix, GOLDEN_METRICS)
    return {
        "records": len(dataset),
        "candidates": len(run.candidates),
        "scored_pairs": len(run.scored_pairs),
        "accepted_matches": len(run.experiment.matches),
        "clusters": len(run.experiment.clustering().clusters),
        "experiment_sha256": experiment_fingerprint(run.experiment),
        "metrics": {name: metrics[name] for name in GOLDEN_METRICS},
    }


@pytest.mark.parametrize("fixture_name", sorted(GOLDEN_FIXTURES))
def test_pipeline_matches_golden_fixture(fixture_name):
    stored = json.loads((FIXTURES / fixture_name).read_text())
    recomputed = summarize(
        *run_golden_pipeline(GOLDEN_FIXTURES[fixture_name])
    )

    # The digest covers every match and score bit-for-bit: it failing
    # alone would be hard to debug, so compare the readable facts first.
    for key in ("records", "candidates", "scored_pairs",
                "accepted_matches", "clusters"):
        assert recomputed[key] == stored[key], f"{key} drifted"
    for name in GOLDEN_METRICS:
        assert recomputed["metrics"][name] == pytest.approx(
            stored["metrics"][name], abs=1e-12
        ), f"metric {name} drifted"
    assert recomputed["experiment_sha256"] == stored["experiment_sha256"], (
        "scored matches drifted from the golden fixture; if the change "
        "is intentional, regenerate with "
        "`PYTHONPATH=src:tests python tests/fixtures/golden/regenerate.py`"
    )


@pytest.mark.parametrize("fixture_name", sorted(GOLDEN_FIXTURES))
def test_golden_fixture_is_nontrivial(fixture_name):
    """Guard the guard: an empty or degenerate fixture protects nothing."""
    stored = json.loads((FIXTURES / fixture_name).read_text())
    assert stored["records"] >= 100
    assert stored["accepted_matches"] > 10
    assert stored["clusters"] > 5
    assert 0.0 < stored["metrics"]["precision"] <= 1.0
    assert 0.0 < stored["metrics"]["recall"] <= 1.0
