"""Tests for set-based comparisons and Venn regions (§4.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Experiment, GoldStandard
from repro.exploration.setops import (
    SetComparison,
    enrich_pairs,
    pairs_missed_by_most,
    venn_regions,
)


@pytest.fixture
def comparison(people_dataset, people_gold, people_experiment):
    other = Experiment([("p3", "p4", 0.8), ("p1", "p2", 0.9)], name="run-2")
    return SetComparison(
        people_dataset,
        {
            "run-1": people_experiment,
            "run-2": other,
            "gold": people_gold,
        },
    )


class TestVennRegions:
    def test_two_sets(self):
        regions = venn_regions([[("a", "b"), ("c", "d")], [("c", "d"), ("e", "f")]])
        by_membership = {r.membership: r.pairs for r in regions}
        assert by_membership[(True, False)] == {("a", "b")}
        assert by_membership[(True, True)] == {("c", "d")}
        assert by_membership[(False, True)] == {("e", "f")}

    def test_empty_inputs(self):
        assert venn_regions([]) == []

    def test_region_label(self):
        regions = venn_regions([[("a", "b")], [("a", "b")], []])
        full = next(r for r in regions if r.membership == (True, True, False))
        assert full.label(["A", "B", "C"]) == "A ∩ B \\ C"

    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.sampled_from("abcdef"), st.sampled_from("ghijkl")
                ),
                max_size=10,
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=50)
    def test_regions_partition_the_union(self, raw_sets):
        from repro.core.pairs import make_pair

        sets = [{make_pair(*p) for p in pairs} for pairs in raw_sets]
        regions = venn_regions(sets)
        union = set().union(*sets) if sets else set()
        covered = [pair for region in regions for pair in region.pairs]
        assert len(covered) == len(set(covered))  # disjoint
        assert set(covered) == union  # complete


class TestSetComparison:
    def test_select_intersection(self, comparison):
        common = comparison.select(include=["run-1", "run-2"])
        assert common == {("p1", "p2")}

    def test_figure1_evaluation(self, comparison):
        """Ground truth matches run-2 found and run-1 did not find."""
        pairs = comparison.select(include=["gold", "run-2"], exclude=["run-1"])
        assert pairs == {("p3", "p4")}

    def test_false_positives_via_difference(self, comparison):
        """§4.1: false positives of run-1 are run-1 \\ gold."""
        fp = comparison.select(include=["run-1"], exclude=["gold"])
        assert fp == {("p5", "p6")}

    def test_select_requires_include(self, comparison):
        with pytest.raises(ValueError, match="at least one"):
            comparison.select(include=[])

    def test_unknown_name(self, comparison):
        with pytest.raises(KeyError, match="known:"):
            comparison.pairs_of("nope")

    def test_region_sizes(self, comparison):
        sizes = comparison.region_sizes()
        assert sum(sizes.values()) == 3  # p1p2, p3p4, p5p6

    def test_enrichment_resolves_records(self, comparison):
        enriched = comparison.enriched([("p1", "p2")])
        assert enriched[0][0].value("first") == "john"
        assert enriched[0][1].value("first") == "jon"

    def test_experimental_ground_truth(self, comparison):
        # pairs in all three sets
        assert comparison.experimental_ground_truth() == {("p1", "p2")}
        # pairs in at least two
        assert comparison.experimental_ground_truth(2) == {
            ("p1", "p2"),
            ("p3", "p4"),
        }

    def test_empty_inputs_rejected(self, people_dataset):
        with pytest.raises(ValueError, match="at least one input"):
            SetComparison(people_dataset, {})


class TestEnrichPairs:
    def test_sorted_output(self, people_dataset):
        enriched = enrich_pairs(people_dataset, [("p3", "p4"), ("p1", "p2")])
        assert enriched[0][0].record_id == "p1"


class TestPairsMissedByMost:
    def test_section_54_analysis(self, people_gold):
        """Pairs not detected by at least N solutions (§5.4)."""
        finds_both = Experiment([("p1", "p2"), ("p3", "p4")])
        finds_one = Experiment([("p1", "p2")])
        finds_none = Experiment([("x", "y")])
        missed = pairs_missed_by_most(
            people_gold, [finds_both, finds_one, finds_none], minimum_missing=2
        )
        assert missed == {("p3", "p4")}

    def test_threshold_zero_returns_all(self, people_gold):
        missed = pairs_missed_by_most(people_gold, [], minimum_missing=0)
        assert missed == people_gold.pairs()
