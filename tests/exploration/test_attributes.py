"""Tests for nullRatio and equalRatio analyses (§4.5.2, §4.5.3)."""

import pytest

from repro.core import Dataset, Experiment, GoldStandard, Record
from repro.exploration.attributes import (
    AttributeRatio,
    equal_ratios,
    null_ratios,
    render_bar_chart,
)


@pytest.fixture
def dataset():
    rows = [
        ("r1", "john", None),
        ("r2", "john", None),
        ("r3", "mary", "12345"),
        ("r4", "mary", "12345"),
        ("r5", "bob", "99999"),
    ]
    return Dataset(
        [Record(rid, {"name": name, "zip": zip_}) for rid, name, zip_ in rows],
        name="ratios",
    )


@pytest.fixture
def gold():
    return GoldStandard.from_pairs([("r1", "r2"), ("r3", "r4")])


class TestNullRatios:
    def test_nulls_correlated_with_errors(self, dataset, gold):
        # solution misses the zip-null pair r1-r2 and finds r3-r4
        experiment = Experiment([("r3", "r4")])
        ratios = {r.attribute: r for r in null_ratios(dataset, experiment, gold)}
        # zip is null on the misclassified pair -> nullRatio(zip) = 1
        assert ratios["zip"].ratio == 1.0
        assert ratios["zip"].affected_pairs == 1
        # name is never null in the population
        assert ratios["name"].affected_pairs == 0
        assert ratios["name"].ratio == 0.0

    def test_sorted_by_ratio_descending(self, dataset, gold):
        experiment = Experiment([("r3", "r4")])
        ratios = null_ratios(dataset, experiment, gold)
        values = [r.ratio for r in ratios]
        assert values == sorted(values, reverse=True)

    def test_explicit_population(self, dataset, gold):
        experiment = Experiment([("r3", "r4")])
        population = [("r1", "r2"), ("r1", "r5"), ("r2", "r5")]
        ratios = {
            r.attribute: r
            for r in null_ratios(dataset, experiment, gold, population)
        }
        # three pairs involve a zip-null record; only r1-r2 misclassified
        assert ratios["zip"].affected_pairs == 3
        assert ratios["zip"].misclassified_pairs == 1


class TestEqualRatios:
    def test_equal_values_on_misclassified_pairs(self, dataset, gold):
        # solution wrongly relies on name equality: matches r1-r2 and
        # r3-r4 (correct) -- add a false negative with equal names
        extended = Dataset(
            [*dataset, Record("r6", {"name": "bob", "zip": "11111"})],
            name="ratios2",
        )
        gold2 = GoldStandard.from_pairs(
            [("r1", "r2"), ("r3", "r4"), ("r5", "r6")]
        )
        experiment = Experiment([("r1", "r2"), ("r3", "r4")])
        ratios = {
            r.attribute: r for r in equal_ratios(extended, experiment, gold2)
        }
        # the missed pair r5-r6 has equal 'name' -> contributes to equalRatio
        assert ratios["name"].misclassified_pairs == 1

    def test_null_values_never_equal(self, dataset, gold):
        experiment = Experiment([("r1", "r2")])
        ratios = {r.attribute: r for r in equal_ratios(dataset, experiment, gold)}
        # r1-r2 zip is null-null: not counted as equal
        assert ratios["zip"].affected_pairs == 1  # only r3-r4

    def test_perfect_solution_zero_ratios(self, dataset, gold):
        experiment = Experiment([("r1", "r2"), ("r3", "r4")])
        for ratio in equal_ratios(dataset, experiment, gold):
            assert ratio.ratio == 0.0


class TestRendering:
    def test_bar_chart_contains_attributes(self):
        chart = render_bar_chart(
            [
                AttributeRatio("name", affected_pairs=4, misclassified_pairs=2),
                AttributeRatio("zip", affected_pairs=0, misclassified_pairs=0),
            ]
        )
        assert "name" in chart
        assert "0.500" in chart
        assert "(2/4)" in chart
