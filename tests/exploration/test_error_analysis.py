"""Tests for error analysis: nearest correctly classified pair (§4.4)."""

import math

import pytest

from repro.core import Dataset, Record
from repro.exploration.error_analysis import (
    ErrorAnalysis,
    minkowski_norm,
    pair_similarity_score,
)


class TestMinkowskiNorm:
    def test_manhattan(self):
        assert minkowski_norm((3.0, 4.0), q=1.0) == pytest.approx(7.0)

    def test_euclidean(self):
        assert minkowski_norm((3.0, 4.0), q=2.0) == pytest.approx(5.0)

    def test_intermediate_q(self):
        value = minkowski_norm((1.0, 1.0), q=1.5)
        assert 2 ** (1 / 2) < value < 2  # between Euclidean and Manhattan

    def test_q_out_of_range(self):
        with pytest.raises(ValueError, match="q must be in"):
            minkowski_norm((1.0, 1.0), q=3.0)


class TestPairSimilarityScore:
    def test_uses_best_of_direct_and_cross(self):
        a = Record("a", {"x": "alpha"})
        b = Record("b", {"x": "beta"})

        def similarity(first, second):
            # direct alignment poor, crossed alignment perfect
            return 1.0 if first.record_id != second.record_id else 0.0

        direct_only = pair_similarity_score((a, b), (a, b), similarity)
        assert direct_only == pytest.approx(math.sqrt(2))


@pytest.fixture
def analysis_dataset():
    rows = [
        ("f1", "john", "smith"),
        ("f2", "jon", "smith"),
        ("c1", "johny", "smith"),
        ("c2", "jon", "smith"),
        ("u1", "zzz", "qqq"),
        ("u2", "yyy", "ppp"),
    ]
    return Dataset(
        [Record(rid, {"first": first, "last": last}) for rid, first, last in rows],
        name="errors",
    )


class TestErrorAnalysis:
    def test_finds_similar_correct_pair(self, analysis_dataset):
        analysis = ErrorAnalysis(analysis_dataset)
        explanation = analysis.explain(
            ("f1", "f2"), [("c1", "c2"), ("u1", "u2")]
        )
        assert explanation.nearest_correct_pair == ("c1", "c2")
        assert explanation.score > 0

    def test_skips_self(self, analysis_dataset):
        analysis = ErrorAnalysis(analysis_dataset)
        explanation = analysis.explain(("f1", "f2"), [("f1", "f2")])
        assert explanation.nearest_correct_pair is None
        assert explanation.score == 0.0

    def test_explain_all(self, analysis_dataset):
        analysis = ErrorAnalysis(analysis_dataset)
        explanations = analysis.explain_all(
            [("f1", "f2"), ("u1", "u2")], [("c1", "c2")]
        )
        assert len(explanations) == 2
        assert explanations[0].failed_pair == ("f1", "f2")

    def test_custom_similarity(self, analysis_dataset):
        analysis = ErrorAnalysis(
            analysis_dataset, similarity=lambda a, b: 1.0, q=1.0
        )
        explanation = analysis.explain(("f1", "f2"), [("c1", "c2"), ("u1", "u2")])
        # all candidates tie at score 2 -> deterministic smallest pair
        assert explanation.nearest_correct_pair == ("c1", "c2")
        assert explanation.score == pytest.approx(2.0)

    def test_q_validation_happens_at_scoring(self, analysis_dataset):
        analysis = ErrorAnalysis(analysis_dataset, q=2.5)
        with pytest.raises(ValueError, match="q must be in"):
            analysis.explain(("f1", "f2"), [("c1", "c2")])
