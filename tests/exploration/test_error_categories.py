"""Tests for error categorization (§7 outlook)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Dataset, Experiment, GoldStandard, Record
from repro.exploration.error_categories import (
    ErrorCategorization,
    ValueRelation,
    categorize_errors,
    categorize_record_pair,
    classify_value_pair,
)


class TestClassifyValuePair:
    def test_both_null(self):
        assert classify_value_pair(None, None) is ValueRelation.BOTH_NULL

    def test_one_null_either_side(self):
        assert classify_value_pair(None, "x") is ValueRelation.ONE_NULL
        assert classify_value_pair("x", None) is ValueRelation.ONE_NULL

    def test_empty_string_is_null(self):
        # Record.value() maps "" to None before classification; direct
        # calls treat "" as a value, so exercise via a record pair
        first = Record("a", {"name": ""})
        second = Record("b", {"name": "x"})
        relations = categorize_record_pair(first, second, ["name"])
        assert relations["name"] is ValueRelation.ONE_NULL

    def test_equal(self):
        assert classify_value_pair("john", "john") is ValueRelation.EQUAL

    def test_formatting_case(self):
        assert classify_value_pair("John", "john") is ValueRelation.FORMATTING

    def test_formatting_whitespace(self):
        assert (
            classify_value_pair("john  smith", "john smith")
            is ValueRelation.FORMATTING
        )

    def test_word_order(self):
        assert (
            classify_value_pair("john smith", "smith john")
            is ValueRelation.WORD_ORDER
        )

    def test_abbreviation_with_dot(self):
        assert (
            classify_value_pair("j. smith", "john smith")
            is ValueRelation.ABBREVIATION
        )

    def test_abbreviation_prefix(self):
        assert (
            classify_value_pair("jo smith", "john smith")
            is ValueRelation.ABBREVIATION
        )

    def test_abbreviation_symmetric(self):
        assert (
            classify_value_pair("john smith", "j. smith")
            is ValueRelation.ABBREVIATION
        )

    def test_typo_substitution(self):
        assert classify_value_pair("john", "johm") is ValueRelation.TYPO

    def test_typo_deletion(self):
        assert classify_value_pair("john", "jon") is ValueRelation.TYPO

    def test_typo_threshold_respected(self):
        assert (
            classify_value_pair("abcdef", "abczzz", typo_threshold=2)
            is ValueRelation.DIFFERENT
        )
        assert (
            classify_value_pair("abcdef", "abczzz", typo_threshold=3)
            is ValueRelation.TYPO
        )

    def test_different(self):
        assert classify_value_pair("john", "mary") is ValueRelation.DIFFERENT

    def test_case_noise_then_typo_still_typo(self):
        # normalization happens before the edit-distance check
        assert classify_value_pair("JOHN", "jon") is ValueRelation.TYPO

    @given(st.text(max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_reflexive_values_are_equal(self, value):
        assert classify_value_pair(value, value) is ValueRelation.EQUAL

    @given(st.text(max_size=15), st.text(max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_symmetric(self, first, second):
        assert classify_value_pair(first, second) is classify_value_pair(
            second, first
        )


class TestCategorizeRecordPair:
    def test_per_attribute_relations(self):
        first = Record("a", {"name": "john", "city": None, "zip": "11111"})
        second = Record("b", {"name": "jon", "city": "salem", "zip": "11111"})
        relations = categorize_record_pair(
            first, second, ["name", "city", "zip"]
        )
        assert relations == {
            "name": ValueRelation.TYPO,
            "city": ValueRelation.ONE_NULL,
            "zip": ValueRelation.EQUAL,
        }

    def test_missing_attribute_is_both_null(self):
        relations = categorize_record_pair(
            Record("a", {}), Record("b", {}), ["ghost"]
        )
        assert relations["ghost"] is ValueRelation.BOTH_NULL


@pytest.fixture
def typo_scenario():
    """Duplicates differing by typos; solution misses exactly those."""
    records = [
        Record("a1", {"name": "john smith", "city": "springfield"}),
        Record("a2", {"name": "john smitth", "city": "springfield"}),
        Record("b1", {"name": "mary jones", "city": "riverside"}),
        Record("b2", {"name": "marry jones", "city": "riverside"}),
        Record("c1", {"name": "alice brown", "city": "salem"}),
        Record("c2", {"name": "carol white", "city": "salem"}),
    ]
    dataset = Dataset(records, name="typos")
    gold = GoldStandard.from_pairs([("a1", "a2"), ("b1", "b2")])
    experiment = Experiment([("c1", "c2", 0.8)], name="bad-run")
    return dataset, experiment, gold


class TestCategorizeErrors:
    def test_dominant_weakness_is_typo(self, typo_scenario):
        dataset, experiment, gold = typo_scenario
        result = categorize_errors(dataset, experiment, gold)
        assert result.dominant_weakness() is ValueRelation.TYPO

    def test_false_negative_counts(self, typo_scenario):
        dataset, experiment, gold = typo_scenario
        result = categorize_errors(dataset, experiment, gold)
        assert len(result.false_negatives) == 2
        assert result.false_negative_relations[ValueRelation.TYPO] == 2

    def test_false_positive_agreements(self, typo_scenario):
        dataset, experiment, gold = typo_scenario
        result = categorize_errors(dataset, experiment, gold)
        # the false positive (c1, c2) agrees on city only
        assert len(result.false_positives) == 1
        assert result.false_positive_relations[ValueRelation.EQUAL] == 1

    def test_dominant_seduction(self, typo_scenario):
        dataset, experiment, gold = typo_scenario
        result = categorize_errors(dataset, experiment, gold)
        assert result.dominant_seduction() is ValueRelation.EQUAL

    def test_per_attribute_breakdown(self, typo_scenario):
        dataset, experiment, gold = typo_scenario
        result = categorize_errors(dataset, experiment, gold)
        assert result.per_attribute_fn["name"][ValueRelation.TYPO] == 2
        # city is equal within the missed duplicates: not an FN error
        assert ValueRelation.EQUAL not in result.per_attribute_fn.get(
            "city", {}
        )

    def test_limit_caps_pairs(self, typo_scenario):
        dataset, experiment, gold = typo_scenario
        result = categorize_errors(dataset, experiment, gold, limit=1)
        assert len(result.false_negatives) == 1
        assert len(result.false_positives) == 1

    def test_attribute_subset(self, typo_scenario):
        dataset, experiment, gold = typo_scenario
        result = categorize_errors(dataset, experiment, gold, attributes=["city"])
        assert ValueRelation.TYPO not in result.false_negative_relations

    def test_perfect_experiment_has_no_errors(self, typo_scenario):
        dataset, _experiment, gold = typo_scenario
        perfect = gold.as_experiment()
        result = categorize_errors(dataset, perfect, gold)
        assert not result.false_negatives
        assert not result.false_positives
        assert result.dominant_weakness() is None
        assert result.dominant_seduction() is None

    def test_render_report_mentions_counts(self, typo_scenario):
        dataset, experiment, gold = typo_scenario
        report = categorize_errors(dataset, experiment, gold).render_report()
        assert "false negatives: 2" in report
        assert "typo: 2" in report

    def test_empty_categorization(self):
        empty = ErrorCategorization()
        assert empty.dominant_weakness() is None
        assert "false negatives: 0" in empty.render_report()
