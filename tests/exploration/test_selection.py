"""Tests for pair selection strategies (§4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Experiment, GoldStandard, Match
from repro.core.pairs import ScoredPair
from repro.exploration.selection import (
    misclassified_outliers,
    pairs_around_threshold,
    percentile_partitions,
    plain_result_pairs,
    sample_class_based,
    sample_quantiles,
    sample_random,
)


def scored_range(n=20):
    """n scored pairs with scores 0.0, 1/(n-1), ..., 1.0."""
    return [
        ScoredPair.of(f"a{i}", f"b{i}", i / (n - 1)) for i in range(n)
    ]


GOLD = GoldStandard.from_pairs(
    [(f"a{i}", f"b{i}") for i in range(10, 20)]  # high-score pairs are true
)


class TestAroundThreshold:
    def test_selects_closest(self):
        pairs = scored_range()
        selected = pairs_around_threshold(pairs, threshold=0.5, k=4)
        assert len(selected) == 4
        assert all(abs(sp.score - 0.5) < 0.15 for sp in selected)

    def test_split_above_below(self):
        pairs = scored_range()
        selected = pairs_around_threshold(pairs, 0.5, k=6, above_fraction=0.5)
        above = sum(1 for sp in selected if sp.score >= 0.5)
        assert above == 3

    def test_all_budget_above(self):
        pairs = scored_range()
        selected = pairs_around_threshold(pairs, 0.5, k=4, above_fraction=1.0)
        assert all(sp.score >= 0.5 for sp in selected)

    def test_redistributes_when_one_side_short(self):
        pairs = [ScoredPair.of(f"x{i}", f"y{i}", 0.9) for i in range(5)]
        selected = pairs_around_threshold(pairs, 0.5, k=4)
        assert len(selected) == 4  # nothing below, budget flows above

    def test_k_zero(self):
        assert pairs_around_threshold(scored_range(), 0.5, k=0) == []

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            pairs_around_threshold([], 0.5, k=-1)
        with pytest.raises(ValueError, match="above_fraction"):
            pairs_around_threshold([], 0.5, k=1, above_fraction=2.0)


class TestMisclassifiedOutliers:
    def test_returns_confident_mistakes_first(self):
        pairs = scored_range()
        # threshold 0.5: pairs >= 0.5 predicted positive; gold says only
        # a10..a19 are true. So a0..a9 below are TN (correct), those
        # above are TP.  Flip gold to create mistakes:
        gold = GoldStandard.from_pairs([(f"a{i}", f"b{i}") for i in range(5)])
        outliers = misclassified_outliers(pairs, 0.5, gold, k=3)
        # worst mistakes: high-score false positives (score 1.0 down)
        # and low-score false negatives (score 0.0 up)
        distances = [abs(sp.score - 0.5) for sp in outliers]
        assert distances == sorted(distances, reverse=True)
        assert distances[0] == pytest.approx(0.5)

    def test_no_mistakes(self):
        pairs = scored_range()
        outliers = misclassified_outliers(pairs, 0.5, GOLD, k=5)
        assert outliers == []

    def test_k_limits(self):
        gold = GoldStandard.from_pairs([("zz1", "zz2")])  # everything wrong above
        pairs = scored_range()
        outliers = misclassified_outliers(pairs, 0.5, gold, k=2)
        assert len(outliers) == 2


class TestSamplers:
    def test_random_respects_budget(self):
        sample = sample_random(scored_range(), 5, seed=1)
        assert len(sample) == 5

    def test_random_budget_exceeds_population(self):
        pairs = scored_range(5)
        assert len(sample_random(pairs, 100)) == 5

    def test_quantile_picks_extremes(self):
        pairs = scored_range(21)
        sample = sample_quantiles(pairs, 5)
        scores = [sp.score for sp in sample]
        assert min(scores) == 0.0
        assert max(scores) == 1.0
        assert len(sample) == 5

    def test_quantile_single(self):
        sample = sample_quantiles(scored_range(9), 1)
        assert len(sample) == 1

    def test_quantile_empty(self):
        assert sample_quantiles([], 5) == []

    def test_class_based_proportions(self):
        pairs = scored_range(20)
        correct = lambda sp: sp.score >= 0.5
        sample = sample_class_based(pairs, 10, correct, seed=2)
        assert len(sample) == 10
        right = sum(1 for sp in sample if correct(sp))
        assert right == 5  # half the population is 'correct'

    def test_class_based_empty(self):
        assert sample_class_based([], 10, lambda sp: True) == []


class TestPercentilePartitions:
    def test_partition_count_and_coverage(self):
        pairs = scored_range(30)
        partitions = percentile_partitions(pairs, partitions=5, budget_per_partition=2)
        assert len(partitions) == 5
        covered = [sp for p in partitions for sp in p.pairs]
        assert len(covered) == 30

    def test_partitions_ordered_by_score(self):
        partitions = percentile_partitions(
            scored_range(20), partitions=4, budget_per_partition=2
        )
        for before, after in zip(partitions, partitions[1:]):
            assert before.high_score <= after.low_score

    def test_confusion_matrices_attached(self):
        partitions = percentile_partitions(
            scored_range(20),
            partitions=2,
            budget_per_partition=2,
            gold=GOLD,
            threshold=0.5,
        )
        assert all(p.matrix is not None for p in partitions)
        # low partition: all below threshold, all gold-negative -> TN
        assert partitions[0].matrix.true_negatives == 10
        # high partition: all above threshold, all gold-positive -> TP
        assert partitions[1].matrix.true_positives == 10

    def test_confident_partitions_flagged(self):
        partitions = percentile_partitions(
            scored_range(20),
            partitions=2,
            budget_per_partition=2,
            gold=GOLD,
            threshold=0.5,
        )
        assert all(p.is_confident for p in partitions)
        assert all(p.error_count == 0 for p in partitions)

    def test_class_sampler_requires_gold(self):
        with pytest.raises(ValueError, match="needs gold"):
            percentile_partitions(
                scored_range(), partitions=2, budget_per_partition=2,
                sampler="class",
            )

    def test_unknown_sampler(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            percentile_partitions(
                scored_range(), partitions=2, budget_per_partition=2,
                sampler="nope",
            )

    def test_empty_input(self):
        assert percentile_partitions([], partitions=3, budget_per_partition=2) == []

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=40)
    def test_representatives_are_subsets(self, partitions_count, budget, n):
        pairs = scored_range(max(n, 2))
        partitions = percentile_partitions(
            pairs, partitions=partitions_count, budget_per_partition=budget
        )
        for partition in partitions:
            members = set(partition.pairs)
            assert set(partition.representatives) <= members
            assert len(partition.representatives) <= max(budget, len(members))


class TestPlainResultPairs:
    def test_hides_clustering_additions(self):
        experiment = Experiment(
            [
                Match(pair=("a", "b"), score=0.9),
                Match(pair=("b", "c"), score=0.8),
                Match(pair=("a", "c"), from_clustering=True),
            ]
        )
        assert plain_result_pairs(experiment) == {("a", "b"), ("b", "c")}

    def test_subset_filter(self):
        experiment = Experiment(
            [Match(pair=("a", "b")), Match(pair=("c", "d"))]
        )
        assert plain_result_pairs(experiment, {("a", "b")}) == {("a", "b")}
