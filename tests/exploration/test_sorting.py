"""Tests for sorting strategies (§4.3)."""

import pytest

from repro.core import Dataset, Record
from repro.core.pairs import ScoredPair
from repro.exploration.sorting import (
    ColumnEntropyModel,
    sort_by_entropy,
    sort_by_similarity,
)


class TestSortBySimilarity:
    def test_descending_default(self):
        pairs = [ScoredPair.of("a", "b", 0.2), ScoredPair.of("c", "d", 0.9)]
        ordered = sort_by_similarity(pairs)
        assert [sp.score for sp in ordered] == [0.9, 0.2]

    def test_ascending(self):
        pairs = [ScoredPair.of("a", "b", 0.2), ScoredPair.of("c", "d", 0.9)]
        ordered = sort_by_similarity(pairs, descending=False)
        assert [sp.score for sp in ordered] == [0.2, 0.9]

    def test_stable_tie_break(self):
        pairs = [ScoredPair.of("c", "d", 0.5), ScoredPair.of("a", "b", 0.5)]
        ordered = sort_by_similarity(pairs)
        assert ordered[0].pair == ("a", "b")


@pytest.fixture
def entropy_dataset():
    return Dataset(
        [
            Record("r1", {"title": "common common rareword"}),
            Record("r2", {"title": "common common"}),
            Record("r3", {"title": "common common"}),
            Record("r4", {"title": "common unique"}),
        ],
        name="entropy",
    )


class TestColumnEntropy:
    def test_rare_tokens_score_higher(self, entropy_dataset):
        model = ColumnEntropyModel(entropy_dataset)
        rare = model.record_entropy(entropy_dataset["r1"])
        plain = model.record_entropy(entropy_dataset["r2"])
        assert rare > plain

    def test_null_cell_entropy_zero(self):
        dataset = Dataset([Record("r", {"x": None})])
        model = ColumnEntropyModel(dataset)
        assert model.cell_entropy(dataset["r"], "x") == 0.0

    def test_pair_entropy_is_sum(self, entropy_dataset):
        model = ColumnEntropyModel(entropy_dataset)
        pair_score = model.pair_entropy(("r1", "r2"))
        assert pair_score == pytest.approx(
            model.record_entropy(entropy_dataset["r1"])
            + model.record_entropy(entropy_dataset["r2"])
        )

    def test_unseen_token_finite(self, entropy_dataset):
        model = ColumnEntropyModel(entropy_dataset)
        probe = Record("probe", {"title": "neverbefore"})
        assert model.cell_entropy(probe, "title") < float("inf")

    def test_column_probability(self, entropy_dataset):
        model = ColumnEntropyModel(entropy_dataset)
        assert model.column_probability("title", "common") > model.column_probability(
            "title", "rareword"
        )


class TestSortByEntropy:
    def test_high_entropy_first(self, entropy_dataset):
        ordered = sort_by_entropy(
            entropy_dataset, [("r2", "r3"), ("r1", "r4")]
        )
        assert ordered[0][0] == ("r1", "r4")  # rare tokens first

    def test_accepts_scored_pairs(self, entropy_dataset):
        ordered = sort_by_entropy(
            entropy_dataset, [ScoredPair.of("r2", "r3", 0.5)]
        )
        assert ordered[0][0] == ("r2", "r3")

    def test_reusable_model(self, entropy_dataset):
        model = ColumnEntropyModel(entropy_dataset)
        first = sort_by_entropy(entropy_dataset, [("r1", "r2")], model=model)
        second = sort_by_entropy(entropy_dataset, [("r1", "r2")], model=model)
        assert first == second

    def test_ascending(self, entropy_dataset):
        ordered = sort_by_entropy(
            entropy_dataset, [("r2", "r3"), ("r1", "r4")], descending=False
        )
        assert ordered[0][0] == ("r2", "r3")
