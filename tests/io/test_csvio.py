"""Tests for CSV reading/writing with dialects."""

import io

from repro.io.csvio import CsvFormat, read_rows, write_rows


class TestReadRows:
    def test_with_header(self):
        rows = list(read_rows(io.StringIO("a,b\r\n1,2\r\n3,4\r\n")))
        assert rows == [{"a": "1", "b": "2"}, {"a": "3", "b": "4"}]

    def test_without_header(self):
        fmt = CsvFormat(has_header=False)
        rows = list(read_rows(io.StringIO("1,2\r\n"), fmt))
        assert rows == [{"col0": "1", "col1": "2"}]

    def test_custom_separator(self):
        fmt = CsvFormat(separator=";")
        rows = list(read_rows(io.StringIO("a;b\r\nx;y\r\n"), fmt))
        assert rows == [{"a": "x", "b": "y"}]

    def test_quoted_values(self):
        rows = list(read_rows(io.StringIO('a,b\r\n"x,1",y\r\n')))
        assert rows[0]["a"] == "x,1"

    def test_escape_character(self):
        fmt = CsvFormat(escape="\\")
        rows = list(read_rows(io.StringIO('a\r\n"he said \\"hi\\""\r\n'), fmt))
        assert rows[0]["a"] == 'he said "hi"'

    def test_file_path(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b\r\n1,2\r\n", encoding="utf-8")
        assert list(read_rows(path)) == [{"a": "1", "b": "2"}]


class TestWriteRows:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out.csv"
        write_rows(path, [{"a": "1", "b": "x,y"}], columns=["a", "b"])
        assert list(read_rows(path)) == [{"a": "1", "b": "x,y"}]

    def test_none_becomes_empty(self):
        target = io.StringIO()
        write_rows(target, [{"a": None}], columns=["a"])
        assert "a" in target.getvalue()
        rows = list(read_rows(io.StringIO(target.getvalue())))
        assert rows[0]["a"] == ""

    def test_no_header(self):
        target = io.StringIO()
        write_rows(
            target, [{"a": "1"}], columns=["a"], fmt=CsvFormat(has_header=False)
        )
        assert target.getvalue().strip() == "1"

    def test_column_order(self):
        target = io.StringIO()
        write_rows(target, [{"a": "1", "b": "2"}], columns=["b", "a"])
        assert target.getvalue().splitlines()[0] == "b,a"
