"""Tests for non-relational (JSON) import (§7 outlook)."""

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.jsonio import (
    flatten_json,
    import_json_dataset,
    records_from_json_objects,
)


class TestFlattenJson:
    def test_scalars_stringified(self):
        flat = flatten_json({"a": 1, "b": 2.5, "c": "x"})
        assert flat == {"a": "1", "b": "2.5", "c": "x"}

    def test_booleans_json_style(self):
        assert flatten_json({"a": True, "b": False}) == {"a": "true", "b": "false"}

    def test_null_becomes_none(self):
        assert flatten_json({"a": None}) == {"a": None}

    def test_nested_objects_use_dot_paths(self):
        flat = flatten_json({"address": {"city": "london", "geo": {"lat": 51}}})
        assert flat == {"address.city": "london", "address.geo.lat": "51"}

    def test_custom_separator(self):
        flat = flatten_json({"a": {"b": "x"}}, separator="/")
        assert flat == {"a/b": "x"}

    def test_scalar_list_joined(self):
        flat = flatten_json({"tags": ["red", "blue"]})
        assert flat == {"tags": "red blue"}

    def test_list_of_objects_flattened(self):
        flat = flatten_json({"phones": [{"kind": "home", "nr": "1"}]})
        assert flat == {"phones": "kind=home nr=1"}

    def test_empty_list_is_missing(self):
        assert flatten_json({"tags": []}) == {"tags": None}

    def test_list_with_nulls_skips_them(self):
        assert flatten_json({"tags": ["a", None, "b"]}) == {"tags": "a b"}

    def test_non_object_rejected(self):
        with pytest.raises(TypeError, match="expected a JSON object"):
            flatten_json([1, 2, 3])

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=5).filter(lambda s: "." not in s),
            st.one_of(st.none(), st.integers(), st.text(max_size=8)),
            max_size=5,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_flat_objects_keep_their_keys(self, obj):
        flat = flatten_json(obj)
        assert set(flat) == set(obj)


class TestRecordsFromJsonObjects:
    def test_id_field_extracted(self):
        records = records_from_json_objects([{"id": "r1", "name": "ada"}])
        assert records[0].record_id == "r1"
        assert records[0].value("name") == "ada"
        assert "id" not in records[0].values

    def test_nested_id_field(self):
        records = records_from_json_objects(
            [{"meta": {"key": "k9"}, "name": "x"}], id_field="meta.key"
        )
        assert records[0].record_id == "k9"

    def test_missing_id_rejected(self):
        with pytest.raises(ValueError, match="lacks the id field"):
            records_from_json_objects([{"name": "ada"}])


class TestImportJsonDataset:
    def test_array_source(self):
        data = json.dumps(
            [
                {"id": "r1", "name": "ada", "address": {"city": "london"}},
                {"id": "r2", "name": "grace", "address": {"city": "nyc"}},
            ]
        )
        dataset = import_json_dataset(io.StringIO(data), name="json-ds")
        assert len(dataset) == 2
        assert dataset["r1"].value("address.city") == "london"
        assert dataset.name == "json-ds"

    def test_json_lines_source(self):
        data = '{"id": "a", "v": 1}\n\n{"id": "b", "v": 2}\n'
        dataset = import_json_dataset(io.StringIO(data))
        assert sorted(dataset.record_ids) == ["a", "b"]

    def test_file_path_source(self, tmp_path):
        path = tmp_path / "data.json"
        path.write_text('[{"id": "r1", "name": "ada"}]')
        dataset = import_json_dataset(path)
        assert dataset["r1"].value("name") == "ada"

    def test_empty_source(self):
        dataset = import_json_dataset(io.StringIO(""))
        assert len(dataset) == 0

    def test_invalid_json_line_reports_line_number(self):
        data = '{"id": "a"}\nnot json\n'
        with pytest.raises(ValueError, match="line 2"):
            import_json_dataset(io.StringIO(data))

    def test_non_array_top_level_rejected(self):
        with pytest.raises(
            (ValueError, TypeError), match="array|object"
        ):
            import_json_dataset(io.StringIO('"just a string"'))

    def test_null_values_profile_as_sparse(self):
        from repro.profiling import sparsity

        data = '[{"id": "a", "x": null, "y": "v"}, {"id": "b", "x": "w", "y": null}]'
        dataset = import_json_dataset(io.StringIO(data))
        assert sparsity(dataset) == pytest.approx(0.5)
