"""Property-based round trips through the CSV import/export layer.

Exporters and importers must be inverse for *any* content, including
values containing the CSV separator, quotes, and newlines — the kind of
adversarial data real matching results contain.
"""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Dataset, Experiment, GoldStandard, Record
from repro.io import (
    CsvFormat,
    PairFormatImporter,
    export_dataset,
    export_experiment,
    export_gold_standard,
    import_dataset,
    import_gold_standard,
)

# printable-ish text without NUL (csv cannot carry NUL) and without
# bare carriage returns (the csv module folds \r\n <-> \n on round trip)
adversarial_text = st.text(
    alphabet=st.characters(blacklist_characters="\x00\r", blacklist_categories=("Cs",)),
    min_size=0,
    max_size=20,
)

record_ids = st.lists(
    st.text(
        alphabet=st.characters(
            blacklist_characters="\x00\r\n", blacklist_categories=("Cs",)
        ),
        min_size=1,
        max_size=8,
    ),
    min_size=1,
    max_size=8,
    unique=True,
)


@st.composite
def datasets(draw):
    ids = draw(record_ids)
    attributes = draw(
        st.lists(
            st.sampled_from(["name", "city", "zip", "note"]),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    records = []
    for record_id in ids:
        values = {
            attribute: draw(st.one_of(st.none(), adversarial_text))
            for attribute in attributes
        }
        records.append(Record(record_id, values))
    return Dataset(records, name="prop", attributes=attributes)


class TestDatasetRoundTrip:
    @given(datasets())
    @settings(max_examples=40, deadline=None)
    def test_values_survive(self, dataset):
        buffer = io.StringIO()
        export_dataset(dataset, buffer)
        buffer.seek(0)
        reloaded = import_dataset(buffer, name=dataset.name)
        assert reloaded.record_ids == dataset.record_ids
        for record in dataset:
            clone = reloaded[record.record_id]
            for attribute in dataset.attributes:
                # "" and None both mean missing (Record.value folds them)
                assert clone.value(attribute) == record.value(attribute)

    @given(datasets(), st.sampled_from([",", ";", "\t", "|"]))
    @settings(max_examples=20, deadline=None)
    def test_any_separator(self, dataset, separator):
        fmt = CsvFormat(separator=separator)
        buffer = io.StringIO()
        export_dataset(dataset, buffer, fmt=fmt)
        buffer.seek(0)
        reloaded = import_dataset(buffer, fmt=fmt)
        assert reloaded.record_ids == dataset.record_ids


@st.composite
def experiments(draw):
    ids = draw(record_ids)
    if len(ids) < 2:
        return Experiment([], name="prop-run")
    pair_count = draw(st.integers(min_value=0, max_value=6))
    matches = []
    for _ in range(pair_count):
        indexes = draw(
            st.lists(
                st.integers(min_value=0, max_value=len(ids) - 1),
                min_size=2,
                max_size=2,
                unique=True,
            )
        )
        score = draw(
            st.one_of(
                st.none(),
                st.floats(min_value=0, max_value=1, allow_nan=False, width=32),
            )
        )
        first, second = ids[indexes[0]], ids[indexes[1]]
        matches.append((first, second) if score is None else (first, second, score))
    return Experiment(matches, name="prop-run")


class TestExperimentRoundTrip:
    @given(experiments())
    @settings(max_examples=40, deadline=None)
    def test_pairs_survive(self, experiment):
        buffer = io.StringIO()
        export_experiment(experiment, buffer)
        buffer.seek(0)
        reloaded = PairFormatImporter().import_experiment(buffer)
        assert reloaded.pairs() == experiment.pairs()

    @given(experiments())
    @settings(max_examples=40, deadline=None)
    def test_scores_survive_to_6_decimals(self, experiment):
        buffer = io.StringIO()
        export_experiment(experiment, buffer)
        buffer.seek(0)
        reloaded = PairFormatImporter().import_experiment(buffer)
        for match in experiment.matches:
            round_tripped = reloaded.score_of(*match.pair)
            if match.score is None:
                assert round_tripped is None
            else:
                assert round_tripped is not None
                assert abs(round_tripped - match.score) < 1e-6


class TestGoldRoundTrip:
    @given(experiments())
    @settings(max_examples=30, deadline=None)
    def test_both_formats_reproduce_the_clustering(self, experiment):
        gold = GoldStandard.from_pairs(
            [tuple(pair) for pair in experiment.pairs()]
        )
        for format_ in ("pairs", "clusters"):
            buffer = io.StringIO()
            export_gold_standard(gold, buffer, format_=format_)
            buffer.seek(0)
            reloaded = import_gold_standard(buffer, format_=format_)
            assert reloaded.pairs() == gold.pairs()
