"""Tests for dataset / experiment / gold-standard importers (§5.1)."""

import io

import pytest

from repro.io.csvio import CsvFormat
from repro.io.importers import (
    ClusterFormatImporter,
    ImportError_,
    PairFormatImporter,
    import_dataset,
    import_gold_standard,
)


class TestDatasetImport:
    def test_basic(self):
        source = io.StringIO("id,name,city\r\nr1,john,salem\r\nr2,mary,\r\n")
        dataset = import_dataset(source, name="csv-test")
        assert len(dataset) == 2
        assert dataset["r1"].value("name") == "john"
        assert dataset["r2"].is_null("city")

    def test_custom_id_column(self):
        source = io.StringIO("key,v\r\nx,1\r\n")
        dataset = import_dataset(source, id_column="key")
        assert "x" in dataset

    def test_missing_id_column(self):
        source = io.StringIO("a,b\r\n1,2\r\n")
        with pytest.raises(ImportError_, match="id column"):
            import_dataset(source)

    def test_rename_mapping(self):
        source = io.StringIO("id,Vorname\r\nr1,hans\r\n")
        dataset = import_dataset(source, rename={"Vorname": "first_name"})
        assert dataset["r1"].value("first_name") == "hans"


class TestPairFormatImporter:
    def test_with_scores(self):
        source = io.StringIO("p1,p2,score\r\na,b,0.9\r\nc,d,0.5\r\n")
        experiment = PairFormatImporter().import_experiment(source, name="run")
        assert len(experiment) == 2
        assert experiment.score_of("a", "b") == 0.9

    def test_without_score_column(self):
        source = io.StringIO("p1,p2\r\na,b\r\n")
        importer = PairFormatImporter(score_column=None)
        experiment = importer.import_experiment(source)
        assert experiment.score_of("a", "b") is None

    def test_empty_score_cell_tolerated(self):
        source = io.StringIO("p1,p2,score\r\na,b,\r\n")
        experiment = PairFormatImporter().import_experiment(source)
        assert experiment.score_of("a", "b") is None

    def test_bad_score_raises_with_line(self):
        source = io.StringIO("p1,p2,score\r\na,b,high\r\n")
        with pytest.raises(ImportError_, match="row 1.*not a number"):
            PairFormatImporter().import_experiment(source)

    def test_missing_column_raises(self):
        source = io.StringIO("x,y\r\na,b\r\n")
        with pytest.raises(ImportError_, match="lacks column"):
            PairFormatImporter().import_experiment(source)

    def test_self_pairs_skipped(self):
        source = io.StringIO("p1,p2,score\r\na,a,0.9\r\na,b,0.8\r\n")
        experiment = PairFormatImporter().import_experiment(source)
        assert len(experiment) == 1

    def test_custom_columns_and_separator(self):
        source = io.StringIO("left;right\r\na;b\r\n")
        importer = PairFormatImporter(
            first_column="left", second_column="right", score_column=None,
            fmt=CsvFormat(separator=";"),
        )
        assert len(importer.import_experiment(source)) == 1


class TestClusterFormatImporter:
    def test_emits_intra_cluster_pairs(self):
        source = io.StringIO("id,cluster\r\na,1\r\nb,1\r\nc,1\r\nd,2\r\n")
        experiment = ClusterFormatImporter().import_experiment(source)
        assert experiment.pairs() == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_missing_column(self):
        source = io.StringIO("id,x\r\na,1\r\n")
        with pytest.raises(ImportError_, match="lacks column"):
            ClusterFormatImporter().import_experiment(source)


class TestGoldImport:
    def test_pairs_format_closes(self):
        source = io.StringIO("p1,p2\r\na,b\r\nb,c\r\n")
        gold = import_gold_standard(source, format_="pairs")
        assert gold.is_duplicate("a", "c")

    def test_clusters_format(self):
        source = io.StringIO("id,cluster\r\na,g1\r\nb,g1\r\nc,g2\r\n")
        gold = import_gold_standard(source, format_="clusters")
        assert gold.is_duplicate("a", "b")
        assert not gold.is_duplicate("a", "c")

    def test_custom_columns(self):
        source = io.StringIO("rec,grp\r\na,1\r\nb,1\r\n")
        gold = import_gold_standard(
            source, format_="clusters", id_column="rec", cluster_column="grp"
        )
        assert gold.is_duplicate("a", "b")

    def test_unknown_format(self):
        with pytest.raises(ImportError_, match="unknown gold format"):
            import_gold_standard(io.StringIO(""), format_="xml")
