"""Tests for exporters and importer round trips."""

import io

from repro.core import Experiment, GoldStandard, Match
from repro.io.exporters import export_dataset, export_experiment, export_gold_standard
from repro.io.importers import (
    PairFormatImporter,
    import_dataset,
    import_gold_standard,
)


class TestDatasetRoundTrip:
    def test_round_trip(self, people_dataset):
        buffer = io.StringIO()
        export_dataset(people_dataset, buffer)
        reimported = import_dataset(io.StringIO(buffer.getvalue()), name="people")
        assert reimported.record_ids == people_dataset.record_ids
        assert reimported["p3"].value("first") == "mary"
        # nulls survive (empty cells re-import as None)
        assert reimported["p3"].is_null("zip")


class TestExperimentRoundTrip:
    def test_round_trip_with_scores(self):
        experiment = Experiment([("a", "b", 0.9), ("c", "d", 0.25)], name="run")
        buffer = io.StringIO()
        export_experiment(experiment, buffer)
        reimported = PairFormatImporter().import_experiment(
            io.StringIO(buffer.getvalue())
        )
        assert reimported.pairs() == experiment.pairs()
        assert reimported.score_of("a", "b") == 0.9

    def test_clustering_flag_column(self):
        experiment = Experiment(
            [Match(pair=("a", "b"), score=0.9), Match(pair=("a", "c"), from_clustering=True)]
        )
        buffer = io.StringIO()
        export_experiment(experiment, buffer, include_clustering_flag=True)
        content = buffer.getvalue()
        assert "from_clustering" in content
        assert ",1" in content  # flagged row


class TestGoldRoundTrip:
    def test_clusters_round_trip(self, people_gold):
        buffer = io.StringIO()
        export_gold_standard(people_gold, buffer, format_="clusters")
        reimported = import_gold_standard(
            io.StringIO(buffer.getvalue()), format_="clusters"
        )
        assert reimported.pairs() == people_gold.pairs()

    def test_pairs_round_trip(self, people_gold):
        buffer = io.StringIO()
        export_gold_standard(people_gold, buffer, format_="pairs")
        reimported = import_gold_standard(
            io.StringIO(buffer.getvalue()), format_="pairs"
        )
        assert reimported.pairs() == people_gold.pairs()

    def test_unknown_format_rejected(self, people_gold):
        import pytest

        with pytest.raises(ValueError, match="unknown gold format"):
            export_gold_standard(people_gold, io.StringIO(), format_="json")
