"""MatchGraph traversal semantics, edge cases, and the evidence oracle.

The evidence-path query must return a connected path whose minimum
edge score is maximal — verified here against a brute-force oracle
that enumerates every simple path on small randomized graphs.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.model import GraphQueryError, MatchGraph


def graph_of(edges, nodes=None, threshold=0.5, name="g"):
    """A graph from ``(first, second, score)`` rows; nodes auto-added."""
    graph = MatchGraph(name, threshold)
    names = nodes if nodes is not None else sorted(
        {end for edge in edges for end in edge[:2]}
    )
    for native in names:
        graph.add_node(native)
    for first, second, score in edges:
        graph.add_edge(graph.node_of(first), graph.node_of(second), score)
    return graph


class TestConstruction:
    def test_dense_node_ids_in_insertion_order(self):
        graph = MatchGraph("g", 0.5)
        assert graph.add_node("z") == 0
        assert graph.add_node("a") == 1
        assert graph.record_ids() == ["z", "a"]

    def test_duplicate_node_rejected(self):
        graph = MatchGraph("g", 0.5)
        graph.add_node("a")
        with pytest.raises(ValueError, match="already has record"):
            graph.add_node("a")

    def test_self_pairs_filtered_out(self):
        graph = graph_of([], nodes=["a"])
        with pytest.raises(ValueError, match="self-edge"):
            graph.add_edge(0, 0, 0.9)

    def test_duplicate_edge_rejected_in_either_orientation(self):
        graph = graph_of([("a", "b", 0.9)])
        with pytest.raises(ValueError, match="duplicate edge"):
            graph.add_edge(
                graph.node_of("b"), graph.node_of("a"), 0.8
            )

    def test_components_follow_only_accepted_edges(self):
        graph = graph_of([("a", "b", 0.9), ("b", "c", 0.3)])
        members = graph.component_members()
        assert sorted(members.values()) == [["a", "b"], ["c"]]

    def test_summary_counts(self):
        graph = graph_of(
            [("a", "b", 0.9), ("b", "c", 0.3)], nodes=["a", "b", "c", "d"]
        )
        summary = graph.summary()
        assert summary["node_count"] == 4
        assert summary["edge_count"] == 2
        assert summary["accepted_edge_count"] == 1
        assert summary["component_count"] == 3
        assert summary["cluster_count"] == 1
        assert summary["largest_component"] == 2


class TestNeighbors:
    def test_k0_is_the_record_alone(self):
        graph = graph_of([("a", "b", 0.9)])
        result = graph.neighbors("a", k=0)
        assert result["neighbors"] == [{"record": "a", "hops": 0}]
        assert result["edges"] == []

    def test_hop_distances_in_a_chain(self):
        graph = graph_of([("a", "b", 0.9), ("b", "c", 0.9), ("c", "d", 0.9)])
        result = graph.neighbors("a", k=2)
        assert {row["record"]: row["hops"] for row in result["neighbors"]} == {
            "a": 0, "b": 1, "c": 2,
        }

    def test_cycle_terminates_with_shortest_hops(self):
        graph = graph_of(
            [("a", "b", 0.9), ("b", "c", 0.9), ("c", "a", 0.9)]
        )
        result = graph.neighbors("a", k=5)
        hops = {row["record"]: row["hops"] for row in result["neighbors"]}
        assert hops == {"a": 0, "b": 1, "c": 1}
        assert len(result["edges"]) == 3

    def test_isolated_node_has_no_neighbors(self):
        graph = graph_of([("a", "b", 0.9)], nodes=["a", "b", "lone"])
        result = graph.neighbors("lone", k=3)
        assert result["neighbors"] == [{"record": "lone", "hops": 0}]

    def test_threshold_excluding_all_edges(self):
        graph = graph_of([("a", "b", 0.9), ("b", "c", 0.8)])
        result = graph.neighbors("a", k=2, threshold=0.95)
        assert result["neighbors"] == [{"record": "a", "hops": 0}]
        assert result["edges"] == []

    def test_explicit_threshold_traverses_rejected_edges(self):
        # b-c scores below the acceptance threshold; an explicit lower
        # traversal threshold still reaches c
        graph = graph_of([("a", "b", 0.9), ("b", "c", 0.3)])
        assert len(graph.neighbors("a", k=2)["neighbors"]) == 2
        widened = graph.neighbors("a", k=2, threshold=0.2)
        assert len(widened["neighbors"]) == 3

    def test_negative_k_rejected(self):
        graph = graph_of([("a", "b", 0.9)])
        with pytest.raises(GraphQueryError):
            graph.neighbors("a", k=-1)

    def test_unknown_record_raises_keyerror(self):
        graph = graph_of([("a", "b", 0.9)])
        with pytest.raises(KeyError):
            graph.neighbors("ghost")


class TestPath:
    def test_fewest_hops_path(self):
        graph = graph_of(
            [
                ("a", "b", 0.9),
                ("b", "c", 0.9),
                ("c", "d", 0.9),
                ("a", "d", 0.9),
            ]
        )
        result = graph.path("b", "d")
        assert result["found"]
        assert len(result["path"]) == 3  # b-a-d or b-c-d

    def test_different_components_is_empty_result_not_exception(self):
        graph = graph_of([("a", "b", 0.9), ("c", "d", 0.9)])
        result = graph.path("a", "c")
        assert result == {
            "from": "a",
            "to": "c",
            "threshold": None,
            "found": False,
            "path": [],
            "edges": [],
        }

    def test_path_to_self(self):
        graph = graph_of([("a", "b", 0.9)])
        result = graph.path("a", "a")
        assert result["found"] and result["path"] == ["a"]

    def test_threshold_can_sever_the_only_route(self):
        graph = graph_of([("a", "b", 0.6), ("b", "c", 0.9)])
        assert graph.path("a", "c")["found"]
        assert not graph.path("a", "c", threshold=0.8)["found"]


class TestComponents:
    def test_component_of_isolated_record(self):
        graph = graph_of([("a", "b", 0.9)], nodes=["a", "b", "lone"])
        result = graph.component_of("lone")
        assert result["size"] == 1
        assert result["density"] == 0.0
        assert result["min_score"] is None

    def test_component_stats(self):
        graph = graph_of(
            [("a", "b", 0.9), ("b", "c", 0.7), ("a", "c", 0.8)]
        )
        result = graph.component_of("a")
        assert result["size"] == 3
        assert result["edge_count"] == 3
        assert result["density"] == 1.0
        assert result["min_score"] == 0.7
        assert result["max_score"] == 0.9

    def test_components_sorted_by_size_then_label(self):
        graph = graph_of(
            [("a", "b", 0.9), ("c", "d", 0.9), ("d", "e", 0.9)],
            nodes=["a", "b", "c", "d", "e", "f"],
        )
        listed = graph.components()
        assert [c["size"] for c in listed] == [3, 2, 1]
        assert graph.components(limit=1)[0]["records"] == ["c", "d", "e"]

    def test_bad_limit_rejected(self):
        graph = graph_of([("a", "b", 0.9)])
        with pytest.raises(GraphQueryError):
            graph.components(limit=-2)


def oracle_bottleneck(graph: MatchGraph, source: str, target: str):
    """Max over all simple paths of the minimum edge score (brute force)."""
    start, goal = graph.node_of(source), graph.node_of(target)
    adjacency = {}
    for node in range(graph.node_count):
        adjacency[node] = [
            (neighbor, score)
            for neighbor, score, accepted in graph._adjacency[node]
            if accepted
        ]
    best = None
    stack = [(start, {start}, float("inf"))]
    while stack:
        node, seen, width = stack.pop()
        if node == goal:
            if best is None or width > best:
                best = width
            continue
        for neighbor, score in adjacency[node]:
            if neighbor not in seen:
                stack.append((neighbor, seen | {neighbor}, min(width, score)))
    return best


class TestEvidencePath:
    def test_prefers_strong_detour_over_weak_shortcut(self):
        graph = graph_of(
            [
                ("a", "d", 0.55),
                ("a", "b", 0.95),
                ("b", "c", 0.9),
                ("c", "d", 0.85),
            ],
            threshold=0.5,
        )
        result = graph.evidence_path("a", "d")
        assert result["path"] == ["a", "b", "c", "d"]
        assert result["bottleneck"] == 0.85

    def test_evidence_carries_attribute_breakdowns(self):
        graph = MatchGraph("g", 0.5)
        for native in ("a", "b"):
            graph.add_node(native)
        graph.add_edge(0, 1, 0.9, breakdown={"name": 0.8, "zip": None})
        result = graph.evidence_path("a", "b")
        assert result["edges"][0]["evidence"] == {"name": 0.8, "zip": None}

    def test_cross_component_explains_nothing(self):
        graph = graph_of([("a", "b", 0.9), ("c", "d", 0.9)])
        result = graph.evidence_path("a", "c")
        assert not result["found"]
        assert result["path"] == []

    def test_rejected_edges_are_not_evidence(self):
        # a-c exists but below threshold: the component split wins
        graph = graph_of([("a", "b", 0.9), ("b", "c", 0.3)])
        assert not graph.evidence_path("a", "c")["found"]

    def test_matches_oracle_on_a_known_tricky_graph(self):
        graph = graph_of(
            [
                ("a", "b", 0.6),
                ("b", "e", 0.6),
                ("a", "c", 0.9),
                ("c", "d", 0.8),
                ("d", "e", 0.7),
            ],
            threshold=0.5,
        )
        result = graph.evidence_path("a", "e")
        assert result["bottleneck"] == oracle_bottleneck(graph, "a", "e") == 0.7

    @given(data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_bottleneck_matches_brute_force_oracle(self, data):
        """Acceptance invariant: the evidence path's minimum edge score
        equals the best achievable over ALL simple paths."""
        n = data.draw(st.integers(min_value=2, max_value=6), label="nodes")
        names = [f"r{i}" for i in range(n)]
        all_pairs = list(itertools.combinations(range(n), 2))
        chosen = data.draw(
            st.lists(
                st.sampled_from(all_pairs),
                unique=True,
                min_size=1,
                max_size=len(all_pairs),
            ),
            label="edges",
        )
        scores = data.draw(
            st.lists(
                st.sampled_from([0.5, 0.6, 0.7, 0.8, 0.9, 1.0]),
                min_size=len(chosen),
                max_size=len(chosen),
            ),
            label="scores",
        )
        graph = MatchGraph("g", 0.5)
        for native in names:
            graph.add_node(native)
        for (first, second), score in zip(chosen, scores):
            graph.add_edge(first, second, score)
        source = data.draw(st.sampled_from(names), label="source")
        target = data.draw(st.sampled_from(names), label="target")
        expected = oracle_bottleneck(graph, source, target)
        result = graph.evidence_path(source, target)
        if expected is None:
            assert not result["found"]
        else:
            assert result["found"]
            if source == target:
                assert result["path"] == [source]
            else:
                assert result["bottleneck"] == expected
                # the returned path must be connected and achieve the
                # bottleneck it claims
                assert result["path"][0] == source
                assert result["path"][-1] == target
                assert (
                    min(edge["score"] for edge in result["edges"]) == expected
                )


class TestClusterViews:
    def test_cluster_pairs_is_the_transitive_closure(self):
        graph = graph_of(
            [("a", "b", 0.9), ("b", "c", 0.9), ("d", "e", 0.9)],
            nodes=["a", "b", "c", "d", "e", "f"],
        )
        assert graph.cluster_pairs() == {
            ("a", "b"), ("a", "c"), ("b", "c"), ("d", "e"),
        }

    def test_labels_are_min_member_ids(self):
        graph = graph_of([("b", "c", 0.9), ("a", "c", 0.9)], nodes=["a", "b", "c"])
        assert graph.label_of(graph.node_of("b")) == 0
        assert graph.component_nodes() == {0: [0, 1, 2]}
