"""CLI coverage for ``repro graph ...`` and ``stream init --graph``.

Follows the tests/test_cli.py conventions: drive ``main()`` with real
argv lists against CSVs in ``tmp_path`` and assert on printed output
and exit codes.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.core.records import Dataset
from repro.storage.database import FrostStore
from repro.streaming import build_pipeline_and_index

from tests.graph.test_build import CONFIG, PEOPLE, records

BATCH_ONE = "id,name,zip\n" + "\n".join(
    ",".join(row) for row in PEOPLE[:5]
) + "\n"
BATCH_TWO = "id,name,zip\n" + "\n".join(
    ",".join(row) for row in PEOPLE[5:]
) + "\n"


def run(capsys, *argv):
    code = main([str(part) for part in argv])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture
def stream_store(tmp_path, capsys):
    """A store holding a graph-enabled stream fed two CSV batches."""
    (tmp_path / "b1.csv").write_text(BATCH_ONE)
    (tmp_path / "b2.csv").write_text(BATCH_TWO)
    store = tmp_path / "s.db"
    code, _, err = run(
        capsys, "stream", "init", "--store", store, "--name", "s",
        "--key-kind", "first_token", "--key-attribute", "name",
        "--similarity", "name=jaro_winkler", "--similarity", "zip=exact",
        "--threshold", "0.6", "--graph",
    )
    assert code == 0, err
    for batch in ("b1.csv", "b2.csv"):
        code, _, err = run(
            capsys, "stream", "ingest", "--store", store, "--name", "s",
            "--dataset", tmp_path / batch,
        )
        assert code == 0, err
    return store


class TestGraphParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["graph"])

    def test_path_maps_from_and_to(self):
        args = build_parser().parse_args(
            ["graph", "path", "--store", "x.db", "--name", "g",
             "--from", "a", "--to", "b"]
        )
        assert args.from_record == "a"
        assert args.to_record == "b"
        assert args.threshold is None

    def test_neighbors_requires_record(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["graph", "neighbors", "--store", "x.db", "--name", "g"]
            )


class TestGraphCommands:
    def test_neighbors_lists_hops_and_edges(self, stream_store, capsys):
        code, out, _ = run(
            capsys, "graph", "neighbors", "--store", stream_store,
            "--name", "s", "--record", "p01", "--k", "2",
        )
        assert code == 0
        assert "within 2 hops" in out
        assert "hop 0: p01" in out
        assert "hop 1: p02" in out
        assert "=[0.9" in out  # accepted edge with its score

    def test_path_prints_the_route(self, stream_store, capsys):
        code, out, _ = run(
            capsys, "graph", "path", "--store", stream_store,
            "--name", "s", "--from", "p03", "--to", "p09",
        )
        assert code == 0
        assert out.splitlines()[0].startswith("p03 -> ")
        assert out.splitlines()[0].endswith("p09")

    def test_cross_component_path_exits_one(self, stream_store, capsys):
        code, out, _ = run(
            capsys, "graph", "path", "--store", stream_store,
            "--name", "s", "--from", "p01", "--to", "p05",
        )
        assert code == 1
        assert "no path" in out

    def test_component_summarises_membership(self, stream_store, capsys):
        code, out, _ = run(
            capsys, "graph", "component", "--store", stream_store,
            "--name", "s", "--record", "p03",
        )
        assert code == 0
        assert "component of 'p03'" in out
        assert "p03" in out and "p04" in out and "p09" in out

    def test_explain_shows_weakest_link_and_evidence(
        self, stream_store, capsys
    ):
        code, out, _ = run(
            capsys, "graph", "explain", "--store", stream_store,
            "--name", "s", "--from", "p03", "--to", "p09",
        )
        assert code == 0
        assert "weakest link" in out
        assert "name:" in out and "zip:" in out

    def test_explain_different_clusters_exits_one(self, stream_store, capsys):
        code, out, _ = run(
            capsys, "graph", "explain", "--store", stream_store,
            "--name", "s", "--from", "p01", "--to", "p05",
        )
        assert code == 1
        assert "not in" in out

    def test_unknown_graph_is_a_clean_error(self, stream_store, capsys):
        code, _, err = run(
            capsys, "graph", "component", "--store", stream_store,
            "--name", "ghost", "--record", "p01",
        )
        assert code == 1
        assert "no graph named" in err

    def test_build_from_stored_experiment(self, tmp_path, capsys):
        store_path = tmp_path / "batch.db"
        with FrostStore(str(store_path)) as store:
            pipeline, _ = build_pipeline_and_index(CONFIG)
            dataset = Dataset(records(), name="people")
            run_result = pipeline.run(dataset)
            store.save_dataset(dataset)
            store.save_experiment("people", run_result.experiment)
            experiment_name = run_result.experiment.name
        code, out, _ = run(
            capsys, "graph", "build", "--store", store_path, "--name", "g",
            "--dataset", "people", "--experiment", experiment_name,
        )
        assert code == 0
        assert f"{len(PEOPLE)} nodes" in out
        code, out, _ = run(
            capsys, "graph", "neighbors", "--store", store_path,
            "--name", "g", "--record", "p03",
        )
        assert code == 0
        assert "hop 1: p04" in out
