"""Graph persistence: builds, incremental updates, schema migration.

The acceptance invariant lives here: streaming incremental graph
updates must produce a graph row-identical (nodes, edges, component
memberships) to a from-scratch rebuild after EVERY batch, hypothesis-
tested over randomized batch splits.
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import Dataset, Record
from repro.graph import (
    GraphUpdater,
    build_graph_from_experiment,
    build_graph_from_run,
    load_graph,
)
from repro.storage.database import SCHEMA_VERSION, FrostStore, StorageError
from repro.streaming import StreamError, build_pipeline_and_index, build_session

CONFIG = {
    "key": {"kind": "first_token", "attribute": "name"},
    "similarities": {"name": "jaro_winkler", "zip": "exact"},
    "threshold": 0.6,
    "graph": True,
}

PEOPLE = [
    ("p01", "anna smith", "11111"),
    ("p02", "anna smyth", "11111"),
    ("p03", "bob jones", "22222"),
    ("p04", "bob jones", "22222"),
    ("p05", "carol white", "33333"),
    ("p06", "anna smith", "99999"),
    ("p07", "carol whyte", "33333"),
    ("p08", "dave green", "44444"),
    ("p09", "bob jonas", "22222"),
    ("p10", "eve black", "55555"),
]


def person(row) -> Record:
    native, name, zipcode = row
    return Record(native, {"name": name, "zip": zipcode})


def records() -> list[Record]:
    return [person(row) for row in PEOPLE]


def stored_rows(store: FrostStore, name: str) -> tuple:
    document = store.load_graph(name)
    return (document["nodes"], document["edges"], document["components"])


def rebuild_rows(store: FrostStore, prefix: list[Record]) -> tuple:
    """From-scratch batch-pipeline graph over ``prefix``, as store rows."""
    pipeline, _ = build_pipeline_and_index(CONFIG)
    run = pipeline.run(Dataset(prefix, name="rebuild"))
    build_graph_from_run(store, "rebuild", run)
    try:
        return stored_rows(store, "rebuild")
    finally:
        store.delete_graph("rebuild")


class TestIncrementalEqualsRebuild:
    def test_fixed_split(self):
        store = FrostStore(":memory:")
        session = build_session(CONFIG, store=store, name="s")
        everyone = records()
        session.ingest(everyone[:4])
        session.ingest(everyone[4:7])
        session.ingest(everyone[7:])
        assert stored_rows(store, "s") == rebuild_rows(store, everyone)

    @given(sizes=st.lists(st.integers(min_value=1, max_value=4), max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_any_batch_split_after_every_batch(self, sizes):
        """Incremental graph == rebuild after EVERY batch, whatever the
        split — nodes, edges (scores + breakdowns), and memberships."""
        store = FrostStore(":memory:")
        session = build_session(CONFIG, store=store, name="s")
        everyone = records()
        cursor = 0
        batches = []
        for size in sizes:
            if cursor >= len(everyone):
                break
            batches.append(everyone[cursor:cursor + size])
            cursor += size
        if cursor < len(everyone):
            batches.append(everyone[cursor:])
        ingested: list[Record] = []
        for batch in batches:
            session.ingest(batch)
            ingested.extend(batch)
            assert stored_rows(store, "s") == rebuild_rows(store, ingested)


class TestGraphUpdater:
    def test_create_then_attach_round_trip(self):
        from repro.core.pairs import ScoredPair

        store = FrostStore(":memory:")
        updater = GraphUpdater.create(store, "g", 0.7)
        updater.apply_batch(
            [(0, "a"), (1, "b")], [ScoredPair.of("a", "b", 0.9)]
        )
        again = GraphUpdater.attach(store, "g")
        assert again.graph.component_members() == {0: ["a", "b"]}
        assert again.graph.threshold == 0.7

    def test_duplicate_graph_name_rejected(self):
        store = FrostStore(":memory:")
        GraphUpdater.create(store, "g", 0.5)
        with pytest.raises(StorageError, match="already stored"):
            GraphUpdater.create(store, "g", 0.5)

    def test_node_id_desync_rejected(self):
        store = FrostStore(":memory:")
        updater = GraphUpdater.create(store, "g", 0.5)
        with pytest.raises(StorageError, match="desync"):
            updater.apply_batch([(5, "a")], [])

    def test_failed_store_write_reloads_the_memory_twin(self):
        store = FrostStore(":memory:")
        updater = GraphUpdater.create(store, "g", 0.5)
        updater.apply_batch([(0, "a"), (1, "b")], [])
        # sabotage the next persisted batch: pre-insert its node row so
        # the primary key collides inside append_graph_batch
        store.append_graph_batch("g", [(2, "squatter")], [], [(2, 2)])
        with pytest.raises(StorageError, match="collides"):
            updater.apply_batch([(2, "c")], [])
        # the in-memory twin was reloaded from the store — no phantom
        # "c" node survives the failed write
        assert updater.graph.record_ids() == ["a", "b", "squatter"]

    def test_stream_attach_rejects_node_count_mismatch(self):
        store = FrostStore(":memory:")
        session = build_session(CONFIG, store=store, name="s")
        session.ingest(records()[:3])
        # a foreign graph with the wrong node count must not attach
        GraphUpdater.create(store, "other", 0.5)
        with pytest.raises(StreamError, match="rebuild the graph"):
            session.attach_graph(GraphUpdater.attach(store, "other"))

    def test_store_listing_and_delete(self):
        store = FrostStore(":memory:")
        GraphUpdater.create(store, "b", 0.5)
        GraphUpdater.create(store, "a", 0.5)
        assert store.graph_names() == ["a", "b"]
        store.delete_graph("a")
        assert store.graph_names() == ["b"]
        with pytest.raises(StorageError, match="no graph named"):
            store.graph_meta("a")


class TestBuilders:
    def test_build_from_run_includes_isolated_records(self):
        store = FrostStore(":memory:")
        pipeline, _ = build_pipeline_and_index(CONFIG)
        run = pipeline.run(Dataset(records(), name="people"))
        graph = build_graph_from_run(store, "g", run)
        assert graph.node_count == len(PEOPLE)
        assert graph.threshold == CONFIG["threshold"]
        # every scored candidate pair landed, accepted or not
        assert graph.edge_count == len(run.scored_pairs)
        assert graph.cluster_pairs() == run.experiment.pairs()

    def test_build_from_run_keeps_attribute_evidence(self):
        store = FrostStore(":memory:")
        pipeline, _ = build_pipeline_and_index(CONFIG)
        run = pipeline.run(Dataset(records()[:4], name="people"))
        build_graph_from_run(store, "g", run)
        graph = load_graph(store, "g")
        evidence = graph.evidence_path("p03", "p04")["edges"][0]["evidence"]
        assert set(evidence) == {"name", "zip"}

    def test_build_from_experiment_matches_clustering(self):
        store = FrostStore(":memory:")
        pipeline, _ = build_pipeline_and_index(CONFIG)
        dataset = Dataset(records(), name="people")
        run = pipeline.run(dataset)
        graph = build_graph_from_experiment(
            store, "g", dataset, run.experiment
        )
        assert graph.cluster_pairs() == run.experiment.pairs()

    def test_run_without_threshold_needs_explicit_one(self):
        store = FrostStore(":memory:")
        pipeline, _ = build_pipeline_and_index(CONFIG)
        run = pipeline.run(Dataset(records()[:3], name="people"))
        run.experiment.metadata.pop("threshold")
        with pytest.raises(ValueError, match="threshold"):
            build_graph_from_run(store, "g", run)


class TestSchemaMigration:
    def _seed_pre_graph_store(self, path) -> None:
        """A store file as a PR-6-era process would have left it:
        datasets + experiments persisted, no graph tables, version 1."""
        with FrostStore(path) as store:
            pipeline, _ = build_pipeline_and_index(CONFIG)
            dataset = Dataset(records(), name="people")
            run = pipeline.run(dataset)
            store.save_dataset(dataset)
            store.save_experiment("people", run.experiment)
        connection = sqlite3.connect(path)
        with connection:
            for table in (
                "graph_components", "graph_edges", "graph_nodes", "graphs"
            ):
                connection.execute(f"DROP TABLE {table}")
            connection.execute("PRAGMA user_version = 1")
        connection.close()

    def test_pre_existing_store_migrates_and_builds_graph(self, tmp_path):
        """Satellite regression: resume a PR-6-era database and build
        the graph from its persisted matches."""
        path = str(tmp_path / "old.db")
        self._seed_pre_graph_store(path)
        with FrostStore(path) as store:
            assert store.schema_version == SCHEMA_VERSION
            dataset = store.load_dataset("people")
            experiment = store.load_experiment("people", "streaming-config")
            graph = build_graph_from_experiment(
                store, "migrated", dataset, experiment
            )
            assert graph.cluster_pairs() == experiment.pairs()
        # the stamp survives the reopen
        with FrostStore(path) as store:
            assert store.schema_version == SCHEMA_VERSION

    def test_newer_schema_version_is_refused(self, tmp_path):
        path = str(tmp_path / "future.db")
        FrostStore(path).close()
        connection = sqlite3.connect(path)
        with connection:
            connection.execute("PRAGMA user_version = 99")
        connection.close()
        with pytest.raises(StorageError, match="newer"):
            FrostStore(path)
