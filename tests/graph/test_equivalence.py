"""Graph-backed exploration equals the direct derivations (satellite).

``ErrorAnalysis`` and ``DynamicIntersection`` can consult a match
graph instead of re-deriving pair structure from experiments and merge
logs — these tests pin down that the outputs are identical.
"""

from __future__ import annotations

from repro.core.experiment import GoldStandard
from repro.core.intersection import DynamicIntersection
from repro.core.records import Dataset
from repro.core.unionfind import PairCountingUnionFind
from repro.exploration.error_analysis import ErrorAnalysis
from repro.graph import build_graph_from_run
from repro.storage.database import FrostStore
from repro.streaming import build_pipeline_and_index

from tests.graph.test_build import CONFIG, records


def run_and_graph():
    store = FrostStore(":memory:")
    pipeline, _ = build_pipeline_and_index(CONFIG)
    run = pipeline.run(Dataset(records(), name="people"))
    graph = build_graph_from_run(store, "g", run)
    return run, graph


# p06 shares p01's name but not its zip: the mean similarity lands
# below the threshold, so ("p01", "p06") is a guaranteed false negative
GOLD = GoldStandard.from_pairs(
    [("p01", "p02"), ("p01", "p06"), ("p02", "p06"), ("p03", "p04"),
     ("p03", "p09"), ("p04", "p09"), ("p05", "p07")],
    name="people-gold",
)


class TestErrorAnalysisEquivalence:
    def test_correct_duplicate_pairs_identical(self):
        run, graph = run_and_graph()
        direct = ErrorAnalysis(run.dataset)
        graphed = ErrorAnalysis(run.dataset, graph=graph)
        assert graphed.correct_duplicate_pairs(
            run.experiment, GOLD
        ) == direct.correct_duplicate_pairs(run.experiment, GOLD)

    def test_explanations_identical_over_both_candidate_sets(self):
        run, graph = run_and_graph()
        direct = ErrorAnalysis(run.dataset)
        graphed = ErrorAnalysis(run.dataset, graph=graph)
        gold_pairs = GOLD.pairs()
        missed = sorted(gold_pairs - run.experiment.pairs())
        assert missed, "fixture should leave at least one false negative"
        from_direct = direct.explain_all(
            missed, sorted(direct.correct_duplicate_pairs(run.experiment, GOLD))
        )
        from_graph = graphed.explain_all(
            missed, sorted(graphed.correct_duplicate_pairs(run.experiment, GOLD))
        )
        assert from_direct == from_graph


class TestDynamicIntersectionEquivalence:
    def test_from_graph_equals_replayed_merges(self):
        run, graph = run_and_graph()
        dataset = run.dataset
        truth_of = []
        cluster_index = {}
        for native in (record.record_id for record in dataset):
            cluster = next(
                (i for i, members in enumerate(GOLD.clustering.clusters)
                 if native in members),
                None,
            )
            if cluster is None:
                cluster_index[native] = len(cluster_index) + 10_000
            truth_of.append(
                cluster if cluster is not None else cluster_index[native]
            )

        # the replayed path: feed the experiment's accepted pairs
        # through a tracked union-find, batch by batch
        replayed = DynamicIntersection(truth_of)
        unionfind = PairCountingUnionFind(len(dataset))
        accepted = [
            (dataset.numeric_id(pair[0]), dataset.numeric_id(pair[1]))
            for pair in sorted(run.experiment.original_pairs())
        ]
        for left, right in accepted:
            replayed.update(unionfind.tracked_union([(left, right)]))

        seeded = DynamicIntersection.from_graph(graph, truth_of)
        assert seeded.pair_count == replayed.pair_count
        normalize = lambda clusters: sorted(
            tuple(sorted(members)) for members in clusters.values()
            if len(members) > 1
        )
        assert normalize(seeded.clusters()) == normalize(replayed.clusters())

    def test_from_graph_rejects_size_mismatch(self):
        import pytest

        _, graph = run_and_graph()
        with pytest.raises(ValueError, match="truth_of"):
            DynamicIntersection.from_graph(graph, [0, 1])
