"""Graph payloads through the serving cache: invalidation + concurrency.

Graph traversal payloads are cached under ``graph:{name}`` tags; every
graph write (a stream batch, a build) must invalidate them before the
next read.  The hammer drives 8 threads of mixed traversals against
one serving layer and checks every response for correctness.
"""

from __future__ import annotations

import threading

from repro.core.platform import FrostPlatform
from repro.serving.service import ServingLayer
from repro.storage.database import FrostStore
from repro.streaming import build_session

from tests.graph.test_build import CONFIG, records


def serving_over_stream():
    store = FrostStore(":memory:")
    session = build_session(CONFIG, store=store, name="s")
    serving = ServingLayer(FrostPlatform())
    serving.attach_store(store)
    return store, session, serving


class TestGraphServing:
    def test_no_store_means_no_graphs(self):
        serving = ServingLayer(FrostPlatform())
        assert serving.graph_names() == []

    def test_ingest_invalidates_cached_payloads(self):
        _, session, serving = serving_over_stream()
        everyone = records()
        session.ingest(everyone[:4])
        first = serving.graph_summary_payload("s")
        assert first["node_count"] == 4
        # cached now: identical re-read must not recompute
        computations = serving.stats()["computations"]
        assert serving.graph_summary_payload("s") == first
        assert serving.stats()["computations"] == computations
        # a write invalidates: the next read sees the new batch
        session.ingest(everyone[4:6])
        assert serving.graph_summary_payload("s")["node_count"] == 6

    def test_payloads_match_direct_queries(self):
        _, session, serving = serving_over_stream()
        session.ingest(records())
        graph = session._graph.graph
        assert serving.graph_neighbors_payload(
            "s", "p01", 2, None
        ) == graph.neighbors("p01", k=2)
        assert serving.graph_path_payload(
            "s", "p03", "p09", None
        ) == graph.path("p03", "p09")
        assert serving.graph_component_payload(
            "s", "p03"
        ) == graph.component_of("p03")
        assert serving.graph_explain_payload(
            "s", "p03", "p09"
        ) == graph.evidence_path("p03", "p09")
        assert serving.graph_components_payload("s", 3) == {
            "components": graph.components(limit=3)
        }

    def test_eight_thread_concurrent_traversal_hammer(self):
        """8 threads x mixed traversals: every response correct, no
        exceptions, and the cache actually absorbs the repetition."""
        _, session, serving = serving_over_stream()
        session.ingest(records())
        graph = session._graph.graph
        expected = {
            "summary": graph.summary(),
            "neighbors": graph.neighbors("p01", k=2),
            "path": graph.path("p03", "p09"),
            "component": graph.component_of("p05"),
            "explain": graph.evidence_path("p03", "p09"),
        }
        failures: list[str] = []
        barrier = threading.Barrier(8)

        def hammer(seed: int) -> None:
            barrier.wait()
            for round_index in range(25):
                try:
                    got = {
                        "summary": serving.graph_summary_payload("s"),
                        "neighbors": serving.graph_neighbors_payload(
                            "s", "p01", 2, None
                        ),
                        "path": serving.graph_path_payload(
                            "s", "p03", "p09", None
                        ),
                        "component": serving.graph_component_payload(
                            "s", "p05"
                        ),
                        "explain": serving.graph_explain_payload(
                            "s", "p03", "p09"
                        ),
                    }
                    if got != expected:
                        failures.append(
                            f"thread {seed} round {round_index}: mismatch"
                        )
                except Exception as error:  # noqa: BLE001 - recorded
                    failures.append(f"thread {seed}: {error!r}")

        threads = [
            threading.Thread(target=hammer, args=(index,)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures[:5]
        stats = serving.stats()
        # 8 threads x 25 rounds x 5 queries; at most a handful compute
        assert stats["requests"] >= 1000
        assert stats["computations"] <= 10

    def test_concurrent_reads_with_interleaved_writes_stay_fresh(self):
        """Readers racing a writer never see a stale summary after the
        writer's final batch lands."""
        _, session, serving = serving_over_stream()
        everyone = records()
        session.ingest(everyone[:2])
        stop = threading.Event()
        failures: list[str] = []

        def reader() -> None:
            seen = 2
            while not stop.is_set():
                count = serving.graph_summary_payload("s")["node_count"]
                if count < seen:
                    failures.append(f"node_count went backwards: {count}")
                    return
                seen = count

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for start in range(2, len(everyone), 2):
            session.ingest(everyone[start:start + 2])
        stop.set()
        for thread in threads:
            thread.join()
        assert not failures, failures
        assert serving.graph_summary_payload("s")["node_count"] == len(everyone)
