"""Tests of the match-graph subsystem (:mod:`repro.graph`)."""
