"""Smoke tests for the runnable examples.

Every example must at least compile and import cleanly; the fast ones
are executed end-to-end as subprocesses (the slower, generator-heavy
ones are exercised by the benchmark harness instead).
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

FAST_EXAMPLES = [
    "quickstart.py",
    "custom_importer.py",
    "engine_sweep.py",
    "streaming_ingest.py",
    "lsh_blocking.py",
    "serving_load.py",
    "tracing_pipeline.py",
    "graph_explore.py",
    "columnar_kernels.py",
    "disk_blocking.py",
    "telemetry_warehouse.py",
]


def test_examples_directory_is_populated():
    names = {path.name for path in ALL_EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize(
    "path", ALL_EXAMPLES, ids=[path.name for path in ALL_EXAMPLES]
)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must print their findings"
