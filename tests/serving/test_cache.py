"""Tests for the serving layer's read-through payload cache."""

import threading

import pytest

from repro.engine.cache import MISS, LruTier
from repro.serving.cache import MetricResultCache


class TestLruTier:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LruTier(0)

    def test_get_marks_recently_used(self):
        tier = LruTier(2)
        tier.put("a", 1)
        tier.put("b", 2)
        assert tier.get("a") == 1  # refresh "a"
        evicted = tier.put("c", 3)
        assert evicted == [("b", 2)]
        assert tier.get("b") is MISS
        assert tier.get("a") == 1

    def test_put_returns_evicted_entries_oldest_first(self):
        tier = LruTier(1)
        tier.put("a", 1)
        assert tier.put("b", 2) == [("a", 1)]
        assert len(tier) == 1

    def test_pop_and_contains(self):
        tier = LruTier(4)
        tier.put("a", 1)
        assert "a" in tier
        assert tier.pop("a") == 1
        assert tier.pop("a") is MISS
        assert "a" not in tier


class TestMetricResultCache:
    def test_miss_then_hit(self):
        cache = MetricResultCache(max_entries=4)
        assert cache.get("k") is MISS
        cache.put("k", {"value": 1}, tag="d")
        assert cache.get("k") == {"value": 1}
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["puts"] == 1
        assert stats["entries"] == 1

    def test_lru_eviction_updates_counters_and_tags(self):
        cache = MetricResultCache(max_entries=2)
        cache.put("a", 1, tag="d1")
        cache.put("b", 2, tag="d2")
        cache.put("c", 3, tag="d1")  # evicts "a"
        assert cache.get("a") is MISS
        assert cache.stats()["evictions"] == 1
        # the evicted key's tag entry is cleaned: invalidating d1 only
        # drops the surviving key
        assert cache.invalidate("d1") == 1
        assert cache.get("c") is MISS
        assert cache.get("b") == 2

    def test_invalidate_tag_drops_all_its_keys(self):
        cache = MetricResultCache(max_entries=8)
        cache.put("a", 1, tag="cora")
        cache.put("b", 2, tag="cora")
        cache.put("c", 3, tag="songs")
        assert cache.invalidate("cora") == 2
        assert cache.get("a") is MISS
        assert cache.get("b") is MISS
        assert cache.get("c") == 3
        assert cache.stats()["invalidations"] == 2
        assert cache.invalidate("cora") == 0  # idempotent

    def test_invalidate_key(self):
        cache = MetricResultCache(max_entries=4)
        cache.put("a", 1, tag="d")
        assert cache.invalidate_key("a") is True
        assert cache.invalidate_key("a") is False
        assert cache.get("a") is MISS
        assert cache.invalidate("d") == 0  # tag index was cleaned

    def test_retagging_a_key_moves_it(self):
        cache = MetricResultCache(max_entries=4)
        cache.put("a", 1, tag="old")
        cache.put("a", 2, tag="new")
        assert cache.invalidate("old") == 0
        assert cache.get("a") == 2
        assert cache.invalidate("new") == 1

    def test_clear(self):
        cache = MetricResultCache(max_entries=4)
        cache.put("a", 1, tag="d")
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get("a") is MISS

    def test_untagged_entries_survive_tag_invalidation(self):
        cache = MetricResultCache(max_entries=4)
        cache.put("a", 1)
        assert cache.invalidate("anything") == 0
        assert cache.get("a") == 1

    def test_concurrent_mixed_operations_stay_consistent(self):
        cache = MetricResultCache(max_entries=64)
        errors = []
        barrier = threading.Barrier(8)

        def worker(index: int) -> None:
            try:
                barrier.wait(timeout=10)
                for round_index in range(200):
                    key = f"k{round_index % 32}"
                    cache.put(key, index, tag=f"d{index % 2}")
                    cache.get(key)
                    if round_index % 50 == 0:
                        cache.invalidate(f"d{index % 2}")
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(index,)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        stats = cache.stats()
        assert stats["puts"] == 8 * 200
        assert stats["entries"] <= 64
