"""Tests for request coalescing (single-flight computations)."""

import threading

import pytest

from repro.serving.coalesce import RequestCoalescer


class TestRequestCoalescer:
    def test_single_caller_computes(self):
        coalescer = RequestCoalescer()
        assert coalescer.run("k", lambda: 42) == 42
        assert coalescer.stats() == {
            "leaders": 1,
            "followers": 0,
            "in_flight": 0,
        }

    def test_sequential_calls_each_compute(self):
        coalescer = RequestCoalescer()
        calls = []
        for index in range(3):
            coalescer.run("k", lambda index=index: calls.append(index))
        assert calls == [0, 1, 2]
        assert coalescer.leaders == 3
        assert coalescer.followers == 0

    def test_concurrent_duplicates_share_one_computation(self):
        coalescer = RequestCoalescer()
        release = threading.Event()
        followers_queued = threading.Event()
        computations = []
        results = []

        def compute():
            computations.append(1)
            # Hold the flight open until all followers have joined, so
            # the coalescing is deterministic rather than racy.
            assert release.wait(timeout=10)
            return "payload"

        def leader():
            results.append(coalescer.run("k", compute))

        def follower():
            results.append(
                coalescer.run("k", lambda: pytest.fail("follower computed"))
            )

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        # wait until the leader's flight is published
        for _ in range(1000):
            if coalescer.in_flight() == 1:
                break
            threading.Event().wait(0.001)
        follower_threads = [threading.Thread(target=follower) for _ in range(7)]
        for thread in follower_threads:
            thread.start()
        # followers are blocked on the flight, none computed anything
        for _ in range(1000):
            if coalescer.stats()["followers"] == 7:
                break
            threading.Event().wait(0.001)
        followers_queued.set()
        release.set()
        leader_thread.join(timeout=10)
        for thread in follower_threads:
            thread.join(timeout=10)
        assert results == ["payload"] * 8
        assert computations == [1]
        assert coalescer.stats() == {
            "leaders": 1,
            "followers": 7,
            "in_flight": 0,
        }

    def test_distinct_keys_do_not_coalesce(self):
        coalescer = RequestCoalescer()
        first_running = threading.Event()
        release = threading.Event()
        results = {}

        def slow():
            first_running.set()
            assert release.wait(timeout=10)
            return "slow"

        def run_slow():
            results["slow"] = coalescer.run("a", slow)

        thread = threading.Thread(target=run_slow)
        thread.start()
        assert first_running.wait(timeout=10)
        # a different key computes immediately, unaffected by "a"
        results["fast"] = coalescer.run("b", lambda: "fast")
        release.set()
        thread.join(timeout=10)
        assert results == {"slow": "slow", "fast": "fast"}
        assert coalescer.leaders == 2
        assert coalescer.followers == 0

    def test_leader_error_propagates_to_followers(self):
        coalescer = RequestCoalescer()
        release = threading.Event()
        outcomes = []

        def failing():
            assert release.wait(timeout=10)
            raise RuntimeError("boom")

        def leader():
            with pytest.raises(RuntimeError):
                coalescer.run("k", failing)
            outcomes.append("leader")

        def follower():
            with pytest.raises(RuntimeError):
                coalescer.run("k", lambda: "never")
            outcomes.append("follower")

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        for _ in range(1000):
            if coalescer.in_flight() == 1:
                break
            threading.Event().wait(0.001)
        follower_thread = threading.Thread(target=follower)
        follower_thread.start()
        for _ in range(1000):
            if coalescer.stats()["followers"] == 1:
                break
            threading.Event().wait(0.001)
        release.set()
        leader_thread.join(timeout=10)
        follower_thread.join(timeout=10)
        assert sorted(outcomes) == ["follower", "leader"]

    def test_failed_flight_does_not_poison_the_key(self):
        coalescer = RequestCoalescer()
        with pytest.raises(RuntimeError):
            coalescer.run("k", lambda: (_ for _ in ()).throw(RuntimeError("x")))
        assert coalescer.run("k", lambda: "recovered") == "recovered"
        assert coalescer.in_flight() == 0
