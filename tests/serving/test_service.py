"""Tests for the ServingLayer facade: read-through, coalescing, invalidation."""

import threading

import pytest

from repro.core import Experiment, GoldStandard
from repro.core.platform import FrostPlatform
from repro.serving import ServingLayer, platform_from_store
from repro.storage.database import FrostStore


@pytest.fixture
def platform(people_dataset, people_gold, people_experiment):
    platform = FrostPlatform()
    platform.add_dataset(people_dataset)
    platform.add_gold(people_dataset.name, people_gold)
    platform.add_experiment(people_dataset.name, people_experiment)
    return platform


@pytest.fixture
def serving(platform):
    return ServingLayer(platform, max_entries=32)


class TestReadThrough:
    def test_metrics_payload_matches_platform(self, serving, platform):
        payload = serving.metrics_payload("people", "people-gold", None, ["f1"])
        assert payload == {
            "gold": "people-gold",
            "metrics": platform.metrics_table(
                "people", "people-gold", None, ["f1"]
            ),
        }

    def test_second_identical_request_hits_the_cache(self, serving):
        first = serving.metrics_payload("people", "people-gold", None, None)
        second = serving.metrics_payload("people", "people-gold", None, None)
        assert first is second  # served from the cache, not recomputed
        stats = serving.stats()
        assert stats["requests"] == 2
        assert stats["computations"] == 1
        assert stats["cache"]["hits"] == 1

    def test_distinct_configs_compute_separately(self, serving):
        serving.diagram_payload("people", "people-run", "people-gold", 10)
        serving.diagram_payload("people", "people-run", "people-gold", 20)
        assert serving.stats()["computations"] == 2

    def test_all_served_kinds_cache(self, serving):
        serving.profile_payload("people")
        serving.profile_payload("people")
        serving.categorize_payload("people", "people-run", "people-gold", None)
        serving.categorize_payload("people", "people-run", "people-gold", None)
        serving.timeline_payload("people", "people-run", "people-gold", 1.0, 0.5)
        serving.timeline_payload("people", "people-run", "people-gold", 1.0, 0.5)
        serving.intersection_payload("people", ["people-run"], [])
        serving.intersection_payload("people", ["people-run"], [])
        stats = serving.stats()
        assert stats["computations"] == 4
        assert stats["cache"]["hits"] == 4

    def test_unknown_names_raise_before_caching(self, serving):
        with pytest.raises(KeyError):
            serving.metrics_payload("ghost", "people-gold", None, None)
        with pytest.raises(KeyError):
            serving.metrics_payload("people", "ghost", None, None)
        assert serving.stats()["computations"] == 0


class TestInvalidation:
    def test_registry_write_invalidates_served_payloads(self, serving, platform):
        before = serving.metrics_payload("people", "people-gold", None, None)
        assert set(before["metrics"]) == {"people-run"}
        platform.add_experiment(
            "people", Experiment([("p3", "p4", 0.9)], name="late-run")
        )
        after = serving.metrics_payload("people", "people-gold", None, None)
        assert set(after["metrics"]) == {"people-run", "late-run"}
        assert serving.stats()["cache"]["invalidations"] >= 1

    def test_write_to_another_dataset_keeps_entries(
        self, serving, platform, abcd_dataset, abcd_gold
    ):
        platform.add_dataset(abcd_dataset)
        serving.metrics_payload("people", "people-gold", None, None)
        platform.add_gold("abcd", abcd_gold)
        assert serving.stats()["cache"]["entries"] == 1
        serving.metrics_payload("people", "people-gold", None, None)
        assert serving.stats()["computations"] == 1  # still cached

    def test_new_gold_registration_invalidates(self, serving, platform):
        serving.metrics_payload("people", "people-gold", None, None)
        platform.add_gold(
            "people",
            GoldStandard.from_pairs([("p1", "p2")], name="gold-2"),
        )
        serving.metrics_payload("people", "people-gold", None, None)
        assert serving.stats()["computations"] == 2

    def test_explicit_invalidate(self, serving):
        serving.profile_payload("people")
        assert serving.invalidate("people") == 1
        serving.profile_payload("people")
        assert serving.stats()["computations"] == 2

    def test_dropped_serving_layers_detach_from_the_platform(
        self, platform, abcd_dataset
    ):
        import gc

        for _ in range(3):
            ServingLayer(platform, max_entries=4)  # abandoned immediately
        gc.collect()
        platform.add_dataset(abcd_dataset)  # notifies; prunes dead listeners
        assert len(platform._listeners) == 0


class TestCoalescing:
    def test_concurrent_identical_requests_compute_once(
        self, serving, platform, monkeypatch
    ):
        release = threading.Event()
        computations = []
        original = platform.metrics_table

        def slow_metrics_table(*args, **kwargs):
            computations.append(1)
            assert release.wait(timeout=10)
            return original(*args, **kwargs)

        monkeypatch.setattr(platform, "metrics_table", slow_metrics_table)
        results = []
        barrier = threading.Barrier(6)

        def client():
            barrier.wait(timeout=10)
            results.append(
                serving.metrics_payload("people", "people-gold", None, None)
            )

        threads = [threading.Thread(target=client) for _ in range(6)]
        for thread in threads:
            thread.start()
        # all six are either queued on the flight or inside compute
        for _ in range(1000):
            if serving.coalescer.stats()["followers"] >= 1:
                break
            threading.Event().wait(0.001)
        release.set()
        for thread in threads:
            thread.join(timeout=10)
        assert len(results) == 6
        assert all(result == results[0] for result in results)
        assert computations == [1]
        stats = serving.stats()
        assert stats["requests"] == 6
        assert stats["computations"] == 1


class TestBootstrap:
    def test_platform_from_store_round_trips(
        self, people_dataset, people_gold, people_experiment, tmp_path
    ):
        with FrostStore(tmp_path / "serve.db") as store:
            store.save_dataset(people_dataset)
            store.save_gold_standard(people_dataset.name, people_gold)
            store.save_experiment(people_dataset.name, people_experiment)
            platform = platform_from_store(store)
        assert platform.dataset_names() == ["people"]
        assert platform.experiment_names("people") == ["people-run"]
        assert platform.gold_names("people") == ["people-gold"]
        direct = FrostPlatform()
        direct.add_dataset(people_dataset)
        direct.add_gold(people_dataset.name, people_gold)
        direct.add_experiment(people_dataset.name, people_experiment)
        assert platform.metrics_table("people", "people-gold") == (
            direct.metrics_table("people", "people-gold")
        )

    def test_empty_store_yields_empty_platform(self, tmp_path):
        with FrostStore(tmp_path / "empty.db") as store:
            platform = platform_from_store(store)
        assert platform.dataset_names() == []
