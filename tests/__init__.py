"""Test package (unique basenames via package-qualified module names)."""
