"""Serial-vs-parallel equivalence of the comparison stage.

The sharded parallel path (:mod:`repro.matching.parallel`) promises
output *byte-identical* to the serial loop.  These tests pin that
promise across decision models (rule-based, learned, TF-IDF-backed
comparators), worker counts, shard counts, and the streaming ingest
path.
"""

from __future__ import annotations

import pytest

from repro.core.confusion import ConfusionMatrix
from repro.core.records import Dataset
from repro.datagen import make_person_benchmark
from repro.matching import (
    AttributeComparator,
    MatchingPipeline,
    RuleSet,
    SimilarityVector,
    attribute_threshold_rule,
    standard_blocking,
    weighted_average_rule,
)
from repro.matching.blocking import first_token_key
from repro.matching.ml import LogisticRegressionModel
from repro.matching.parallel import ParallelConfig
from repro.matching.similarity import TfIdfCosine
from repro.metrics.registry import default_registry
from repro.streaming import build_session

# Small enough to keep process-pool round trips fast, large enough to
# produce a few thousand candidate pairs and non-trivial clusters.
BENCHMARK = make_person_benchmark(300, seed=17)

# Engage sharding regardless of candidate volume (min_pairs=0); cover
# one worker (serial fast path), workers > shards, shards > workers,
# and a prime shard count that exercises uneven partitions.
PARALLEL_VARIANTS = [
    ParallelConfig(workers=1),
    ParallelConfig(workers=2, shards=1, min_pairs=0),
    ParallelConfig(workers=2, shards=7, min_pairs=0),
    ParallelConfig(workers=4, shards=13, min_pairs=0),
]


def _candidates(prepared):
    return standard_blocking(prepared, first_token_key("last_name"))


def _comparator() -> AttributeComparator:
    return AttributeComparator(
        {
            "first_name": "jaro_winkler",
            "last_name": "jaro_winkler",
            "street": "monge_elkan",
            "city": "jaro_winkler",
            "zip": "exact",
        }
    )


def _tfidf_comparator(dataset: Dataset) -> AttributeComparator:
    street = TfIdfCosine(
        record.value("street") or "" for record in dataset
    )
    return AttributeComparator(
        {
            "first_name": "jaro_winkler",
            "last_name": "jaro_winkler",
            "street": street,
            "zip": "exact",
        }
    )


def _rule_model() -> RuleSet:
    return RuleSet(
        [
            attribute_threshold_rule("last_name", 0.92),
            weighted_average_rule(
                {"first_name": 2.0, "last_name": 3.0, "city": 1.0},
                threshold=0.85,
            ),
        ]
    )


def _pipeline(comparator, decision_model, parallelism=None) -> MatchingPipeline:
    return MatchingPipeline(
        candidate_generator=_candidates,
        comparator=comparator,
        decision_model=decision_model,
        threshold=0.5,
        parallelism=parallelism,
        name="equivalence",
    )


def _fitted_logistic(dataset: Dataset) -> LogisticRegressionModel:
    comparator = _comparator()
    serial = _pipeline(comparator, lambda v: v.mean())
    prepared = serial.prepare(dataset)
    vectors = serial.compare_candidates(prepared, _candidates(prepared))
    gold_pairs = BENCHMARK.gold.pairs()
    labels = [vector.pair in gold_pairs for vector in vectors]
    model = LogisticRegressionModel(
        attributes=comparator.attributes, iterations=60, seed=5
    )
    model.fit(vectors, labels)
    return model


def _metrics(experiment):
    matrix = ConfusionMatrix.from_clusterings(
        experiment.clustering(),
        BENCHMARK.gold.clustering,
        BENCHMARK.dataset.total_pairs(),
    )
    return default_registry().evaluate(matrix, ["precision", "recall", "f1"])


def _assert_runs_identical(serial_run, parallel_run):
    assert parallel_run.vectors == serial_run.vectors
    assert parallel_run.scored_pairs == serial_run.scored_pairs
    assert set(parallel_run.experiment.clustering().clusters) == set(
        serial_run.experiment.clustering().clusters
    )
    assert _metrics(parallel_run.experiment) == _metrics(serial_run.experiment)


@pytest.mark.parametrize("parallelism", PARALLEL_VARIANTS[1:])
def test_rule_based_pipeline_equivalence(parallelism):
    comparator = _comparator()
    model = _rule_model()
    serial_run = _pipeline(comparator, model.score).run(BENCHMARK.dataset)
    parallel_run = _pipeline(comparator, model.score, parallelism).run(
        BENCHMARK.dataset
    )
    _assert_runs_identical(serial_run, parallel_run)


def test_ml_pipeline_equivalence():
    model = _fitted_logistic(BENCHMARK.dataset)
    comparator = _comparator()
    serial_run = _pipeline(comparator, model.score).run(BENCHMARK.dataset)
    parallel_run = _pipeline(
        comparator, model.score, ParallelConfig(workers=4, shards=9, min_pairs=0)
    ).run(BENCHMARK.dataset)
    _assert_runs_identical(serial_run, parallel_run)


def test_tfidf_comparator_equivalence():
    """A fitted (stateful, corpus-carrying) comparator survives the
    worker round-trip and scores identically."""
    comparator = _tfidf_comparator(BENCHMARK.dataset)
    serial_run = _pipeline(comparator, lambda v: v.mean()).run(BENCHMARK.dataset)
    parallel_run = _pipeline(
        comparator,
        lambda v: v.mean(),
        ParallelConfig(workers=2, shards=5, min_pairs=0),
    ).run(BENCHMARK.dataset)
    _assert_runs_identical(serial_run, parallel_run)


class _UnpicklableComparator:
    """Duck-typed comparator holding a closure — works serially, cannot
    cross a process boundary."""

    def __init__(self):
        self._measure = lambda a, b: 1.0 if a == b else 0.0

    def compare(self, first, second):
        from repro.core.pairs import make_pair
        from repro.matching.attribute_matching import SimilarityVector

        return SimilarityVector(
            pair=make_pair(first.record_id, second.record_id),
            values={
                "last_name": self._measure(
                    first.value("last_name"), second.value("last_name")
                )
            },
        )


def test_unpicklable_comparator_still_matches_serial():
    """A closure-carrying duck comparator must not fail a parallel run.

    When the comparator cannot be pickled to pool workers the executor
    degrades to its serial fallback (with a warning) instead of
    raising.  Either way: same output as ``workers=1``.
    """
    comparator = _UnpicklableComparator()
    serial_run = _pipeline(comparator, lambda v: v.mean()).run(BENCHMARK.dataset)
    parallel_run = _pipeline(
        comparator,
        lambda v: v.mean(),
        ParallelConfig(workers=2, shards=4, min_pairs=0),
    ).run(BENCHMARK.dataset)
    _assert_runs_identical(serial_run, parallel_run)


class _TaggedVector(SimilarityVector):
    """A SimilarityVector subclass a duck comparator might return."""


class _TaggingComparator:
    def compare(self, first, second):
        from repro.core.pairs import make_pair

        return _TaggedVector(
            pair=make_pair(first.record_id, second.record_id),
            values={"last_name": 1.0 if first.value("last_name")
                    == second.value("last_name") else 0.0},
        )


def test_packed_wire_format_preserves_vector_subclasses():
    """The compact shard wire format must never rebuild a duck
    comparator's vector subclass as the plain base class."""
    from repro.engine.executors import SerialExecutor
    from repro.matching.parallel import compare_pairs_sharded

    records = {r.record_id: r for r in BENCHMARK.dataset}
    pairs = [("p0-0", "p0-1"), ("p1-0", "p2-0"), ("p3-0", "p4-0")]
    pairs = [p for p in pairs if p[0] in records and p[1] in records]
    assert pairs, "fixture ids moved; update the test pairs"
    serial, _ = compare_pairs_sharded(records, pairs, _TaggingComparator())
    sharded, _ = compare_pairs_sharded(
        records,
        pairs,
        _TaggingComparator(),
        config=ParallelConfig(workers=2, shards=2, min_pairs=0),
        executor=SerialExecutor(),
    )
    assert sharded == serial
    assert all(type(v) is _TaggedVector for v in sharded)


def test_fingerprint_ignores_parallelism():
    """The engine cache must serve one result to all worker settings."""
    comparator = _comparator()
    model = _rule_model()
    fingerprints = {
        str(
            _pipeline(comparator, model.score, parallelism).config_fingerprint()
        )
        for parallelism in PARALLEL_VARIANTS
    }
    assert len(fingerprints) == 1


STREAM_CONFIG = {
    "key": {"kind": "first_token", "attribute": "last_name"},
    "similarities": {
        "first_name": "jaro_winkler",
        "last_name": "jaro_winkler",
        "street": "monge_elkan",
        "zip": "exact",
    },
    "threshold": 0.8,
}


@pytest.mark.parametrize(
    "parallelism",
    [
        {"workers": 2, "shards": 3, "min_pairs": 0},
        {"workers": 4, "min_pairs": 0},
    ],
)
def test_streaming_ingest_equivalence(parallelism):
    """Delta-pair scoring through the sharded path folds the same
    matches into the same clusters, batch by batch."""
    records = list(BENCHMARK.dataset)
    batches = [records[:120], records[120:200], records[200:]]

    serial = build_session(STREAM_CONFIG, name="serial")
    parallel = build_session(
        {**STREAM_CONFIG, "parallelism": parallelism}, name="parallel"
    )
    assert (
        parallel.status()["parallelism"]["workers"] == parallelism["workers"]
    )
    for batch in batches:
        serial_snapshot = serial.ingest(batch)
        parallel_snapshot = parallel.ingest(batch)
        assert parallel_snapshot == serial_snapshot
    assert set(parallel.clusters().clusters) == set(serial.clusters().clusters)
    serial_experiment = serial.experiment(name="stream")
    parallel_experiment = parallel.experiment(name="stream")
    assert parallel_experiment.matches == serial_experiment.matches
    assert _metrics(parallel_experiment) == _metrics(serial_experiment)
