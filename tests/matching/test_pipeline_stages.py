"""Per-stage evaluation of the matching pipeline (§1.2).

"Measuring the performance between these steps, as supported by Frost,
can provide useful insights for tweaking specific parts of the matching
solution and helps to find bottlenecks" — these tests exercise exactly
those inter-stage measurements: candidate-generation quality via
pair-based metrics, decision-model quality on the (not transitively
closed) scored pairs, and the quality deltas between stages.
"""

import pytest

from repro.core.confusion import ConfusionMatrix
from repro.datagen import make_person_benchmark
from repro.matching import (
    AttributeComparator,
    MatchingPipeline,
    WeightedAverageModel,
    first_token_key,
    full_pairs,
    sorted_neighborhood,
    standard_blocking,
)
from repro.matching.clustering_algorithms import CLUSTERING_ALGORITHMS
from repro.metrics.pairwise import (
    pairs_completeness,
    pairs_quality,
    precision,
    recall,
    reduction_ratio,
)


@pytest.fixture(scope="module")
def bench_data():
    return make_person_benchmark(250, seed=42)


@pytest.fixture(scope="module")
def pipeline():
    return MatchingPipeline(
        candidate_generator=lambda ds: standard_blocking(
            ds, first_token_key("last_name")
        ),
        comparator=AttributeComparator(
            {
                "first_name": "jaro_winkler",
                "last_name": "jaro_winkler",
                "city": "levenshtein",
                "zip": "exact",
            }
        ),
        decision_model=WeightedAverageModel(
            {"first_name": 2, "last_name": 2, "city": 1, "zip": 2}
        ),
        threshold=0.8,
        name="staged",
    )


@pytest.fixture(scope="module")
def run(pipeline, bench_data):
    return pipeline.run(bench_data.dataset)


class TestCandidateStage:
    def test_candidates_are_a_subset_of_all_pairs(self, run, bench_data):
        assert len(run.candidates) <= bench_data.dataset.total_pairs()

    def test_blocking_reduces_comparisons(self, run, bench_data):
        """Reduction ratio must be high: blocking is the point."""
        matrix = ConfusionMatrix.from_pair_sets(
            run.candidates,
            bench_data.gold.pairs(),
            bench_data.dataset.total_pairs(),
        )
        assert reduction_ratio(matrix) > 0.8

    def test_pairs_completeness_reasonable(self, run, bench_data):
        """Candidate generation must retain most true duplicates."""
        matrix = ConfusionMatrix.from_pair_sets(
            run.candidates,
            bench_data.gold.pairs(),
            bench_data.dataset.total_pairs(),
        )
        assert pairs_completeness(matrix) > 0.5

    def test_pairs_quality_between_zero_and_one(self, run, bench_data):
        matrix = ConfusionMatrix.from_pair_sets(
            run.candidates,
            bench_data.gold.pairs(),
            bench_data.dataset.total_pairs(),
        )
        assert 0.0 <= pairs_quality(matrix) <= 1.0

    def test_full_pairs_is_the_upper_bound(self, bench_data):
        candidates = full_pairs(bench_data.dataset)
        assert len(candidates) == bench_data.dataset.total_pairs()

    def test_sorted_neighborhood_alternative(self, bench_data):
        """Windowing is a drop-in replacement for blocking (§1.2)."""
        candidates = sorted_neighborhood(
            bench_data.dataset,
            key=lambda record: record.value("last_name") or "",
            window=5,
        )
        matrix = ConfusionMatrix.from_pair_sets(
            candidates, bench_data.gold.pairs(), bench_data.dataset.total_pairs()
        )
        assert pairs_completeness(matrix) > 0.3


class TestDecisionStage:
    def test_every_candidate_gets_a_score(self, run):
        assert len(run.scored_pairs) == len(run.candidates)
        assert all(0.0 <= sp.score <= 1.0 for sp in run.scored_pairs)

    def test_intermediate_metrics_without_closure(self, run, bench_data):
        """Pair-based metrics work on non-closed intermediate output."""
        accepted = {
            sp.pair for sp in run.scored_pairs if sp.score >= 0.8
        }
        matrix = ConfusionMatrix.from_pair_sets(
            accepted, bench_data.gold.pairs(), bench_data.dataset.total_pairs()
        )
        assert precision(matrix) > 0.5

    def test_decision_stage_bounded_by_candidates(self, run, bench_data):
        """The decision model cannot recover pairs blocking lost."""
        candidate_matrix = ConfusionMatrix.from_pair_sets(
            run.candidates, bench_data.gold.pairs(), bench_data.dataset.total_pairs()
        )
        final_matrix = ConfusionMatrix.from_clusterings(
            run.experiment.clustering(),
            bench_data.gold.clustering,
            bench_data.dataset.total_pairs(),
        )
        # closure can only add pairs among candidates' components; recall
        # of the decision stage alone never exceeds candidate completeness
        accepted = {sp.pair for sp in run.scored_pairs if sp.score >= 0.8}
        accepted_matrix = ConfusionMatrix.from_pair_sets(
            accepted, bench_data.gold.pairs(), bench_data.dataset.total_pairs()
        )
        assert recall(accepted_matrix) <= pairs_completeness(candidate_matrix)
        assert final_matrix.true_positives >= accepted_matrix.true_positives

    def test_stage_timings_recorded(self, run):
        expected = {"preparation", "candidates", "similarity", "decision", "clustering"}
        assert expected.issubset(run.stage_seconds)
        assert all(value >= 0.0 for value in run.stage_seconds.values())


class TestClusteringStageChoices:
    @pytest.mark.parametrize("algorithm", sorted(CLUSTERING_ALGORITHMS))
    def test_each_algorithm_plugs_in(self, bench_data, algorithm):
        pipeline = MatchingPipeline(
            candidate_generator=lambda ds: standard_blocking(
                ds, first_token_key("last_name")
            ),
            comparator=AttributeComparator(
                {"first_name": "jaro_winkler", "last_name": "jaro_winkler"}
            ),
            decision_model=WeightedAverageModel(
                {"first_name": 1, "last_name": 1}
            ),
            threshold=0.9,
            clustering=algorithm,
            name=f"clustered-{algorithm}",
        )
        run = pipeline.run(bench_data.dataset)
        # every algorithm yields a transitively closed experiment
        assert run.experiment.closure_distance() == 0

    def test_stricter_threshold_means_fewer_accepted_pairs(
        self, bench_data, pipeline
    ):
        lax = pipeline.scored_experiment(bench_data.dataset, keep_all=False)
        strict_pipeline = MatchingPipeline(
            candidate_generator=pipeline.candidate_generator,
            comparator=pipeline.comparator,
            decision_model=pipeline.decision_model,
            threshold=0.95,
            name="strict",
        )
        strict = strict_pipeline.scored_experiment(
            bench_data.dataset, keep_all=False
        )
        assert strict.pairs() <= lax.pairs()
