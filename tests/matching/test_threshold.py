"""Tests for threshold decision models and threshold search."""

import math

import pytest

from repro.core import compute_diagram_optimized
from repro.matching.attribute_matching import SimilarityVector
from repro.matching.threshold import WeightedAverageModel, best_threshold
from repro.metrics.pairwise import f1_score, precision


def vector(**values):
    return SimilarityVector(pair=("a", "b"), values=values)


class TestWeightedAverageModel:
    def test_weighted_mean(self):
        model = WeightedAverageModel({"x": 3.0, "y": 1.0})
        assert model.score(vector(x=1.0, y=0.0)) == pytest.approx(0.75)

    def test_missing_excluded_by_default(self):
        model = WeightedAverageModel({"x": 1.0, "y": 1.0})
        assert model.score(vector(x=0.8, y=None)) == pytest.approx(0.8)

    def test_missing_penalty(self):
        model = WeightedAverageModel({"x": 1.0, "y": 1.0}, missing_penalty=0.0)
        assert model.score(vector(x=0.8, y=None)) == pytest.approx(0.4)

    def test_all_missing_scores_zero(self):
        model = WeightedAverageModel({"x": 1.0})
        assert model.score(vector(x=None)) == 0.0

    def test_callable(self):
        model = WeightedAverageModel({"x": 1.0})
        assert model(vector(x=0.5)) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one attribute"):
            WeightedAverageModel({})
        with pytest.raises(ValueError, match="non-negative"):
            WeightedAverageModel({"x": -1.0})
        with pytest.raises(ValueError, match="positive"):
            WeightedAverageModel({"x": 0.0})


class TestBestThreshold:
    def test_finds_f1_optimum(self, abcd_dataset, abcd_gold, abcd_experiment):
        points = compute_diagram_optimized(
            abcd_dataset, abcd_experiment, abcd_gold, samples=4
        )
        threshold, value = best_threshold(points, f1_score)
        # only the full sweep (threshold 0.7) has any TP at all
        assert threshold == 0.7
        assert value == pytest.approx(2 * (2 / 6) * 1.0 / ((2 / 6) + 1.0))

    def test_tie_prefers_higher_threshold(self, abcd_dataset, abcd_gold, abcd_experiment):
        points = compute_diagram_optimized(
            abcd_dataset, abcd_experiment, abcd_gold, samples=4
        )
        threshold, value = best_threshold(points, precision)
        # precision is 1.0 (vacuously) at threshold inf
        assert math.isinf(threshold)
        assert value == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no diagram points"):
            best_threshold([], f1_score)
