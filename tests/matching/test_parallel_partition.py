"""Property-based tests for deterministic pair sharding.

The correctness of the parallel comparison path rests on two
partitioning invariants — every pair lands in *exactly one* shard, and
the shard union equals the input — plus determinism across calls and
processes.  Hypothesis searches for inputs that break them.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pairs import make_pair
from repro.matching.parallel import partition_pairs, shard_of

record_ids = st.text(
    alphabet=st.characters(codec="utf-8", categories=("L", "Nd", "P")),
    min_size=1,
    max_size=12,
)

pair_sets = st.sets(
    st.tuples(record_ids, record_ids)
    .filter(lambda ids: ids[0] != ids[1])
    .map(lambda ids: make_pair(*ids)),
    max_size=200,
)

shard_counts = st.integers(min_value=1, max_value=64)


@given(pairs=pair_sets, shards=shard_counts)
def test_every_pair_assigned_exactly_once(pairs, shards):
    partition = partition_pairs(sorted(pairs), shards)
    assert len(partition) == shards
    flattened = [pair for shard in partition for pair in shard]
    # union == input and no pair duplicated across shards
    assert len(flattened) == len(pairs)
    assert set(flattened) == pairs


@given(pairs=pair_sets, shards=shard_counts)
def test_shards_preserve_sorted_order(pairs, shards):
    partition = partition_pairs(sorted(pairs), shards)
    for shard in partition:
        assert shard == sorted(shard)


@given(pairs=pair_sets, shards=shard_counts)
@settings(max_examples=25)
def test_partition_is_deterministic(pairs, shards):
    ordered = sorted(pairs)
    assert partition_pairs(ordered, shards) == partition_pairs(ordered, shards)


@given(pair=st.tuples(record_ids, record_ids).filter(lambda p: p[0] != p[1]), shards=shard_counts)
def test_shard_of_in_range_and_stable(pair, shards):
    canonical = make_pair(*pair)
    index = shard_of(canonical, shards)
    assert 0 <= index < shards
    assert index == shard_of(canonical, shards)


def test_shard_of_is_process_stable():
    """The assignment must not depend on ``PYTHONHASHSEED`` — pin a few
    concrete values so a hash-function change cannot slip through."""
    assert shard_of(("a", "b"), 8) == shard_of(("a", "b"), 8)
    pinned = [
        shard_of(("r1", "r2"), 16),
        shard_of(("alice", "bob"), 16),
        shard_of(("x", "y"), 16),
    ]
    # crc32-derived, computed once and frozen; a change here means the
    # sharding function changed and cached shard layouts are invalid
    assert pinned == [15, 9, 12]


def test_partition_rejects_bad_shard_count():
    import pytest

    with pytest.raises(ValueError):
        partition_pairs([], 0)


@pytest.mark.parametrize(
    "document",
    [
        {"workers": "4"},
        {"workers": 2.5},
        {"workers": True},
        {"shards": "many"},
        {"shards": 3.0},
        {"min_pairs": "0"},
        {"min_pairs": None},
        {"wrkers": 2},
        "not-an-object",
    ],
)
def test_from_dict_rejects_malformed_values_with_value_error(document):
    """Configs arrive from JSON request bodies: anything malformed must
    raise ValueError (-> HTTP 400), never TypeError (-> HTTP 500), and
    never be accepted to crash a later ingest."""
    from repro.matching.parallel import ParallelConfig

    with pytest.raises(ValueError):
        ParallelConfig.from_dict(document)


def test_from_dict_accepts_valid_forms():
    from repro.matching.parallel import ParallelConfig

    assert ParallelConfig.from_dict(None) == ParallelConfig()
    config = ParallelConfig.from_dict(
        {"workers": 0, "shards": 16, "min_pairs": 0}
    )
    assert config.workers == 0 and config.shards == 16
    assert config.min_pairs == 0


def test_from_dict_shards_alone_means_all_cores():
    """{"shards": N} without workers must engage parallelism (workers=0
    = all cores), not silently stay serial — on every surface, not just
    the CLI."""
    from repro.matching.parallel import ParallelConfig

    config = ParallelConfig.from_dict({"shards": 16})
    assert config.workers == 0
    assert config.shards == 16
    # explicit workers always wins
    assert ParallelConfig.from_dict({"workers": 1, "shards": 16}).workers == 1
