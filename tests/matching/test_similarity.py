"""Tests for string similarity measures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import similarity as sim

words = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"), max_codepoint=127),
    max_size=20,
)


class TestLevenshtein:
    def test_distance_known_values(self):
        assert sim.levenshtein_distance("kitten", "sitting") == 3
        assert sim.levenshtein_distance("abc", "abc") == 0
        assert sim.levenshtein_distance("", "abc") == 3
        assert sim.levenshtein_distance("abc", "") == 3

    def test_similarity_normalized(self):
        assert sim.levenshtein("abc", "abc") == 1.0
        assert sim.levenshtein("abc", "abd") == pytest.approx(2 / 3)
        assert sim.levenshtein("", "") == 1.0

    @given(words, words)
    @settings(max_examples=80)
    def test_distance_symmetric(self, a, b):
        assert sim.levenshtein_distance(a, b) == sim.levenshtein_distance(b, a)

    @given(words, words)
    @settings(max_examples=80)
    def test_similarity_bounds(self, a, b):
        assert 0.0 <= sim.levenshtein(a, b) <= 1.0

    @given(words, words, words)
    @settings(max_examples=40)
    def test_triangle_inequality(self, a, b, c):
        assert sim.levenshtein_distance(a, c) <= (
            sim.levenshtein_distance(a, b) + sim.levenshtein_distance(b, c)
        )


class TestJaro:
    def test_identical(self):
        assert sim.jaro("martha", "martha") == 1.0

    def test_known_value(self):
        assert sim.jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_disjoint(self):
        assert sim.jaro("abc", "xyz") == 0.0

    def test_empty(self):
        assert sim.jaro("", "abc") == 0.0

    @given(words, words)
    @settings(max_examples=80)
    def test_symmetric_and_bounded(self, a, b):
        value = sim.jaro(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(sim.jaro(b, a))


class TestJaroWinkler:
    def test_prefix_boost(self):
        assert sim.jaro_winkler("prefix", "prefax") > sim.jaro("prefix", "prefax")

    def test_no_boost_below_07(self):
        base = sim.jaro("abcdef", "fedcba")
        if base <= 0.7:
            assert sim.jaro_winkler("abcdef", "fedcba") == base

    @given(words, words)
    @settings(max_examples=80)
    def test_bounds(self, a, b):
        assert 0.0 <= sim.jaro_winkler(a, b) <= 1.0


class TestTokenMeasures:
    def test_jaccard(self):
        assert sim.token_jaccard("red apple", "green apple") == pytest.approx(1 / 3)

    def test_jaccard_identical(self):
        assert sim.token_jaccard("a b c", "c b a") == 1.0

    def test_jaccard_empty(self):
        assert sim.token_jaccard("", "") == 1.0
        assert sim.token_jaccard("word", "") == 0.0

    def test_overlap_coefficient(self):
        assert sim.overlap_coefficient("a b", "a b c d") == 1.0

    def test_tokenize_lowercases_and_splits(self):
        assert sim.tokenize("Hello, World-2") == ["hello", "world", "2"]


class TestNgrams:
    def test_bigram_set(self):
        grams = sim.ngrams("ab", 2)
        assert grams == {"#a", "ab", "b#"}

    def test_invalid_n(self):
        with pytest.raises(ValueError, match="positive"):
            sim.ngrams("abc", 0)

    def test_ngram_jaccard_similar_strings(self):
        assert sim.ngram_jaccard("hello", "hallo") > sim.ngram_jaccard(
            "hello", "world"
        )

    @given(words, words)
    @settings(max_examples=60)
    def test_bounds(self, a, b):
        assert 0.0 <= sim.ngram_jaccard(a, b) <= 1.0


class TestMongeElkan:
    def test_token_reordering_robust(self):
        assert sim.monge_elkan("john smith", "smith john") == pytest.approx(1.0)

    def test_partial_tokens(self):
        value = sim.monge_elkan("john smith", "john smyth")
        assert 0.8 < value < 1.0

    def test_empty(self):
        assert sim.monge_elkan("", "") == 1.0
        assert sim.monge_elkan("word", "") == 0.0


class TestSoundex:
    def test_classic_codes(self):
        assert sim.soundex("Robert") == "R163"
        assert sim.soundex("Rupert") == "R163"
        assert sim.soundex("Ashcraft") == "A261"

    def test_similarity(self):
        assert sim.soundex_similarity("Robert", "Rupert") == 1.0
        assert sim.soundex_similarity("Robert", "Smith") == 0.0

    def test_non_alpha(self):
        assert sim.soundex("123") == "0000"
        assert sim.soundex("") == "0000"


class TestNumeric:
    def test_equal_numbers(self):
        assert sim.numeric_similarity("42", "42.0") == 1.0

    def test_within_tolerance(self):
        assert 0.0 < sim.numeric_similarity("100", "110") < 1.0

    def test_outside_tolerance(self):
        assert sim.numeric_similarity("100", "200") == 0.0

    def test_non_numeric_falls_back_to_exact(self):
        assert sim.numeric_similarity("abc", "abc") == 1.0
        assert sim.numeric_similarity("abc", "abd") == 0.0

    def test_zero(self):
        assert sim.numeric_similarity("0", "0") == 1.0


class TestTfIdfCosine:
    def test_rare_tokens_weigh_more(self):
        corpus = ["common alpha", "common beta", "common gamma", "rareword delta"]
        measure = sim.TfIdfCosine(corpus)
        assert measure("rareword x", "rareword y") > measure("common x", "common y")

    def test_identical_documents(self):
        measure = sim.TfIdfCosine(["a b c"])
        assert measure("a b c", "a b c") == pytest.approx(1.0)

    def test_disjoint_documents(self):
        measure = sim.TfIdfCosine(["a", "b"])
        assert measure("a", "b") == 0.0

    def test_empty_strings(self):
        measure = sim.TfIdfCosine([])
        assert measure("", "") == 1.0
        assert measure("word", "") == 0.0


class TestRegistry:
    def test_all_functions_bounded(self):
        for name, function in sim.SIMILARITY_FUNCTIONS.items():
            value = function("hello world", "hello word")
            assert 0.0 <= value <= 1.0, name

    def test_exact(self):
        assert sim.exact("a", "a") == 1.0
        assert sim.exact("a", "A") == 0.0


class TestNumericNonFinite:
    """Regression: non-finite parses must not produce NaN (ISSUE 8)."""

    @pytest.mark.parametrize(
        ("first", "second", "expected"),
        [
            ("nan", "nan", 1.0),        # same spelling: exact fallback
            ("nan", "NaN", 0.0),        # different spellings differ
            ("inf", "inf", 1.0),
            ("inf", "-inf", 0.0),
            ("Infinity", "inf", 0.0),   # both non-finite, unequal strings
            ("nan", "1.0", 0.0),        # non-finite vs finite
            ("1e400", "1e400", 1.0),    # overflow-to-inf parses
            ("1e400", "2e400", 0.0),
        ],
    )
    def test_non_finite_parses_fall_back_to_exact(self, first, second, expected):
        assert sim.numeric_similarity(first, second) == expected

    def test_never_nan_on_classic_poison_inputs(self):
        import math

        for first in ("nan", "inf", "-inf", "1e999", "3.5", "x"):
            for second in ("nan", "inf", "-inf", "1e999", "3.5", "x"):
                score = sim.numeric_similarity(first, second)
                assert not math.isnan(score), (first, second)
                assert 0.0 <= score <= 1.0


class TestLevenshteinBand:
    """The banded early exit the docstring promises (ISSUE 8)."""

    def test_exact_within_bound(self):
        assert sim.levenshtein_distance("kitten", "sitting", bound=3) == 3
        assert sim.levenshtein_distance("kitten", "sitting", bound=5) == 3

    def test_overshoot_is_bound_plus_one(self):
        assert sim.levenshtein_distance("kitten", "sitting", bound=2) == 3
        assert sim.levenshtein_distance("abcdef", "uvwxyz", bound=1) == 2

    def test_length_gap_early_exit(self):
        assert sim.levenshtein_distance("a", "abcdefgh", bound=3) == 4

    def test_zero_bound(self):
        assert sim.levenshtein_distance("same", "same", bound=0) == 0
        assert sim.levenshtein_distance("same", "sane", bound=0) == 1

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError, match="bound"):
            sim.levenshtein_distance("a", "b", bound=-1)

    def test_randomized_band_equals_full_dp(self):
        import random

        rng = random.Random(99)
        alphabet = "abcdefg"
        for _ in range(300):
            first = "".join(
                rng.choice(alphabet) for _ in range(rng.randint(0, 12))
            )
            second = "".join(
                rng.choice(alphabet) for _ in range(rng.randint(0, 12))
            )
            exact_distance = sim.levenshtein_distance(first, second)
            for bound in range(0, 14):
                banded = sim.levenshtein_distance(first, second, bound=bound)
                if exact_distance <= bound:
                    assert banded == exact_distance, (first, second, bound)
                else:
                    assert banded == bound + 1, (first, second, bound)


class TestJaroWinklerBoundary:
    """Winkler's boost applies only strictly above 0.7 (ISSUE 8 audit)."""

    def test_boost_applies_above_threshold(self):
        base = sim.jaro("dixon", "dicksonx")
        assert base > 0.7
        assert sim.jaro_winkler("dixon", "dicksonx") > base

    def test_no_boost_at_exactly_threshold(self, monkeypatch):
        # No short string pair lands on the exact double 0.7, so pin the
        # base measure to the boundary and check the comparison is strict.
        monkeypatch.setattr(sim, "jaro", lambda a, b: 0.7)
        assert sim.jaro_winkler("prefix-a", "prefix-b") == 0.7

    def test_boost_just_above_threshold(self, monkeypatch):
        import math

        above = math.nextafter(0.7, 1.0)
        monkeypatch.setattr(sim, "jaro", lambda a, b: above)
        assert sim.jaro_winkler("prefix-a", "prefix-b") > above

    def test_no_boost_without_common_prefix(self):
        base = sim.jaro("martha", "marhta")
        assert base > 0.7
        boosted = sim.jaro_winkler("martha", "marhta")
        assert boosted == base + 3 * 0.1 * (1.0 - base)


class TestSoundexPublishedTable:
    """NARA's published examples, table-driven (ISSUE 8 audit)."""

    @pytest.mark.parametrize(
        ("word", "code"),
        [
            ("Robert", "R163"),
            ("Rupert", "R163"),
            ("Ashcraft", "A261"),   # h is transparent: s/c collapse
            ("Ashcroft", "A261"),
            ("Tymczak", "T522"),    # vowels separate: z and k both kept
            ("Pfister", "P236"),    # second letter coded like the first
            ("Jackson", "J250"),
            ("Honeyman", "H555"),
            ("Washington", "W252"), # w transparent within the word
            ("Lee", "L000"),
            ("Gutierrez", "G362"),
            ("VanDeusen", "V532"),
        ],
    )
    def test_published_codes(self, word, code):
        assert sim.soundex(word) == code

    @pytest.mark.parametrize("value", ["123", "", "   ", "42nd", "#$%"])
    def test_non_alphabetic_leading_values_get_the_sentinel(self, value):
        assert sim.soundex(value) == sim.SOUNDEX_SENTINEL

    def test_punctuation_prefix_codes_the_first_word_token(self):
        # tokenization strips punctuation first: "#tag" encodes "tag"
        assert sim.soundex("#tag") == sim.soundex("tag")

    def test_sentinel_similarity_falls_back_to_exact(self):
        # two different non-encodable values are NOT phonetically equal
        assert sim.soundex_similarity("123", "999") == 0.0
        assert sim.soundex_similarity("123", "123") == 1.0
        assert sim.soundex_similarity("123", "Robert") == 0.0


class TestTfIdfClamp:
    def test_self_similarity_never_exceeds_one(self):
        # fl(sqrt(s))^2 < s can push the raw ratio one ulp above 1.0;
        # sweep many corpora to hit the rounding in both directions
        for seed in range(40):
            tokens = [f"t{seed}", f"u{seed}", "shared"]
            measure = sim.TfIdfCosine([" ".join(tokens), "shared other"])
            value = " ".join(tokens * (seed % 3 + 1))
            assert measure(value, value) <= 1.0
