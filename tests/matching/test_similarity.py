"""Tests for string similarity measures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import similarity as sim

words = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"), max_codepoint=127),
    max_size=20,
)


class TestLevenshtein:
    def test_distance_known_values(self):
        assert sim.levenshtein_distance("kitten", "sitting") == 3
        assert sim.levenshtein_distance("abc", "abc") == 0
        assert sim.levenshtein_distance("", "abc") == 3
        assert sim.levenshtein_distance("abc", "") == 3

    def test_similarity_normalized(self):
        assert sim.levenshtein("abc", "abc") == 1.0
        assert sim.levenshtein("abc", "abd") == pytest.approx(2 / 3)
        assert sim.levenshtein("", "") == 1.0

    @given(words, words)
    @settings(max_examples=80)
    def test_distance_symmetric(self, a, b):
        assert sim.levenshtein_distance(a, b) == sim.levenshtein_distance(b, a)

    @given(words, words)
    @settings(max_examples=80)
    def test_similarity_bounds(self, a, b):
        assert 0.0 <= sim.levenshtein(a, b) <= 1.0

    @given(words, words, words)
    @settings(max_examples=40)
    def test_triangle_inequality(self, a, b, c):
        assert sim.levenshtein_distance(a, c) <= (
            sim.levenshtein_distance(a, b) + sim.levenshtein_distance(b, c)
        )


class TestJaro:
    def test_identical(self):
        assert sim.jaro("martha", "martha") == 1.0

    def test_known_value(self):
        assert sim.jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_disjoint(self):
        assert sim.jaro("abc", "xyz") == 0.0

    def test_empty(self):
        assert sim.jaro("", "abc") == 0.0

    @given(words, words)
    @settings(max_examples=80)
    def test_symmetric_and_bounded(self, a, b):
        value = sim.jaro(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(sim.jaro(b, a))


class TestJaroWinkler:
    def test_prefix_boost(self):
        assert sim.jaro_winkler("prefix", "prefax") > sim.jaro("prefix", "prefax")

    def test_no_boost_below_07(self):
        base = sim.jaro("abcdef", "fedcba")
        if base <= 0.7:
            assert sim.jaro_winkler("abcdef", "fedcba") == base

    @given(words, words)
    @settings(max_examples=80)
    def test_bounds(self, a, b):
        assert 0.0 <= sim.jaro_winkler(a, b) <= 1.0


class TestTokenMeasures:
    def test_jaccard(self):
        assert sim.token_jaccard("red apple", "green apple") == pytest.approx(1 / 3)

    def test_jaccard_identical(self):
        assert sim.token_jaccard("a b c", "c b a") == 1.0

    def test_jaccard_empty(self):
        assert sim.token_jaccard("", "") == 1.0
        assert sim.token_jaccard("word", "") == 0.0

    def test_overlap_coefficient(self):
        assert sim.overlap_coefficient("a b", "a b c d") == 1.0

    def test_tokenize_lowercases_and_splits(self):
        assert sim.tokenize("Hello, World-2") == ["hello", "world", "2"]


class TestNgrams:
    def test_bigram_set(self):
        grams = sim.ngrams("ab", 2)
        assert grams == {"#a", "ab", "b#"}

    def test_invalid_n(self):
        with pytest.raises(ValueError, match="positive"):
            sim.ngrams("abc", 0)

    def test_ngram_jaccard_similar_strings(self):
        assert sim.ngram_jaccard("hello", "hallo") > sim.ngram_jaccard(
            "hello", "world"
        )

    @given(words, words)
    @settings(max_examples=60)
    def test_bounds(self, a, b):
        assert 0.0 <= sim.ngram_jaccard(a, b) <= 1.0


class TestMongeElkan:
    def test_token_reordering_robust(self):
        assert sim.monge_elkan("john smith", "smith john") == pytest.approx(1.0)

    def test_partial_tokens(self):
        value = sim.monge_elkan("john smith", "john smyth")
        assert 0.8 < value < 1.0

    def test_empty(self):
        assert sim.monge_elkan("", "") == 1.0
        assert sim.monge_elkan("word", "") == 0.0


class TestSoundex:
    def test_classic_codes(self):
        assert sim.soundex("Robert") == "R163"
        assert sim.soundex("Rupert") == "R163"
        assert sim.soundex("Ashcraft") == "A261"

    def test_similarity(self):
        assert sim.soundex_similarity("Robert", "Rupert") == 1.0
        assert sim.soundex_similarity("Robert", "Smith") == 0.0

    def test_non_alpha(self):
        assert sim.soundex("123") == "0000"
        assert sim.soundex("") == "0000"


class TestNumeric:
    def test_equal_numbers(self):
        assert sim.numeric_similarity("42", "42.0") == 1.0

    def test_within_tolerance(self):
        assert 0.0 < sim.numeric_similarity("100", "110") < 1.0

    def test_outside_tolerance(self):
        assert sim.numeric_similarity("100", "200") == 0.0

    def test_non_numeric_falls_back_to_exact(self):
        assert sim.numeric_similarity("abc", "abc") == 1.0
        assert sim.numeric_similarity("abc", "abd") == 0.0

    def test_zero(self):
        assert sim.numeric_similarity("0", "0") == 1.0


class TestTfIdfCosine:
    def test_rare_tokens_weigh_more(self):
        corpus = ["common alpha", "common beta", "common gamma", "rareword delta"]
        measure = sim.TfIdfCosine(corpus)
        assert measure("rareword x", "rareword y") > measure("common x", "common y")

    def test_identical_documents(self):
        measure = sim.TfIdfCosine(["a b c"])
        assert measure("a b c", "a b c") == pytest.approx(1.0)

    def test_disjoint_documents(self):
        measure = sim.TfIdfCosine(["a", "b"])
        assert measure("a", "b") == 0.0

    def test_empty_strings(self):
        measure = sim.TfIdfCosine([])
        assert measure("", "") == 1.0
        assert measure("word", "") == 0.0


class TestRegistry:
    def test_all_functions_bounded(self):
        for name, function in sim.SIMILARITY_FUNCTIONS.items():
            value = function("hello world", "hello word")
            assert 0.0 <= value <= 1.0, name

    def test_exact(self):
        assert sim.exact("a", "a") == 1.0
        assert sim.exact("a", "A") == 0.0
