"""Tests for the end-to-end matching pipeline (§1.2)."""

import pytest

from repro.core import ConfusionMatrix
from repro.core.records import Record
from repro.matching import (
    AttributeComparator,
    MatchingPipeline,
    WeightedAverageModel,
    full_pairs,
    lowercase_values,
    normalize_whitespace,
)
from repro.metrics.pairwise import f1_score


@pytest.fixture
def pipeline():
    comparator = AttributeComparator(
        {"first": "jaro_winkler", "last": "jaro_winkler", "zip": "exact"}
    )
    model = WeightedAverageModel({"first": 1.0, "last": 2.0, "zip": 2.0})
    return MatchingPipeline(
        candidate_generator=full_pairs,
        comparator=comparator,
        decision_model=model,
        threshold=0.85,
        name="test-run",
        solution="test-solution",
    )


class TestPreparers:
    def test_normalize_whitespace(self):
        record = Record("r", {"x": "  a   b  ", "y": None})
        cleaned = normalize_whitespace(record)
        assert cleaned.value("x") == "a b"
        assert cleaned.value("y") is None

    def test_lowercase_values(self):
        record = Record("r", {"x": "John SMITH"})
        assert lowercase_values(record).value("x") == "john smith"


class TestPipelineRun:
    def test_finds_obvious_duplicates(self, pipeline, people_dataset, people_gold):
        run = pipeline.run(people_dataset)
        assert ("p1", "p2") in run.experiment.pairs()
        assert ("p3", "p4") in run.experiment.pairs()

    def test_quality_on_people(self, pipeline, people_dataset, people_gold):
        run = pipeline.run(people_dataset)
        matrix = ConfusionMatrix.from_clusterings(
            run.experiment.clustering(),
            people_gold.clustering,
            people_dataset.total_pairs(),
        )
        assert f1_score(matrix) == 1.0

    def test_stage_outputs_exposed(self, pipeline, people_dataset):
        run = pipeline.run(people_dataset)
        assert len(run.candidates) == people_dataset.total_pairs()
        assert len(run.vectors) == len(run.candidates)
        assert len(run.scored_pairs) == len(run.candidates)
        assert set(run.stage_seconds) == {
            "preparation", "candidates", "similarity", "decision", "clustering",
        }

    def test_experiment_metadata(self, pipeline, people_dataset):
        run = pipeline.run(people_dataset)
        assert run.experiment.metadata["threshold"] == 0.85
        assert run.experiment.metadata["runtime_seconds"] >= 0
        assert run.experiment.solution == "test-solution"

    def test_clustering_added_pairs_flagged(self, people_dataset):
        """A chain accepted pairwise gets its closure pairs flagged."""
        comparator = AttributeComparator({"last": "jaro_winkler"})
        pipeline = MatchingPipeline(
            candidate_generator=full_pairs,
            comparator=comparator,
            decision_model=WeightedAverageModel({"last": 1.0}),
            threshold=0.8,
        )
        run = pipeline.run(people_dataset)
        closure_pairs = [
            m for m in run.experiment.matches if m.from_clustering
        ]
        for match in closure_pairs:
            assert match.score is None

    def test_fusion_enabled(self, pipeline, people_dataset):
        pipeline.fuse = True
        run = pipeline.run(people_dataset)
        assert run.fused is not None
        assert len(run.fused) < len(people_dataset)
        assert "fusion" in run.stage_seconds

    def test_unknown_clustering_rejected(self, pipeline):
        with pytest.raises(KeyError, match="unknown clustering"):
            MatchingPipeline(
                candidate_generator=full_pairs,
                comparator=pipeline.comparator,
                decision_model=pipeline.decision_model,
                clustering="nope",
            )


class TestScoredExperiment:
    def test_keeps_below_threshold_pairs(self, pipeline, people_dataset):
        scored = pipeline.scored_experiment(people_dataset)
        assert len(scored) == people_dataset.total_pairs()
        assert scored.has_scores()

    def test_keep_all_false_filters(self, pipeline, people_dataset):
        scored = pipeline.scored_experiment(people_dataset, keep_all=False)
        assert all(sp.score >= 0.85 for sp in scored.scored_pairs())
