"""Tests for candidate generation / blocking."""

import logging
import random

import pytest

from repro.core import Dataset, Record
from repro.matching import blocking


@pytest.fixture
def dataset():
    rows = [
        ("r1", "smith", "john"),
        ("r2", "smith", "jon"),
        ("r3", "smyth", "john"),
        ("r4", "jones", "mary"),
        ("r5", None, "mary"),
    ]
    return Dataset(
        [Record(rid, {"last": last, "first": first}) for rid, last, first in rows],
        name="blocking-test",
    )


class TestFullPairs:
    def test_quadratic_count(self, dataset):
        pairs = blocking.full_pairs(dataset)
        assert len(pairs) == 10  # C(5, 2)

    def test_pairs_canonical(self, dataset):
        for first, second in blocking.full_pairs(dataset):
            assert first < second


class TestStandardBlocking:
    def test_groups_by_key(self, dataset):
        pairs = blocking.standard_blocking(
            dataset, blocking.first_token_key("last")
        )
        assert ("r1", "r2") in pairs
        assert ("r1", "r3") not in pairs  # smith vs smyth

    def test_null_keys_excluded(self, dataset):
        pairs = blocking.standard_blocking(
            dataset, blocking.first_token_key("last")
        )
        assert not any("r5" in pair for pair in pairs)

    def test_soundex_key_bridges_typos(self, dataset):
        pairs = blocking.standard_blocking(dataset, blocking.soundex_key("last"))
        assert ("r1", "r3") in pairs  # smith ~ smyth phonetically

    def test_prefix_key(self, dataset):
        pairs = blocking.standard_blocking(dataset, blocking.prefix_key("last", 2))
        assert ("r1", "r2") in pairs
        assert ("r1", "r3") in pairs  # both 'sm'


class TestSortedNeighborhood:
    def test_window_pairs(self, dataset):
        pairs = blocking.sorted_neighborhood(
            dataset, blocking.first_token_key("last"), window=2
        )
        # sorted by last name: '', jones, smith, smith, smyth
        # adjacent pairs only
        assert len(pairs) == 4

    def test_larger_window_superset(self, dataset):
        small = blocking.sorted_neighborhood(
            dataset, blocking.first_token_key("last"), window=2
        )
        large = blocking.sorted_neighborhood(
            dataset, blocking.first_token_key("last"), window=4
        )
        assert small <= large

    def test_window_validation(self, dataset):
        with pytest.raises(ValueError, match="at least 2"):
            blocking.sorted_neighborhood(
                dataset, blocking.first_token_key("last"), window=1
            )

    def test_null_keys_participate(self, dataset):
        pairs = blocking.sorted_neighborhood(
            dataset, blocking.first_token_key("last"), window=5
        )
        assert any("r5" in pair for pair in pairs)

    def test_insertion_order_invariant(self):
        """Equal keys tie-break on record id, not insertion order.

        Regression: the sort used to order records with equal (or all-
        None) keys by their dataset position, so shuffling the input
        changed the window contents and thus the candidate set.
        """
        records = [
            Record(f"r{i:02d}", {"last": last})
            for i, last in enumerate(
                ["smith", "smith", "smith", None, None, "jones", "jones", "adams"]
            )
        ]
        key = blocking.first_token_key("last")
        reference = blocking.sorted_neighborhood(
            Dataset(records, name="ordered"), key, window=3
        )
        rng = random.Random(1234)
        for trial in range(5):
            shuffled = list(records)
            rng.shuffle(shuffled)
            permuted = blocking.sorted_neighborhood(
                Dataset(shuffled, name=f"shuffled-{trial}"), key, window=3
            )
            assert permuted == reference


class TestTokenBlocking:
    def test_shared_tokens_pair(self, dataset):
        pairs = blocking.token_blocking(dataset, attributes=["first"])
        assert ("r4", "r5") in pairs  # both 'mary'

    def test_min_token_length_filters(self, dataset):
        pairs = blocking.token_blocking(
            dataset, attributes=["first"], min_token_length=10
        )
        assert pairs == set()

    def test_block_purging(self):
        # 30 records sharing one token: block is purged at max size 10
        records = [Record(f"r{i}", {"t": "shared"}) for i in range(30)]
        dataset = Dataset(records)
        assert blocking.token_blocking(dataset, max_block_size=10) == set()
        assert len(blocking.token_blocking(dataset, max_block_size=None)) == 435

    def test_candidates_subset_of_full(self, dataset):
        full = blocking.full_pairs(dataset)
        for pairs in (
            blocking.standard_blocking(dataset, blocking.first_token_key("last")),
            blocking.sorted_neighborhood(
                dataset, blocking.first_token_key("last"), window=3
            ),
            blocking.token_blocking(dataset),
        ):
            assert pairs <= full

    def test_purge_emits_metrics_and_warning(self, caplog):
        from repro.telemetry.metrics import get_metrics

        blocks = get_metrics().counter("frost_blocking_purged_blocks_total", "")
        records = get_metrics().counter("frost_blocking_purged_records_total", "")
        dataset = Dataset(
            [Record(f"r{i}", {"t": "shared other"}) for i in range(12)]
        )
        before = (blocks.value, records.value)
        with caplog.at_level(logging.WARNING, logger="repro.matching.blocking"):
            blocking.token_blocking(dataset, max_block_size=5)
        # both token blocks ('shared', 'other') exceed the cap of 5
        assert blocks.value == before[0] + 2
        assert records.value == before[1] + 24
        warnings = [
            r for r in caplog.records if "purged" in r.getMessage()
        ]
        assert len(warnings) == 1  # one warning per run, not per block
        assert "token_blocking" in warnings[0].getMessage()

    def test_no_purge_no_warning(self, dataset, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.matching.blocking"):
            blocking.token_blocking(dataset, max_block_size=None)
            blocking.token_blocking(dataset, max_block_size=100)
        assert not [r for r in caplog.records if "purged" in r.getMessage()]


class TestWhitespaceKeys:
    """Whitespace-only values must behave exactly like ``None`` values.

    Regression: ``first_token_key`` returned ``None`` for ``"   "`` (no
    tokens) but ``prefix_key`` returned ``"   "`` and ``soundex_key``
    crashed ahead — records with blank values silently formed a shared
    junk block instead of being excluded.
    """

    @pytest.fixture
    def blank_dataset(self):
        return Dataset(
            [
                Record("b1", {"last": "   "}),
                Record("b2", {"last": "\t\n"}),
                Record("b3", {"last": ""}),
                Record("b4", {"last": None}),
                Record("b5", {"last": "smith"}),
            ]
        )

    @pytest.mark.parametrize(
        "make_key",
        [
            lambda: blocking.first_token_key("last"),
            lambda: blocking.prefix_key("last", 3),
            lambda: blocking.soundex_key("last"),
        ],
        ids=["first_token", "prefix", "soundex"],
    )
    def test_blank_values_yield_none(self, blank_dataset, make_key):
        key = make_key()
        for record in blank_dataset:
            if record.record_id == "b5":
                assert key(record) is not None
            else:
                assert key(record) is None

    def test_blank_records_never_pair(self, blank_dataset):
        for make_key in (
            blocking.first_token_key,
            lambda a: blocking.prefix_key(a, 2),
            blocking.soundex_key,
        ):
            pairs = blocking.standard_blocking(blank_dataset, make_key("last"))
            assert pairs == set()


class TestBlockingEdgeCases:
    def test_empty_dataset(self):
        empty = Dataset([])
        key = blocking.first_token_key("last")
        assert blocking.standard_blocking(empty, key) == set()
        assert blocking.sorted_neighborhood(empty, key, window=3) == set()
        assert blocking.token_blocking(empty) == set()
        assert blocking.full_pairs(empty) == set()

    def test_all_none_keys(self):
        dataset = Dataset([Record(f"r{i}", {"last": None}) for i in range(4)])
        key = blocking.first_token_key("last")
        assert blocking.standard_blocking(dataset, key) == set()
        # sorted neighborhood keeps None-key records (they sort first
        # under ""), so the window still pairs them
        assert blocking.sorted_neighborhood(
            dataset, key, window=4
        ) == blocking.full_pairs(dataset)

    def test_window_larger_than_dataset(self):
        dataset = Dataset([Record(f"r{i}", {"last": "x"}) for i in range(3)])
        pairs = blocking.sorted_neighborhood(
            dataset, blocking.first_token_key("last"), window=50
        )
        assert pairs == blocking.full_pairs(dataset)

    def test_max_block_size_none_keeps_everything(self):
        records = [Record(f"r{i}", {"t": "shared"}) for i in range(30)]
        dataset = Dataset(records)
        uncapped = blocking.token_blocking(dataset, max_block_size=None)
        assert uncapped == blocking.full_pairs(dataset)
