"""Tests for candidate generation / blocking."""

import pytest

from repro.core import Dataset, Record
from repro.matching import blocking


@pytest.fixture
def dataset():
    rows = [
        ("r1", "smith", "john"),
        ("r2", "smith", "jon"),
        ("r3", "smyth", "john"),
        ("r4", "jones", "mary"),
        ("r5", None, "mary"),
    ]
    return Dataset(
        [Record(rid, {"last": last, "first": first}) for rid, last, first in rows],
        name="blocking-test",
    )


class TestFullPairs:
    def test_quadratic_count(self, dataset):
        pairs = blocking.full_pairs(dataset)
        assert len(pairs) == 10  # C(5, 2)

    def test_pairs_canonical(self, dataset):
        for first, second in blocking.full_pairs(dataset):
            assert first < second


class TestStandardBlocking:
    def test_groups_by_key(self, dataset):
        pairs = blocking.standard_blocking(
            dataset, blocking.first_token_key("last")
        )
        assert ("r1", "r2") in pairs
        assert ("r1", "r3") not in pairs  # smith vs smyth

    def test_null_keys_excluded(self, dataset):
        pairs = blocking.standard_blocking(
            dataset, blocking.first_token_key("last")
        )
        assert not any("r5" in pair for pair in pairs)

    def test_soundex_key_bridges_typos(self, dataset):
        pairs = blocking.standard_blocking(dataset, blocking.soundex_key("last"))
        assert ("r1", "r3") in pairs  # smith ~ smyth phonetically

    def test_prefix_key(self, dataset):
        pairs = blocking.standard_blocking(dataset, blocking.prefix_key("last", 2))
        assert ("r1", "r2") in pairs
        assert ("r1", "r3") in pairs  # both 'sm'


class TestSortedNeighborhood:
    def test_window_pairs(self, dataset):
        pairs = blocking.sorted_neighborhood(
            dataset, blocking.first_token_key("last"), window=2
        )
        # sorted by last name: '', jones, smith, smith, smyth
        # adjacent pairs only
        assert len(pairs) == 4

    def test_larger_window_superset(self, dataset):
        small = blocking.sorted_neighborhood(
            dataset, blocking.first_token_key("last"), window=2
        )
        large = blocking.sorted_neighborhood(
            dataset, blocking.first_token_key("last"), window=4
        )
        assert small <= large

    def test_window_validation(self, dataset):
        with pytest.raises(ValueError, match="at least 2"):
            blocking.sorted_neighborhood(
                dataset, blocking.first_token_key("last"), window=1
            )

    def test_null_keys_participate(self, dataset):
        pairs = blocking.sorted_neighborhood(
            dataset, blocking.first_token_key("last"), window=5
        )
        assert any("r5" in pair for pair in pairs)


class TestTokenBlocking:
    def test_shared_tokens_pair(self, dataset):
        pairs = blocking.token_blocking(dataset, attributes=["first"])
        assert ("r4", "r5") in pairs  # both 'mary'

    def test_min_token_length_filters(self, dataset):
        pairs = blocking.token_blocking(
            dataset, attributes=["first"], min_token_length=10
        )
        assert pairs == set()

    def test_block_purging(self):
        # 30 records sharing one token: block is purged at max size 10
        records = [Record(f"r{i}", {"t": "shared"}) for i in range(30)]
        dataset = Dataset(records)
        assert blocking.token_blocking(dataset, max_block_size=10) == set()
        assert len(blocking.token_blocking(dataset, max_block_size=None)) == 435

    def test_candidates_subset_of_full(self, dataset):
        full = blocking.full_pairs(dataset)
        for pairs in (
            blocking.standard_blocking(dataset, blocking.first_token_key("last")),
            blocking.sorted_neighborhood(
                dataset, blocking.first_token_key("last"), window=3
            ),
            blocking.token_blocking(dataset),
        ):
            assert pairs <= full
