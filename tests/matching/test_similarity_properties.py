"""Property suite: scalar measures and batch kernels (ISSUE 8).

Every similarity score — scalar or kernel — must be finite and in
``[0, 1]``; symmetric measures must be bitwise symmetric; and the batch
kernels must reproduce the scalar measures bit for bit on arbitrary
inputs, not just the curated tables of the unit tests.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import ColumnarStore, compare_block, kernel_for, plan_for
from repro.core.records import Record
from repro.matching.attribute_matching import AttributeComparator
from repro.matching.similarity import (
    SIMILARITY_FUNCTIONS,
    TfIdfCosine,
    levenshtein_distance,
    numeric_similarity,
)

# Text mixing word characters, whitespace, punctuation, and the numeric
# edge-case spellings float() accepts ("nan", "inf", "-Infinity", ...).
plain_text = st.text(
    alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd", "Po", "Zs"), max_codepoint=383
    ),
    max_size=24,
)
numericish = st.sampled_from([
    "nan", "NaN", "inf", "-inf", "Infinity", "-Infinity", "1e400", "-1e400",
    "0", "-0", "0.0", "12.5", "1_000", "  7  ",
])
values = plain_text | numericish


@pytest.mark.parametrize("name", sorted(SIMILARITY_FUNCTIONS))
@given(first=values, second=values)
@settings(max_examples=60, deadline=None)
def test_scores_finite_and_bounded(name, first, second):
    score = SIMILARITY_FUNCTIONS[name](first, second)
    assert math.isfinite(score)
    assert 0.0 <= score <= 1.0


@pytest.mark.parametrize("name", sorted(SIMILARITY_FUNCTIONS))
@given(first=values, second=values)
@settings(max_examples=60, deadline=None)
def test_scores_bitwise_symmetric(name, first, second):
    """All built-in measures are symmetric — to the bit, not approx."""
    function = SIMILARITY_FUNCTIONS[name]
    forward = function(first, second)
    backward = function(second, first)
    assert repr(forward) == repr(backward)


@given(first=values, second=values)
@settings(max_examples=60, deadline=None)
def test_tfidf_cosine_bounded_and_approximately_symmetric(first, second):
    measure = TfIdfCosine([first, second, "shared corpus tokens"])
    forward = measure(first, second)
    backward = measure(second, first)
    assert math.isfinite(forward)
    assert 0.0 <= forward <= 1.0
    # the dot product iterates the left vector, so the summation order
    # differs between directions — equality holds only to the last ulp
    assert forward == pytest.approx(backward, abs=1e-12)


@given(first=values, second=values)
@settings(max_examples=120, deadline=None)
def test_numeric_similarity_never_nan(first, second):
    """The acceptance property: numeric_similarity is provably NaN-free."""
    score = numeric_similarity(first, second)
    assert not math.isnan(score)
    assert math.isfinite(score)
    assert 0.0 <= score <= 1.0


def _reference_distance(first, second):
    """Textbook full-matrix Levenshtein, the banded DP's oracle."""
    rows = len(first) + 1
    cols = len(second) + 1
    table = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        table[i][0] = i
    for j in range(cols):
        table[0][j] = j
    for i in range(1, rows):
        for j in range(1, cols):
            cost = 0 if first[i - 1] == second[j - 1] else 1
            table[i][j] = min(
                table[i - 1][j] + 1,
                table[i][j - 1] + 1,
                table[i - 1][j - 1] + cost,
            )
    return table[-1][-1]


@given(
    first=st.text(alphabet="abcde", max_size=14),
    second=st.text(alphabet="abcde", max_size=14),
    bound=st.integers(min_value=0, max_value=16) | st.none(),
)
@settings(max_examples=200, deadline=None)
def test_banded_levenshtein_equals_unbanded(first, second, bound):
    exact_distance = _reference_distance(first, second)
    banded = levenshtein_distance(first, second, bound=bound)
    if bound is None or exact_distance <= bound:
        assert banded == exact_distance
    else:
        assert banded == bound + 1


@pytest.mark.parametrize("name", sorted(SIMILARITY_FUNCTIONS))
@given(pool=st.lists(values, min_size=2, max_size=8, unique=True))
@settings(max_examples=40, deadline=None)
def test_kernels_equal_scalar_on_arbitrary_values(name, pool):
    """Kernel scores == scalar scores, bit for bit, on random pools."""
    function = SIMILARITY_FUNCTIONS[name]
    kernel = kernel_for(function)
    records = {
        f"r{i}": Record(record_id=f"r{i}", values={"a": value})
        for i, value in enumerate(pool)
    }
    store = ColumnarStore.from_records(records, ["a"])
    vids = np.arange(1, store.distinct_values + 1, dtype=np.int64)
    grid_a, grid_b = np.meshgrid(vids, vids, indexing="ij")
    scores = kernel.unique_scores(store, grid_a.ravel(), grid_b.ravel())
    for vid_a, vid_b, score in zip(
        grid_a.ravel().tolist(), grid_b.ravel().tolist(), scores.tolist()
    ):
        expected = function(store.value_of(vid_a), store.value_of(vid_b))
        assert repr(score) == repr(expected), (
            name,
            store.value_of(vid_a),
            store.value_of(vid_b),
        )


@given(pool=st.lists(values, min_size=3, max_size=10, unique=True))
@settings(max_examples=30, deadline=None)
def test_compare_block_equals_scalar_compare(pool):
    """End-to-end block engine == AttributeComparator.compare, bitwise."""
    comparator = AttributeComparator({
        "a": "jaro_winkler",
        "b": "token_jaccard",
        "c": "numeric",
    })
    records = {
        f"r{i:02d}": Record(
            record_id=f"r{i:02d}",
            values={
                "a": pool[i % len(pool)],
                "b": pool[(i + 1) % len(pool)],
                "c": pool[(i * 2) % len(pool)],
            },
        )
        for i in range(len(pool))
    }
    store = ColumnarStore.from_records(records, comparator.attributes)
    ids = sorted(records)
    pairs = [
        (ids[i], ids[j])
        for i in range(len(ids))
        for j in range(i + 1, len(ids))
    ]
    block = compare_block(store, pairs, plan_for(comparator))
    for vector, pair in zip(block, pairs):
        expected = comparator.compare(records[pair[0]], records[pair[1]])
        assert vector.pair == expected.pair
        for attribute in expected.values:
            left = expected.values[attribute]
            right = vector.values[attribute]
            assert repr(left) == repr(right), (attribute, pair)
