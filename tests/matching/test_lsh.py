"""Tests for MinHash-LSH approximate blocking (config, signatures, batch)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.pairs import make_pair
from repro.core.records import Dataset, Record
from repro.matching.blocking import full_pairs
from repro.matching.lsh import (
    LshBlocking,
    LshConfig,
    MinHasher,
    lsh_blocking,
    record_tokens,
    token_hash,
)

SRC = Path(__file__).resolve().parents[2] / "src"


def person(record_id, name, city=None):
    return Record(record_id, {"name": name, "city": city})


class TestLshConfig:
    def test_rows_derived_from_bands(self):
        config = LshConfig(num_perm=128, bands=32)
        assert config.rows == 4
        assert LshConfig(num_perm=96, bands=32).rows == 3

    def test_explicit_consistent_rows_accepted(self):
        assert LshConfig(num_perm=128, bands=32, rows=4).rows == 4

    def test_json_round_trip(self):
        config = LshConfig(
            num_perm=64, bands=16, seed=9, attributes=("name",),
            min_token_length=3, shingle_size=None, max_block_size=50,
        )
        document = config.as_dict()
        json.dumps(document)  # must be JSON-serializable as-is
        assert LshConfig.from_dict(document) == config

    def test_from_dict_defaults(self):
        assert LshConfig.from_dict(None) == LshConfig()
        assert LshConfig.from_dict({}) == LshConfig()

    @pytest.mark.parametrize(
        "document",
        [
            "not-an-object",
            {"num_perm": "128"},
            {"num_perm": True},
            {"num_perm": 1},
            {"bands": 0},
            {"bands": 2.5},
            {"num_perm": 100, "bands": 30},        # bands must divide num_perm
            {"num_perm": 128, "bands": 32, "rows": 5},  # inconsistent rows
            {"seed": 1.5},
            {"min_token_length": 0},
            {"shingle_size": 1},
            {"max_block_size": 0},
            {"attributes": "name"},
            {"attributes": []},
            {"attributes": [1]},
            {"num_perms": 128},                    # unknown key
        ],
    )
    def test_from_dict_rejects_malformed_values_with_value_error(self, document):
        """LSH configs arrive from JSON request bodies: anything
        malformed must raise ValueError (-> HTTP 400), never TypeError
        (-> HTTP 500)."""
        with pytest.raises(ValueError):
            LshConfig.from_dict(document)

    def test_threshold_estimate_moves_with_banding(self):
        recall_heavy = LshConfig(num_perm=128, bands=64)
        precision_heavy = LshConfig(num_perm=128, bands=16)
        assert 0.0 < recall_heavy.threshold_estimate()
        assert (
            recall_heavy.threshold_estimate()
            < LshConfig().threshold_estimate()
            < precision_heavy.threshold_estimate()
            < 1.0
        )


class TestRecordTokens:
    def test_shingles_are_boundary_padded(self):
        tokens = record_tokens(person("a", "smith", None))
        assert "^sm" in tokens and "th$" in tokens and "mit" in tokens

    def test_word_tokens_without_shingling(self):
        tokens = record_tokens(person("a", "alpha beta"), shingle_size=None)
        assert tokens == frozenset({"alpha", "beta"})

    def test_attribute_restriction_and_min_length(self):
        record = person("a", "x ab", "city")
        tokens = record_tokens(
            record, attributes=["name"], min_token_length=2, shingle_size=None
        )
        assert tokens == frozenset({"ab"})  # 'x' too short, 'city' ignored

    def test_empty_values_yield_empty_set(self):
        assert record_tokens(person("a", None, None)) == frozenset()


class TestMinHasher:
    def test_identical_token_sets_share_signatures_and_keys(self):
        hasher = MinHasher()
        tokens = frozenset({"alpha", "beta", "gamma"})
        assert hasher.signature(tokens) == hasher.signature(set(tokens))
        assert hasher.band_keys(tokens) == hasher.band_keys(tokens)

    def test_empty_token_set_has_no_signature_or_keys(self):
        hasher = MinHasher()
        assert hasher.signature(frozenset()) is None
        assert hasher.band_keys(frozenset()) == []

    def test_signature_length_and_band_count(self):
        config = LshConfig(num_perm=64, bands=16)
        hasher = MinHasher(config)
        signature = hasher.signature({"alpha"})
        assert len(signature) == 64
        assert len(hasher.band_keys({"alpha"})) == 16

    def test_same_seed_agrees_across_instances(self):
        tokens = frozenset({"alpha", "beta"})
        assert MinHasher().signature(tokens) == MinHasher().signature(tokens)

    def test_different_seeds_permute_differently(self):
        tokens = frozenset({"alpha", "beta", "gamma", "delta"})
        first = MinHasher(LshConfig(seed=1)).signature(tokens)
        second = MinHasher(LshConfig(seed=2)).signature(tokens)
        assert first != second

    def test_signature_agreement_tracks_jaccard(self):
        """Slot agreement estimates Jaccard similarity: for two sets at
        J=2/3 the agreement must land well away from both extremes.
        Deterministic — the seed is fixed."""
        hasher = MinHasher(LshConfig(num_perm=128))
        base = frozenset(f"token{i}" for i in range(12))
        similar = frozenset(sorted(base)[:8]) | {
            "other1", "other2", "other3", "other4"
        }
        first = hasher.signature(base)
        second = hasher.signature(similar)
        agreement = sum(a == b for a, b in zip(first, second)) / 128
        assert 0.25 < agreement < 0.85


class TestLshBlocking:
    def test_exact_duplicates_are_always_candidates(self):
        dataset = Dataset(
            [person("a", "john smith", "berlin"),
             person("b", "john smith", "berlin"),
             person("c", "completely unrelated", "tokyo")],
            name="d",
        )
        candidates = lsh_blocking(dataset)
        assert ("a", "b") in candidates

    def test_near_duplicates_survive_a_typo(self):
        dataset = Dataset(
            [person("a", "jonathan smithers", "berlin"),
             person("b", "jonathan smithers", "berlim"),  # typo
             person("c", "xqz vwk", "pqr")],
            name="d",
        )
        assert ("a", "b") in lsh_blocking(dataset)

    def test_tokenless_records_never_become_candidates(self):
        dataset = Dataset(
            [person("a", None, None), person("b", None, None)], name="d"
        )
        assert lsh_blocking(dataset) == set()

    def test_candidates_are_canonical_and_subset_of_full_pairs(self):
        records = [
            person(f"r{i}", name)
            for i, name in enumerate(
                ["alpha beta", "alpha beta", "gamma delta", "gamma delte"]
            )
        ]
        dataset = Dataset(records, name="d")
        candidates = lsh_blocking(dataset)
        assert candidates <= full_pairs(dataset)
        assert all(make_pair(*pair) == pair for pair in candidates)

    def test_blocking_is_deterministic_across_calls(self):
        records = [
            person(f"r{i}", f"name{i % 3} shared tokens here")
            for i in range(30)
        ]
        dataset = Dataset(records, name="d")
        assert lsh_blocking(dataset) == lsh_blocking(dataset)

    def test_max_block_size_purges_oversized_buckets(self):
        # ten identical records: every bucket holds all ten
        records = [person(f"r{i}", "same name tokens") for i in range(10)]
        dataset = Dataset(records, name="d")
        assert len(lsh_blocking(dataset)) == 45
        capped = lsh_blocking(dataset, LshConfig(max_block_size=5))
        assert capped == set()

    def test_config_fingerprints_distinguish_configs(self):
        default = LshBlocking()
        other = LshBlocking(LshConfig(num_perm=128, bands=16))
        assert default.config_fingerprint() != other.config_fingerprint()
        assert default.config_fingerprint() == LshBlocking().config_fingerprint()


_SEED_SCRIPT = """
import json
from repro.core.records import Dataset, Record
from repro.matching.lsh import LshConfig, MinHasher, lsh_blocking, token_hash

hasher = MinHasher(LshConfig())
tokens = frozenset(["alpha", "beta", "gamma", "centauri"])
dataset = Dataset(
    [
        Record("r1", {"name": "alpha centauri system", "zip": "12"}),
        Record("r2", {"name": "alpha centauri systm", "zip": "12"}),
        Record("r3", {"name": "beta pictoris", "zip": "99"}),
        Record("r4", {"name": "beta pictoris b", "zip": "99"}),
    ],
    name="stars",
)
print(json.dumps({
    "token_hash": token_hash("alpha"),
    "signature": hasher.signature(tokens)[:8],
    "band_keys": hasher.band_keys(tokens)[:4],
    "candidates": sorted(lsh_blocking(dataset)),
}))
"""


def _run_with_hash_seed(seed: str) -> str:
    environment = dict(os.environ)
    environment["PYTHONHASHSEED"] = seed
    environment["PYTHONPATH"] = str(SRC)
    completed = subprocess.run(
        [sys.executable, "-c", _SEED_SCRIPT],
        capture_output=True,
        text=True,
        timeout=120,
        env=environment,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_signatures_are_hash_seed_independent():
    """Signatures, band keys, and candidate sets must not depend on
    ``PYTHONHASHSEED`` — they feed stored experiments and cache keys."""
    first = _run_with_hash_seed("0")
    second = _run_with_hash_seed("424242")
    assert first == second
    payload = json.loads(first)
    assert payload["candidates"], "the pinned corpus must emit candidates"
