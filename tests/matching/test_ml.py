"""Tests for the learned decision models."""

import random

import numpy as np
import pytest

from repro.matching.attribute_matching import SimilarityVector
from repro.matching.ml import LogisticRegressionModel, NaiveBayesModel


def make_training_data(n=200, seed=0):
    """Separable data: duplicates have high name & zip similarity."""
    rng = random.Random(seed)
    vectors, labels = [], []
    for index in range(n):
        duplicate = rng.random() < 0.3
        if duplicate:
            name = rng.uniform(0.75, 1.0)
            zip_sim = rng.uniform(0.8, 1.0)
        else:
            name = rng.uniform(0.0, 0.55)
            zip_sim = rng.uniform(0.0, 0.6)
        noise = rng.random()  # uninformative attribute
        vectors.append(
            SimilarityVector(
                pair=(f"a{index}", f"b{index}"),
                values={"name": name, "zip": zip_sim, "noise": noise},
            )
        )
        labels.append(duplicate)
    return vectors, labels


ATTRIBUTES = ["name", "zip", "noise"]


class TestLogisticRegression:
    def test_learns_separable_data(self):
        vectors, labels = make_training_data()
        model = LogisticRegressionModel(ATTRIBUTES).fit(vectors, labels)
        scores = model.score_many(vectors)
        predictions = scores >= 0.5
        accuracy = float(np.mean(predictions == np.asarray(labels)))
        assert accuracy > 0.95

    def test_score_single_matches_batch(self):
        vectors, labels = make_training_data(50)
        model = LogisticRegressionModel(ATTRIBUTES).fit(vectors, labels)
        assert model.score(vectors[0]) == pytest.approx(
            float(model.score_many(vectors)[0])
        )

    def test_scores_in_unit_interval(self):
        vectors, labels = make_training_data(80)
        model = LogisticRegressionModel(ATTRIBUTES).fit(vectors, labels)
        scores = model.score_many(vectors)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_informative_attributes_get_larger_weights(self):
        vectors, labels = make_training_data(400)
        model = LogisticRegressionModel(ATTRIBUTES, iterations=800).fit(
            vectors, labels
        )
        weights = model.attribute_weights()
        assert abs(weights["name"]) > abs(weights["noise"])

    def test_unfitted_raises(self):
        model = LogisticRegressionModel(ATTRIBUTES)
        with pytest.raises(RuntimeError, match="not fitted"):
            model.score_many([])

    def test_mismatched_lengths_rejected(self):
        vectors, labels = make_training_data(10)
        with pytest.raises(ValueError, match="labels"):
            LogisticRegressionModel(ATTRIBUTES).fit(vectors, labels[:-1])

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            LogisticRegressionModel(ATTRIBUTES).fit([], [])

    def test_no_attributes_rejected(self):
        with pytest.raises(ValueError, match="at least one attribute"):
            LogisticRegressionModel([])

    def test_handles_missing_values(self):
        vectors, labels = make_training_data(100)
        # null out 'zip' on half the vectors
        patched = [
            SimilarityVector(
                pair=v.pair,
                values={**v.values, "zip": None if i % 2 else v.values["zip"]},
            )
            for i, v in enumerate(vectors)
        ]
        model = LogisticRegressionModel(ATTRIBUTES).fit(patched, labels)
        scores = model.score_many(patched)
        assert np.all(np.isfinite(scores))

    def test_deterministic_given_seed(self):
        vectors, labels = make_training_data(60)
        scores_a = (
            LogisticRegressionModel(ATTRIBUTES, seed=7)
            .fit(vectors, labels)
            .score_many(vectors)
        )
        scores_b = (
            LogisticRegressionModel(ATTRIBUTES, seed=7)
            .fit(vectors, labels)
            .score_many(vectors)
        )
        assert np.allclose(scores_a, scores_b)


class TestNaiveBayes:
    def test_learns_separable_data(self):
        vectors, labels = make_training_data()
        model = NaiveBayesModel(ATTRIBUTES).fit(vectors, labels)
        scores = model.score_many(vectors)
        predictions = scores >= 0.5
        accuracy = float(np.mean(predictions == np.asarray(labels)))
        assert accuracy > 0.9

    def test_single_class_training(self):
        vectors, labels = make_training_data(30)
        all_negative = [False] * len(vectors)
        model = NaiveBayesModel(ATTRIBUTES).fit(vectors, all_negative)
        scores = model.score_many(vectors)
        assert np.all(scores < 0.5)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            NaiveBayesModel(ATTRIBUTES).score_many([])

    def test_scores_bounded(self):
        vectors, labels = make_training_data(80)
        model = NaiveBayesModel(ATTRIBUTES).fit(vectors, labels)
        scores = model.score_many(vectors)
        assert np.all((scores >= 0) & (scores <= 1))
