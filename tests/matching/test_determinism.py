"""Cross-process determinism of the matching pipeline.

Runs with identical inputs must produce byte-identical stored
experiments and cache digests, regardless of Python's randomized string
hashing — the blockers emit pairs in sorted order and the pipeline
scores candidates sorted, so nothing downstream depends on set
iteration order.  These tests execute the same tiny pipeline in
subprocesses under different ``PYTHONHASHSEED`` values and compare the
content fingerprints.
"""

import os
import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src"

_SCRIPT = """
import json
from repro.core.records import Dataset, Record
from repro.engine.jobs import experiment_fingerprint, job_cache_key
from repro.matching.attribute_matching import AttributeComparator
from repro.matching.blocking import standard_blocking, token_blocking, first_token_key
from repro.matching.pipeline import MatchingPipeline

rows = [
    ("r1", "alpha centauri system", "12"),
    ("r2", "alpha centauri systm", "12"),
    ("r3", "beta pictoris", "99"),
    ("r4", "beta pictoris b", "99"),
    ("r5", "gamma draconis", "50"),
    ("r6", "alpha draconis", "50"),
]
dataset = Dataset(
    [Record(r, {"name": n, "zip": z}) for r, n, z in rows], name="stars"
)

def block(ds):
    return token_blocking(ds, min_token_length=3) | standard_blocking(
        ds, first_token_key("name")
    )

pipeline = MatchingPipeline(
    candidate_generator=block,
    comparator=AttributeComparator({"name": "token_jaccard", "zip": "exact"}),
    decision_model=lambda v: v.mean(),
    threshold=0.6,
)
run = pipeline.run(dataset)
print(json.dumps({
    "experiment": experiment_fingerprint(run.experiment),
    "cache_key": job_cache_key("candidates", sorted(run.candidates)),
    "matches": [[m.pair[0], m.pair[1], m.score] for m in run.experiment],
}))
"""


def _run_with_hash_seed(seed: str) -> str:
    environment = dict(os.environ)
    environment["PYTHONHASHSEED"] = seed
    environment["PYTHONPATH"] = str(SRC)
    completed = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        timeout=120,
        env=environment,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_pipeline_output_is_hash_seed_independent():
    """Two runs under different hash seeds agree byte for byte."""
    first = _run_with_hash_seed("0")
    second = _run_with_hash_seed("424242")
    assert first == second
