"""Tests for record fusion (pipeline step 6)."""

import pytest

from repro.core import Clustering, Dataset, Record
from repro.matching.fusion import (
    concat_distinct,
    first_non_null,
    fuse_cluster,
    fuse_dataset,
    longest_value,
    most_frequent_value,
    numeric_mean,
)


class TestStrategies:
    def test_longest(self):
        assert longest_value(["ab", "abcd", "abc"]) == "abcd"

    def test_longest_tie_deterministic(self):
        assert longest_value(["bb", "aa"]) == longest_value(["aa", "bb"])

    def test_most_frequent(self):
        assert most_frequent_value(["x", "y", "x"]) == "x"

    def test_most_frequent_tie_lexicographic(self):
        assert most_frequent_value(["b", "a"]) == "a"

    def test_first(self):
        assert first_non_null(["z", "a"]) == "z"

    def test_concat_distinct_preserves_order(self):
        assert concat_distinct(["b", "a", "b"]) == "b | a"

    def test_numeric_mean(self):
        assert numeric_mean(["10", "20"]) == "15"
        assert numeric_mean(["1", "2"]) == "1.5"

    def test_numeric_mean_non_numeric_fallback(self):
        assert numeric_mean(["x", "x", "y"]) == "x"


class TestFuseCluster:
    def test_default_strategy(self):
        fused = fuse_cluster(
            [
                Record("r2", {"name": "jo", "city": "salem"}),
                Record("r1", {"name": "john", "city": None}),
            ]
        )
        assert fused.value("name") == "john"
        assert fused.value("city") == "salem"
        assert fused.record_id == "r1"  # smallest id

    def test_per_attribute_strategy(self):
        fused = fuse_cluster(
            [
                Record("a", {"price": "10", "name": "x"}),
                Record("b", {"price": "30", "name": "xy"}),
            ],
            strategies={"price": "numeric_mean"},
        )
        assert fused.value("price") == "20"
        assert fused.value("name") == "xy"

    def test_all_null_stays_null(self):
        fused = fuse_cluster(
            [Record("a", {"x": None}), Record("b", {"x": None})]
        )
        assert fused.is_null("x")

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            fuse_cluster([])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(KeyError, match="unknown fusion strategy"):
            fuse_cluster([Record("a", {"x": "1"})], default="nope")

    def test_explicit_fused_id(self):
        fused = fuse_cluster([Record("z", {"x": "1"})], fused_id="merged-1")
        assert fused.record_id == "merged-1"


class TestFuseDataset:
    def test_cluster_collapses_to_one_record(self, people_dataset):
        clustering = Clustering([["p1", "p2"]])
        fused = fuse_dataset(people_dataset, clustering)
        assert len(fused) == 5
        assert "p1" in fused
        assert "p2" not in fused

    def test_unclustered_records_pass_through(self, people_dataset):
        clustering = Clustering([["p1", "p2"]])
        fused = fuse_dataset(people_dataset, clustering)
        assert fused["p6"].value("first") == "robert"

    def test_fills_nulls_from_cluster_members(self, people_dataset):
        clustering = Clustering([["p3", "p4"]])
        fused = fuse_dataset(people_dataset, clustering)
        # p3 has no zip; p4 provides 99999
        assert fused["p3"].value("zip") == "99999"

    def test_schema_preserved(self, people_dataset):
        fused = fuse_dataset(people_dataset, Clustering([["p1", "p2"]]))
        assert fused.attributes == people_dataset.attributes
