"""Tests for duplicate clustering algorithms (pipeline step 5)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pairs import ScoredPair
from repro.matching.clustering_algorithms import (
    CLUSTERING_ALGORITHMS,
    center_clustering,
    connected_components,
    greedy_clique_clustering,
    markov_clustering,
    merge_center_clustering,
)


def scored(*triples):
    return [ScoredPair.of(a, b, score) for a, b, score in triples]


CHAIN = scored(("a", "b", 0.9), ("b", "c", 0.8), ("c", "d", 0.7))
TRIANGLE = scored(("a", "b", 0.9), ("b", "c", 0.8), ("a", "c", 0.85))


class TestConnectedComponents:
    def test_chain_becomes_one_cluster(self):
        clustering = connected_components(CHAIN)
        assert clustering.same_cluster("a", "d")

    def test_empty(self):
        assert len(connected_components([])) == 0

    def test_empty_clustering_has_no_pairs(self):
        clustering = connected_components([])
        assert clustering.pairs() == set()
        assert list(clustering.clusters) == []

    def test_duplicate_pairs_collapse(self):
        """The same match reported twice must not distort the clusters."""
        clustering = connected_components(
            scored(("a", "b", 0.9), ("a", "b", 0.7), ("b", "a", 0.8))
        )
        assert len(clustering) == 1
        assert clustering.pairs() == {("a", "b")}

    def test_self_pairs_become_singletons(self):
        """A degenerate self-link yields a singleton, not a crash.

        ``ScoredPair.of`` rejects self-pairs, but clusterings are also
        built from imported experiments where such rows can slip in —
        ``Clustering.from_pairs`` must tolerate them.
        """
        from repro.core.clustering import Clustering

        clustering = Clustering.from_pairs([("a", "a"), ("b", "c")])
        assert clustering.same_cluster("b", "c")
        assert not clustering.same_cluster("a", "b")
        assert ("a",) in set(clustering.clusters)

    def test_order_invariance(self):
        """Pair order never changes the resulting partition."""
        shuffled = list(CHAIN)
        random.Random(7).shuffle(shuffled)
        assert set(connected_components(shuffled).clusters) == set(
            connected_components(CHAIN).clusters
        )


class TestCenterClustering:
    def test_triangle_single_cluster(self):
        clustering = center_clustering(TRIANGLE)
        assert clustering.same_cluster("a", "b")

    def test_chain_is_broken_at_centers(self):
        """Center clustering does not chain: d can only join an existing
        center, and c is a member (not a center) when {c,d} arrives."""
        clustering = center_clustering(CHAIN)
        assert clustering.same_cluster("a", "b")
        assert not clustering.same_cluster("a", "d")

    def test_star_joins_center(self):
        star = scored(("hub", "x", 0.9), ("hub", "y", 0.8), ("hub", "z", 0.7))
        clustering = center_clustering(star)
        assert clustering.same_cluster("x", "z")


class TestMergeCenterClustering:
    def test_merges_via_shared_record(self):
        pairs = scored(
            ("a", "b", 0.95), ("c", "d", 0.9), ("b", "c", 0.85)
        )
        merge_center = merge_center_clustering(pairs)
        plain_center = center_clustering(pairs)
        # merge-center merges clusters when their centers get linked
        assert merge_center.pair_count() >= plain_center.pair_count()

    def test_empty(self):
        assert len(merge_center_clustering([])) == 0


class TestGreedyClique:
    def test_triangle_accepted(self):
        clustering = greedy_clique_clustering(TRIANGLE)
        assert clustering.same_cluster("a", "c")

    def test_chain_rejected(self):
        """A chain is not a clique: a-c edge is missing, so the merge
        into one cluster must be refused."""
        clustering = greedy_clique_clustering(CHAIN)
        assert not clustering.same_cluster("a", "c")

    def test_every_cluster_is_a_clique(self):
        rng = random.Random(3)
        ids = [f"r{i}" for i in range(12)]
        pairs = []
        seen = set()
        for _ in range(25):
            a, b = rng.sample(ids, 2)
            key = tuple(sorted((a, b)))
            if key not in seen:
                seen.add(key)
                pairs.append(ScoredPair.of(a, b, rng.random()))
        clustering = greedy_clique_clustering(pairs)
        match_set = {sp.pair for sp in pairs}
        for cluster in clustering.clusters:
            members = sorted(cluster)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    assert (members[i], members[j]) in match_set


class TestMarkovClustering:
    def test_two_dense_groups_separated_by_weak_link(self):
        pairs = scored(
            ("a", "b", 0.95), ("b", "c", 0.9), ("a", "c", 0.92),
            ("x", "y", 0.93), ("y", "z", 0.91), ("x", "z", 0.94),
            ("c", "x", 0.15),  # weak bridge
        )
        clustering = markov_clustering(pairs)
        assert clustering.same_cluster("a", "b")
        assert clustering.same_cluster("x", "y")
        assert not clustering.same_cluster("a", "x")

    def test_empty(self):
        assert len(markov_clustering([])) == 0

    def test_single_pair(self):
        clustering = markov_clustering(scored(("a", "b", 0.9)))
        assert clustering.same_cluster("a", "b")

    def test_every_record_appears_exactly_once(self):
        pairs = TRIANGLE + scored(("d", "e", 0.5))
        clustering = markov_clustering(pairs)
        seen = [record for cluster in clustering.clusters for record in cluster]
        assert sorted(seen) == sorted(set(seen))
        assert set(seen) == {"a", "b", "c", "d", "e"}


@st.composite
def random_scored_pairs(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    ids = [f"r{i}" for i in range(n)]
    count = draw(st.integers(min_value=0, max_value=20))
    rng = random.Random(draw(st.integers(min_value=0, max_value=9999)))
    pairs = {}
    for _ in range(count):
        a, b = rng.sample(ids, 2)
        pairs[tuple(sorted((a, b)))] = rng.random()
    return [ScoredPair.of(a, b, s) for (a, b), s in pairs.items()]


class TestCommonInvariants:
    @given(random_scored_pairs())
    @settings(max_examples=30, deadline=None)
    def test_all_algorithms_produce_disjoint_clusterings(self, pairs):
        matched_records = {record for sp in pairs for record in sp.pair}
        for name, algorithm in CLUSTERING_ALGORITHMS.items():
            clustering = algorithm(pairs)
            seen: set[str] = set()
            for cluster in clustering.clusters:
                for record in cluster:
                    assert record not in seen, name
                    seen.add(record)
            # no algorithm invents records
            assert seen <= matched_records, name

    @given(random_scored_pairs())
    @settings(max_examples=30, deadline=None)
    def test_clusterings_are_subsets_of_components(self, pairs):
        """No algorithm links records across connected components."""
        components = connected_components(pairs)
        for name, algorithm in CLUSTERING_ALGORITHMS.items():
            if name == "connected_components":
                continue
            clustering = algorithm(pairs)
            assert clustering.pairs() <= components.pairs(), name
