"""Tests for similarity vectors and attribute comparators."""

import pytest

from repro.core import Dataset, Record
from repro.matching.attribute_matching import (
    AttributeComparator,
    SimilarityVector,
    compare_pairs,
)


@pytest.fixture
def records():
    return (
        Record("r1", {"name": "john smith", "zip": "12345", "city": None}),
        Record("r2", {"name": "jon smith", "zip": "12345", "city": "salem"}),
    )


class TestComparator:
    def test_builtin_by_name(self, records):
        comparator = AttributeComparator({"zip": "exact"})
        vector = comparator.compare(*records)
        assert vector.values["zip"] == 1.0

    def test_custom_callable(self, records):
        comparator = AttributeComparator({"name": lambda a, b: 0.42})
        assert comparator.compare(*records).values["name"] == 0.42

    def test_null_yields_none(self, records):
        comparator = AttributeComparator({"city": "exact"})
        assert comparator.compare(*records).values["city"] is None

    def test_unknown_builtin_rejected(self):
        with pytest.raises(KeyError, match="unknown similarity"):
            AttributeComparator({"name": "nope"})

    def test_empty_config_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            AttributeComparator({})

    def test_pair_is_canonical(self, records):
        comparator = AttributeComparator({"zip": "exact"})
        vector = comparator.compare(records[1], records[0])
        assert vector.pair == ("r1", "r2")


class TestSimilarityVector:
    def test_dense_with_missing(self):
        vector = SimilarityVector(
            pair=("a", "b"), values={"x": 0.5, "y": None}
        )
        assert vector.dense(["x", "y"]) == [0.5, 0.0]
        assert vector.dense(["x", "y"], missing=-1.0) == [0.5, -1.0]

    def test_dense_respects_order(self):
        vector = SimilarityVector(pair=("a", "b"), values={"x": 0.1, "y": 0.9})
        assert vector.dense(["y", "x"]) == [0.9, 0.1]

    def test_mean_excludes_missing(self):
        vector = SimilarityVector(
            pair=("a", "b"), values={"x": 0.4, "y": None, "z": 0.8}
        )
        assert vector.mean() == pytest.approx(0.6)

    def test_mean_all_missing(self):
        vector = SimilarityVector(pair=("a", "b"), values={"x": None})
        assert vector.mean() == 0.0


class TestComparePairs:
    def test_deterministic_order(self):
        dataset = Dataset(
            [Record(f"r{i}", {"v": str(i)}) for i in range(3)]
        )
        comparator = AttributeComparator({"v": "exact"})
        vectors = compare_pairs(
            dataset, {("r2", "r0"), ("r0", "r1")}, comparator
        )
        assert [v.pair for v in vectors] == [("r0", "r1"), ("r0", "r2")]
