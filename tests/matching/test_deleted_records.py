"""Regression: records deleted between blocking and scoring.

Candidate generation and comparison may be separated by arbitrary time
(engine job graphs run them as distinct jobs; streaming sessions score
against a live registry).  A record deleted in between must not crash
the comparison stage with ``KeyError`` — its pairs are skipped with a
warning and every other pair is scored normally.
"""

from __future__ import annotations

import logging

import pytest

from repro.core.records import Record
from repro.matching import AttributeComparator, MatchingPipeline
from repro.matching.parallel import (
    ParallelConfig,
    compare_pairs_sharded,
    resolve_candidates,
)


class _Registry:
    """Dict-backed record lookup, like the streaming prepared view."""

    def __init__(self, records):
        self._records = {record.record_id: record for record in records}

    def delete(self, record_id):
        del self._records[record_id]

    def __getitem__(self, record_id):
        return self._records[record_id]


RECORDS = [
    Record("r1", {"name": "alice smith"}),
    Record("r2", {"name": "alice smyth"}),
    Record("r3", {"name": "bob jones"}),
    Record("r4", {"name": "bob jonas"}),
]
CANDIDATES = {("r1", "r2"), ("r1", "r3"), ("r2", "r4"), ("r3", "r4")}


def _pipeline(parallelism=None) -> MatchingPipeline:
    return MatchingPipeline(
        candidate_generator=lambda dataset: set(CANDIDATES),
        comparator=AttributeComparator({"name": "jaro_winkler"}),
        decision_model=lambda vector: vector.mean(),
        parallelism=parallelism,
    )


def test_resolve_candidates_reports_missing():
    registry = _Registry(RECORDS)
    registry.delete("r2")
    ordered, resolved, missing = resolve_candidates(registry, CANDIDATES)
    assert missing == ["r2"]
    assert ordered == [("r1", "r3"), ("r3", "r4")]
    assert set(resolved) == {"r1", "r3", "r4"}


@pytest.mark.parametrize(
    "parallelism",
    [None, ParallelConfig(workers=2, shards=3, min_pairs=0)],
    ids=["serial", "sharded"],
)
def test_compare_candidates_skips_deleted_records(parallelism, caplog):
    registry = _Registry(RECORDS)
    registry.delete("r2")
    pipeline = _pipeline(parallelism)
    with caplog.at_level(logging.WARNING, logger="repro.matching.pipeline"):
        vectors = pipeline.compare_candidates(registry, CANDIDATES)
    assert [vector.pair for vector in vectors] == [("r1", "r3"), ("r3", "r4")]
    assert any("r2" in message for message in caplog.messages)
    assert any("deleted between" in message for message in caplog.messages)


def test_compare_candidates_intact_registry_does_not_warn(caplog):
    pipeline = _pipeline()
    with caplog.at_level(logging.WARNING, logger="repro.matching.pipeline"):
        vectors = pipeline.compare_candidates(_Registry(RECORDS), CANDIDATES)
    assert len(vectors) == len(CANDIDATES)
    assert not caplog.messages


def test_sharded_and_serial_agree_after_deletion():
    registry = _Registry(RECORDS)
    registry.delete("r4")
    serial, missing_serial = compare_pairs_sharded(
        registry,
        CANDIDATES,
        AttributeComparator({"name": "jaro_winkler"}),
    )
    sharded, missing_sharded = compare_pairs_sharded(
        registry,
        CANDIDATES,
        AttributeComparator({"name": "jaro_winkler"}),
        config=ParallelConfig(workers=2, shards=2, min_pairs=0),
    )
    assert sharded == serial
    assert missing_sharded == missing_serial == ["r4"]
