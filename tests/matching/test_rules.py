"""Tests for rule-based decision models."""

import pytest

from repro.matching.attribute_matching import SimilarityVector
from repro.matching.rules import (
    RuleSet,
    attribute_threshold_rule,
    weighted_average_rule,
)


def vector(**values):
    return SimilarityVector(pair=("a", "b"), values=values)


class TestAttributeThresholdRule:
    def test_fires_above_threshold(self):
        rule = attribute_threshold_rule("name", 0.8)
        assert rule.fires(vector(name=0.9))
        assert rule.fires(vector(name=0.8))
        assert not rule.fires(vector(name=0.7))

    def test_missing_never_fires(self):
        rule = attribute_threshold_rule("name", 0.1)
        assert not rule.fires(vector(name=None))
        assert not rule.fires(vector(other=0.9))

    def test_default_name(self):
        assert attribute_threshold_rule("name", 0.8).name == "name>=0.8"


class TestWeightedAverageRule:
    def test_weighted_mean(self):
        rule = weighted_average_rule({"a": 3.0, "b": 1.0}, threshold=0.7)
        assert rule.fires(vector(a=0.9, b=0.1))  # mean 0.7
        assert not rule.fires(vector(a=0.5, b=0.5))

    def test_missing_weight_redistributed(self):
        rule = weighted_average_rule({"a": 1.0, "b": 1.0}, threshold=0.8)
        assert rule.fires(vector(a=0.9, b=None))

    def test_all_missing_does_not_fire(self):
        rule = weighted_average_rule({"a": 1.0}, threshold=0.0)
        assert not rule.fires(vector(a=None))


class TestRuleSet:
    def test_score_monotone_in_fired_weight(self):
        rules = RuleSet(
            rules=[
                attribute_threshold_rule("name", 0.8, weight=2.0),
                attribute_threshold_rule("zip", 0.9, weight=1.0),
            ],
            bias=-1.5,
        )
        none_fire = rules.score(vector(name=0.1, zip=0.1))
        one_fires = rules.score(vector(name=0.9, zip=0.1))
        both_fire = rules.score(vector(name=0.9, zip=0.95))
        assert none_fire < one_fires < both_fire

    def test_score_in_unit_interval(self):
        rules = RuleSet(rules=[attribute_threshold_rule("x", 0.5, weight=100.0)])
        assert 0.0 <= rules.score(vector(x=0.9)) <= 1.0
        assert 0.0 <= rules.score(vector(x=0.1)) <= 1.0

    def test_negative_weight_rule(self):
        """§1: 'high similarity of customer IDs is not' an indicator."""
        rules = RuleSet(
            rules=[
                attribute_threshold_rule("surname", 0.8, weight=2.0),
                attribute_threshold_rule("customer_id", 0.9, weight=-2.0),
            ]
        )
        plain = rules.score(vector(surname=0.9, customer_id=0.1))
        with_id = rules.score(vector(surname=0.9, customer_id=0.95))
        assert with_id < plain

    def test_explain_lists_fired_rules(self):
        rules = RuleSet(
            rules=[
                attribute_threshold_rule("name", 0.8),
                attribute_threshold_rule("zip", 0.9),
            ]
        )
        assert rules.explain(vector(name=0.9, zip=0.5)) == ["name>=0.8"]

    def test_rule_influence_counts(self):
        rules = RuleSet(rules=[attribute_threshold_rule("name", 0.5)])
        rules.score(vector(name=0.9))
        rules.score(vector(name=0.9))
        rules.score(vector(name=0.1))
        assert rules.rule_influence() == {"name>=0.5": 2}
        rules.reset_influence()
        assert rules.rule_influence() == {}
