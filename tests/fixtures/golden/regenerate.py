"""Regenerate the golden regression fixture (deliberate changes only).

Run from the repository root::

    PYTHONPATH=src:tests python tests/fixtures/golden/regenerate.py

Writes ``dataset.csv``, ``gold.csv``, and ``metrics.json`` next to this
script.  The test (``tests/test_golden_regression.py``) recomputes the
pipeline from the checked-in CSVs and diffs against ``metrics.json`` —
regenerating is how an *intentional* scoring change is blessed; review
the resulting diff before committing it.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

HERE = Path(__file__).parent


def main() -> int:
    if "pytest" in sys.modules:
        raise RuntimeError(
            "regenerate.py must not run under pytest — the golden test "
            "would be comparing the pipeline against itself"
        )
    from repro.datagen import make_person_benchmark
    from repro.io.exporters import export_dataset, export_gold_standard

    from test_golden_regression import (
        GOLDEN_FIXTURES,
        run_golden_pipeline,
        summarize,
    )

    benchmark = make_person_benchmark(150, seed=11)
    export_dataset(benchmark.dataset, HERE / "dataset.csv")
    export_gold_standard(benchmark.gold, HERE / "gold.csv", format_="clusters")

    for fixture_name, config in sorted(GOLDEN_FIXTURES.items()):
        summary = summarize(*run_golden_pipeline(config))
        (HERE / fixture_name).write_text(json.dumps(summary, indent=2) + "\n")
        print(fixture_name)
        print(json.dumps(summary, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
