"""Tests for the solution recommender (§7 outlook)."""

import pytest

from repro.core import Dataset, Record
from repro.profiling.recommendation import (
    EvaluationRepository,
    recommend_solutions,
)
from repro.profiling.selection import BenchmarkCandidate


def _dataset(name, rows):
    return Dataset(
        [Record(f"{name}{i}", {"text": row}) for i, row in enumerate(rows)],
        name=name,
    )


@pytest.fixture
def use_case():
    return _dataset("use", ["john smith", "mary jones", "jon smith"])


@pytest.fixture
def repository():
    repo = EvaluationRepository()
    repo.add_benchmark(
        BenchmarkCandidate(_dataset("persons", ["john smith", "mary jones"]))
    )
    repo.add_benchmark(
        BenchmarkCandidate(
            _dataset("gadgets", ["usb flashdrive 32gb sandisk ultra stick"])
        )
    )
    return repo


class TestRepository:
    def test_duplicate_benchmark_rejected(self, repository):
        with pytest.raises(ValueError, match="already registered"):
            repository.add_benchmark(
                BenchmarkCandidate(_dataset("persons", ["x"]))
            )

    def test_result_for_unknown_benchmark_rejected(self, repository):
        with pytest.raises(KeyError, match="unknown benchmark"):
            repository.add_result("sol", "nope", {"f1": 0.5})

    def test_solutions_sorted_unique(self, repository):
        repository.add_result("zeta", "persons", {"f1": 0.5})
        repository.add_result("alpha", "persons", {"f1": 0.5})
        repository.add_result("zeta", "gadgets", {"f1": 0.4})
        assert repository.solutions() == ["alpha", "zeta"]

    def test_results_for_filters_by_solution(self, repository):
        repository.add_result("a", "persons", {"f1": 0.5})
        repository.add_result("b", "persons", {"f1": 0.6})
        records = repository.results_for("a")
        assert len(records) == 1
        assert records[0].metrics["f1"] == 0.5


class TestRecommendSolutions:
    def test_weighted_by_suitability(self, use_case, repository):
        # sol-alpha shines on the similar benchmark, sol-beta on the
        # dissimilar one; alpha should be predicted stronger
        repository.add_result("sol-alpha", "persons", {"f1": 0.9})
        repository.add_result("sol-alpha", "gadgets", {"f1": 0.2})
        repository.add_result("sol-beta", "persons", {"f1": 0.2})
        repository.add_result("sol-beta", "gadgets", {"f1": 0.9})
        ranked = recommend_solutions(use_case, repository)
        assert ranked[0].solution == "sol-alpha"
        assert ranked[0].predicted_metric > ranked[1].predicted_metric

    def test_prediction_between_observed_values(self, use_case, repository):
        repository.add_result("sol", "persons", {"f1": 0.8})
        repository.add_result("sol", "gadgets", {"f1": 0.4})
        ranked = recommend_solutions(use_case, repository)
        assert 0.4 <= ranked[0].predicted_metric <= 0.8

    def test_solutions_without_metric_omitted(self, use_case, repository):
        repository.add_result("sol-noisy", "persons", {"runtime": 12.0})
        ranked = recommend_solutions(use_case, repository, metric="f1")
        assert ranked == []

    def test_minimum_suitability_filters_evidence(self, use_case, repository):
        repository.add_result("sol", "persons", {"f1": 0.9})
        repository.add_result("sol", "gadgets", {"f1": 0.1})
        unfiltered = recommend_solutions(use_case, repository)[0]
        filtered = recommend_solutions(
            use_case, repository, minimum_suitability=0.99
        )
        # with an impossible bar nothing qualifies
        assert filtered == []
        assert unfiltered.support == 2

    def test_evidence_is_auditable(self, use_case, repository):
        repository.add_result("sol", "persons", {"f1": 0.7})
        recommendation = recommend_solutions(use_case, repository)[0]
        suitability, value = recommendation.evidence["persons"]
        assert 0.0 <= suitability <= 1.0
        assert value == 0.7

    def test_top_limits(self, use_case, repository):
        repository.add_result("a", "persons", {"f1": 0.5})
        repository.add_result("b", "persons", {"f1": 0.6})
        ranked = recommend_solutions(use_case, repository, top=1)
        assert len(ranked) == 1
        assert ranked[0].solution == "b"

    def test_tiebreak_by_name(self, use_case, repository):
        repository.add_result("bbb", "persons", {"f1": 0.5})
        repository.add_result("aaa", "persons", {"f1": 0.5})
        ranked = recommend_solutions(use_case, repository)
        assert [r.solution for r in ranked] == ["aaa", "bbb"]
