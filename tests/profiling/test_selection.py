"""Tests for benchmark-dataset selection (§3.1.3)."""

import pytest

from repro.core import Dataset, Record
from repro.profiling.dataset_profile import profile_dataset
from repro.profiling.selection import (
    BenchmarkCandidate,
    profile_distance,
    rank_benchmarks,
)


def make_dataset(name, rows, sparsify=0):
    records = []
    for index, text in enumerate(rows):
        value = None if index < sparsify else text
        records.append(Record(f"{name}{index}", {"t": value}))
    return Dataset(records, name=name)


@pytest.fixture
def use_case():
    return make_dataset("use-case", ["alpha beta"] * 10, sparsify=1)


class TestProfileDistance:
    def test_identical_profiles_near_zero(self, use_case):
        profile = profile_dataset(use_case)
        distance = profile_distance(
            profile, profile, vocabulary_sim=1.0, same_domain=True
        )
        assert distance == pytest.approx(0.0)

    def test_domain_mismatch_increases_distance(self, use_case):
        profile = profile_dataset(use_case)
        same = profile_distance(profile, profile, 1.0, same_domain=True)
        different = profile_distance(profile, profile, 1.0, same_domain=False)
        assert different > same

    def test_custom_weights(self, use_case):
        profile = profile_dataset(use_case)
        vocab_only = profile_distance(
            profile, profile, vocabulary_sim=0.0, same_domain=True,
            weights={"sparsity": 0, "textuality": 0, "tuple_count": 0, "domain": 0,
                     "vocabulary": 1.0},
        )
        assert vocab_only == pytest.approx(1.0)


class TestRankBenchmarks:
    def test_similar_candidate_ranks_first(self, use_case):
        twin = BenchmarkCandidate(
            dataset=make_dataset("twin", ["alpha beta"] * 10, sparsify=1),
            domain="products",
        )
        stranger = BenchmarkCandidate(
            dataset=make_dataset("stranger", ["zzz"] * 1000, sparsify=900),
            domain="persons",
        )
        matrix = rank_benchmarks(
            use_case, [twin, stranger], use_case_domain="products"
        )
        assert matrix.rows["twin"]["distance"] < matrix.rows["stranger"]["distance"]

    def test_rows_carry_profile_features(self, use_case):
        candidate = BenchmarkCandidate(dataset=make_dataset("c", ["x y"] * 5))
        matrix = rank_benchmarks(use_case, [candidate])
        row = matrix.rows["c"]
        assert {"SP", "TX", "TC", "VS", "distance"} <= set(row)

    def test_render_sorts_by_distance(self, use_case):
        close = BenchmarkCandidate(
            dataset=make_dataset("close", ["alpha beta"] * 10, sparsify=1)
        )
        far = BenchmarkCandidate(
            dataset=make_dataset("far", ["unrelated words entirely"] * 500)
        )
        text = rank_benchmarks(use_case, [close, far]).render()
        assert text.index("close") < text.index("far")
