"""Tests for dataset profiling metrics (§3.1.3, Appendix C.1)."""

import pytest

from repro.core import Clustering, Dataset, GoldStandard, Record
from repro.profiling.dataset_profile import (
    attribute_sparsity,
    corner_case_ratio,
    positive_ratio,
    profile_dataset,
    schema_complexity,
    sparsity,
    textuality,
)


@pytest.fixture
def dataset():
    rows = [
        ("r1", "one two three", "x"),
        ("r2", "one", None),
        ("r3", None, "y z"),
        ("r4", "four five", None),
    ]
    return Dataset(
        [Record(rid, {"text": text, "code": code}) for rid, text, code in rows],
        name="profile-test",
    )


class TestSparsity:
    def test_counts_missing_fraction(self, dataset):
        # 3 nulls out of 8 values
        assert sparsity(dataset) == pytest.approx(3 / 8)

    def test_empty_dataset(self):
        assert sparsity(Dataset([])) == 0.0

    def test_fully_populated(self):
        dataset = Dataset([Record("a", {"x": "1"})])
        assert sparsity(dataset) == 0.0


class TestTextuality:
    def test_average_words_per_value(self, dataset):
        # values: 3 + 1 + 1 + 2 + 1 + 2 words over 5 non-null values? no:
        # text: "one two three"(3), "one"(1), "four five"(2)
        # code: "x"(1), "y z"(2)  -> 9 words / 5 values
        assert textuality(dataset) == pytest.approx(9 / 5)

    def test_empty(self):
        assert textuality(Dataset([])) == 0.0


class TestPositiveRatio:
    def test_ratio(self, dataset):
        gold = GoldStandard.from_pairs([("r1", "r2")])
        assert positive_ratio(dataset, gold) == pytest.approx(1 / 6)

    def test_empty_dataset(self):
        gold = GoldStandard(clustering=Clustering([]))
        assert positive_ratio(Dataset([]), gold) == 0.0


class TestSchemaAndAttributes:
    def test_schema_complexity(self, dataset):
        assert schema_complexity(dataset) == 2

    def test_attribute_sparsity(self, dataset):
        per_attribute = attribute_sparsity(dataset)
        assert per_attribute["text"] == pytest.approx(1 / 4)
        assert per_attribute["code"] == pytest.approx(2 / 4)


class TestCornerCases:
    def test_large_clusters_flagged(self, dataset):
        gold = GoldStandard(
            clustering=Clustering([["r1", "r2", "r3", "r4"]])
        )
        assert corner_case_ratio(dataset, gold) == 1.0

    def test_small_uniform_clusters_not_flagged(self):
        dataset = Dataset(
            [Record(f"r{i}", {"t": "same size"}) for i in range(4)]
        )
        gold = GoldStandard(clustering=Clustering([["r0", "r1"], ["r2", "r3"]]))
        assert corner_case_ratio(dataset, gold) == 0.0

    def test_no_clusters(self, dataset):
        gold = GoldStandard(clustering=Clustering([]))
        assert corner_case_ratio(dataset, gold) == 0.0


class TestProfileDataset:
    def test_full_profile(self, dataset):
        gold = GoldStandard.from_pairs([("r1", "r2")])
        profile = profile_dataset(dataset, gold)
        assert profile.name == "profile-test"
        assert profile.tuple_count == 4
        assert profile.positive_ratio == pytest.approx(1 / 6)
        assert profile.schema_complexity == 2

    def test_without_gold(self, dataset):
        profile = profile_dataset(dataset)
        assert profile.positive_ratio is None
        assert profile.corner_case_ratio is None

    def test_as_dict_table2_columns(self, dataset):
        profile = profile_dataset(dataset)
        assert {"SP", "TX", "TC", "PR"} <= set(profile.as_dict())
