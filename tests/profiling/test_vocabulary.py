"""Tests for vocabulary similarity (§3.1.3)."""

import pytest

from repro.core import Dataset, Record
from repro.profiling.vocabulary import vocabulary, vocabulary_similarity


def make(name, *texts):
    return Dataset(
        [Record(f"{name}{i}", {"t": text}) for i, text in enumerate(texts)],
        name=name,
    )


class TestVocabulary:
    def test_whitespace_tokens(self):
        dataset = make("a", "hello world", "hello again")
        assert vocabulary(dataset) == {"hello", "world", "again"}

    def test_null_values_ignored(self):
        dataset = Dataset([Record("r", {"t": None})])
        assert vocabulary(dataset) == set()


class TestVocabularySimilarity:
    def test_identical(self):
        left = make("a", "x y z")
        right = make("b", "z y x")
        assert vocabulary_similarity(left, right) == 1.0

    def test_disjoint(self):
        assert vocabulary_similarity(make("a", "x"), make("b", "y")) == 0.0

    def test_jaccard_value(self):
        left = make("a", "x y")
        right = make("b", "y z")
        assert vocabulary_similarity(left, right) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert vocabulary_similarity(make("a"), make("b")) == 1.0

    def test_symmetric(self):
        left = make("a", "p q r")
        right = make("b", "q r s t")
        assert vocabulary_similarity(left, right) == vocabulary_similarity(
            right, left
        )
