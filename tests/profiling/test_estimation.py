"""Tests for duplicate-cluster estimation from samples (§3.1.3, [33])."""

import math
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Clustering, Dataset, Record
from repro.datagen import make_person_benchmark
from repro.profiling.estimation import (
    ClusterEstimate,
    estimate_cluster_histogram,
    estimate_from_sample,
    sample_dataset,
)


class TestSampleDataset:
    def test_fraction_one_keeps_everything(self):
        dataset = Dataset([Record(f"r{i}", {}) for i in range(20)])
        sample = sample_dataset(dataset, 1.0, seed=1)
        assert sample.record_ids == dataset.record_ids

    def test_expected_size_roughly_holds(self):
        dataset = Dataset([Record(f"r{i}", {}) for i in range(2000)])
        sample = sample_dataset(dataset, 0.3, seed=2)
        assert 450 <= len(sample) <= 750  # 600 ± generous slack

    def test_deterministic_per_seed(self):
        dataset = Dataset([Record(f"r{i}", {}) for i in range(100)])
        first = sample_dataset(dataset, 0.5, seed=3).record_ids
        second = sample_dataset(dataset, 0.5, seed=3).record_ids
        assert first == second

    def test_invalid_fraction_rejected(self):
        dataset = Dataset([Record("a", {})])
        with pytest.raises(ValueError, match="fraction"):
            sample_dataset(dataset, 0.0)
        with pytest.raises(ValueError, match="fraction"):
            sample_dataset(dataset, 1.5)


class TestClusterEstimate:
    def test_derived_quantities(self):
        estimate = ClusterEstimate(size_histogram={2: 10.0, 3: 4.0})
        assert estimate.duplicate_cluster_count == 14.0
        assert estimate.duplicate_pair_count == 10.0 + 4 * 3
        assert estimate.mean_cluster_size == pytest.approx(32 / 14)

    def test_empty(self):
        estimate = ClusterEstimate(size_histogram={})
        assert estimate.duplicate_cluster_count == 0
        assert estimate.mean_cluster_size == 0.0


class TestEstimateHistogram:
    def test_full_sample_is_identity(self):
        """At q=1 the observed histogram IS the true histogram."""
        observed = {2: 40, 3: 12, 5: 3}
        estimate = estimate_cluster_histogram(observed, fraction=1.0)
        for size, count in observed.items():
            assert estimate.size_histogram[size] == pytest.approx(
                count, rel=0.01
            )

    def test_thinned_pairs_recovered(self):
        """Pure 2-clusters observed at q: true count ≈ observed / q²."""
        q = 0.5
        true_pairs = 400
        observed_pairs = round(true_pairs * q * q)  # expectation
        estimate = estimate_cluster_histogram(
            {2: observed_pairs}, fraction=q, max_size=2
        )
        assert estimate.size_histogram[2] == pytest.approx(
            true_pairs, rel=0.05
        )

    def test_singletons_ignored(self):
        estimate = estimate_cluster_histogram({1: 1000, 2: 10}, fraction=1.0)
        assert 1 not in estimate.size_histogram

    def test_empty_observation(self):
        estimate = estimate_cluster_histogram({}, fraction=0.5)
        assert estimate.duplicate_cluster_count == 0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError, match="fraction"):
            estimate_cluster_histogram({2: 5}, fraction=0.0)

    def test_max_size_below_observed_rejected(self):
        with pytest.raises(ValueError, match="max_size"):
            estimate_cluster_histogram({4: 5}, fraction=0.5, max_size=3)

    @given(
        st.integers(min_value=5, max_value=300),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_estimates_are_non_negative(self, pairs, triples):
        estimate = estimate_cluster_histogram(
            {2: pairs, 3: triples}, fraction=0.6
        )
        assert all(count >= 0 for count in estimate.size_histogram.values())
        assert estimate.duplicate_pair_count >= 0


class TestEndToEnd:
    def test_recovers_generated_benchmark_structure(self):
        """A 50% sample with a perfect sample-matcher estimates the full
        dataset's cluster count and pair count within ~20%."""
        benchmark = make_person_benchmark(4000, seed=5)
        truth = Counter(
            len(c) for c in benchmark.gold.clustering.clusters if len(c) >= 2
        )
        true_clusters = sum(truth.values())
        true_pairs = benchmark.gold.pair_count()

        q = 0.5
        sample = sample_dataset(benchmark.dataset, q, seed=9)
        sampled_ids = set(sample.record_ids)
        sample_clusters = [
            [m for m in cluster if m in sampled_ids]
            for cluster in benchmark.gold.clustering.clusters
        ]
        estimate = estimate_from_sample(
            Clustering(c for c in sample_clusters if c), q
        )
        assert estimate.duplicate_cluster_count == pytest.approx(
            true_clusters, rel=0.2
        )
        assert estimate.duplicate_pair_count == pytest.approx(
            true_pairs, rel=0.2
        )
        assert estimate.mean_cluster_size == pytest.approx(
            sum(k * v for k, v in truth.items()) / true_clusters, rel=0.2
        )

    def test_small_fraction_still_sane(self):
        benchmark = make_person_benchmark(3000, seed=6)
        q = 0.25
        sample = sample_dataset(benchmark.dataset, q, seed=4)
        sampled_ids = set(sample.record_ids)
        sample_clusters = [
            [m for m in cluster if m in sampled_ids]
            for cluster in benchmark.gold.clustering.clusters
        ]
        estimate = estimate_from_sample(
            Clustering(c for c in sample_clusters if c), q
        )
        assert estimate.duplicate_pair_count > 0
        assert math.isfinite(estimate.mean_cluster_size)
