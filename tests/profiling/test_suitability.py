"""Tests for the benchmark suitability score (§7 outlook)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Clustering, Dataset, GoldStandard, Record
from repro.profiling.selection import BenchmarkCandidate
from repro.profiling.suitability import (
    ClusterStructure,
    cluster_structure,
    cluster_structure_similarity,
    recommend_benchmarks,
    suitability_score,
)


def _dataset(name, rows):
    return Dataset(
        [Record(f"{name}{i}", {"text": row}) for i, row in enumerate(rows)],
        name=name,
    )


@pytest.fixture
def people():
    return _dataset("people", ["john smith", "jon smith", "mary jones", "bob ray"])


@pytest.fixture
def people_like():
    return _dataset("people2", ["john smith", "mary jones", "alice smith", "bob ray"])


@pytest.fixture
def products():
    return _dataset(
        "products",
        ["usb stick 32gb sandisk flashdrive", "ssd 1tb samsung evo storage"],
    )


class TestClusterStructure:
    def test_counts_nontrivial_clusters_only(self):
        clustering = Clustering([["a", "b"], ["c", "d", "e"], ["f"]])
        structure = cluster_structure(clustering, record_count=10)
        assert structure.duplicate_cluster_count == 2
        assert structure.size_histogram == {2: 1, 3: 1}

    def test_duplicate_record_fraction(self):
        clustering = Clustering([["a", "b"], ["c"]])
        structure = cluster_structure(clustering, record_count=4)
        assert structure.duplicate_record_fraction == pytest.approx(0.5)

    def test_mean_cluster_size(self):
        clustering = Clustering([["a", "b"], ["c", "d", "e", "f"]])
        structure = cluster_structure(clustering)
        assert structure.mean_cluster_size == pytest.approx(3.0)

    def test_empty(self):
        structure = cluster_structure(Clustering([]), record_count=0)
        assert structure.duplicate_record_fraction == 0.0
        assert structure.mean_cluster_size == 0.0

    def test_record_count_defaults_to_mentioned(self):
        structure = cluster_structure(Clustering([["a", "b"], ["c"]]))
        assert structure.record_count == 3


class TestClusterStructureSimilarity:
    def test_identical_structures_score_one(self):
        first = ClusterStructure(100, 10, {2: 8, 3: 2})
        assert cluster_structure_similarity(first, first) == pytest.approx(1.0)

    def test_disjoint_histograms_halve_the_score(self):
        first = ClusterStructure(100, 10, {2: 10})
        second = ClusterStructure(100, 10, {5: 4})
        value = cluster_structure_similarity(first, second)
        assert value < 0.8

    def test_no_duplicates_on_both_sides_is_similar(self):
        first = ClusterStructure(50, 0, {})
        second = ClusterStructure(80, 0, {})
        assert cluster_structure_similarity(first, second) == pytest.approx(1.0)

    def test_duplicates_vs_none_is_dissimilar(self):
        first = ClusterStructure(10, 5, {2: 5})
        second = ClusterStructure(10, 0, {})
        assert cluster_structure_similarity(first, second) <= 0.5

    def test_symmetric(self):
        first = ClusterStructure(40, 4, {2: 3, 4: 1})
        second = ClusterStructure(90, 9, {2: 2, 3: 7})
        assert cluster_structure_similarity(
            first, second
        ) == cluster_structure_similarity(second, first)

    @given(
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_bounded(self, pairs_a, pairs_b):
        first = ClusterStructure(50, pairs_a, {2: pairs_a})
        second = ClusterStructure(50, pairs_b, {3: pairs_b})
        value = cluster_structure_similarity(first, second)
        assert 0.0 <= value <= 1.0


class TestSuitabilityScore:
    def test_same_dataset_scores_near_one(self, people):
        report = suitability_score(
            people, BenchmarkCandidate(people, domain="person"),
            use_case_domain="person",
        )
        assert report.score > 0.9

    def test_similar_beats_dissimilar(self, people, people_like, products):
        similar = suitability_score(people, BenchmarkCandidate(people_like))
        dissimilar = suitability_score(people, BenchmarkCandidate(products))
        assert similar.score > dissimilar.score

    def test_score_in_unit_interval(self, people, products):
        report = suitability_score(people, BenchmarkCandidate(products))
        assert 0.0 <= report.score <= 1.0

    def test_domain_mismatch_lowers_score(self, people, people_like):
        matching = suitability_score(
            people,
            BenchmarkCandidate(people_like, domain="person"),
            use_case_domain="person",
        )
        mismatched = suitability_score(
            people,
            BenchmarkCandidate(people_like, domain="product"),
            use_case_domain="person",
        )
        assert matching.score > mismatched.score

    def test_cluster_structure_feature_used_when_available(self, people):
        gold = GoldStandard(Clustering([["people0", "people1"]]))
        estimated = Clustering([["people0", "people1"]])
        with_clusters = suitability_score(
            people,
            BenchmarkCandidate(people, gold),
            use_case_clustering=estimated,
        )
        assert "cluster_structure" in with_clusters.features
        without = suitability_score(people, BenchmarkCandidate(people, gold))
        assert "cluster_structure" not in without.features

    def test_render_mentions_features(self, people, people_like):
        report = suitability_score(people, BenchmarkCandidate(people_like))
        rendered = report.render()
        assert "people2" in rendered
        assert "vocabulary" in rendered


class TestRecommendBenchmarks:
    def test_ranked_best_first(self, people, people_like, products):
        reports = recommend_benchmarks(
            people,
            [BenchmarkCandidate(products), BenchmarkCandidate(people_like)],
        )
        assert [r.candidate_name for r in reports] == ["people2", "products"]

    def test_top_limits_results(self, people, people_like, products):
        reports = recommend_benchmarks(
            people,
            [BenchmarkCandidate(products), BenchmarkCandidate(people_like)],
            top=1,
        )
        assert len(reports) == 1

    def test_deterministic_tiebreak_by_name(self, people):
        twin_a = _dataset("aaa", ["john smith"])
        twin_b = _dataset("bbb", ["john smith"])
        reports = recommend_benchmarks(
            people, [BenchmarkCandidate(twin_b), BenchmarkCandidate(twin_a)]
        )
        assert [r.candidate_name for r in reports] == ["aaa", "bbb"]
