"""Tests for the parallel job runner: caching, sweeps, isolation."""

import threading

import pytest

from repro.core.platform import FrostPlatform
from repro.engine import (
    ExperimentEngine,
    JobHandler,
    JobSpec,
    JobState,
    expand_sweep,
)
from repro.engine.runner import EngineError
from repro.matching.attribute_matching import AttributeComparator
from repro.matching.blocking import full_pairs
from repro.matching.pipeline import MatchingPipeline
from repro.storage.database import FrostStore


def _mean_decision(vector):
    return vector.mean()


class TestBasicExecution:
    def test_metrics_job(self, engine):
        spec = JobSpec(
            "metrics",
            {"dataset": "people", "gold": "people-gold",
             "metrics": ["precision", "recall"]},
            job_id="m",
        )
        result = engine.run([spec])["m"]
        assert result.state is JobState.SUCCEEDED
        assert result.value["metrics"]["people-run"] == {
            "precision": 0.5, "recall": 0.5,
        }

    def test_diagram_job(self, engine):
        spec = JobSpec(
            "diagram",
            {"dataset": "people", "gold": "people-gold",
             "experiment": "people-run", "samples": 3},
            job_id="d",
        )
        result = engine.run([spec])["d"]
        assert result.state is JobState.SUCCEEDED
        assert len(result.value["points"]) == 3
        assert result.value["points"][0]["threshold"] is None

    def test_unknown_kind_rejected(self, engine):
        with pytest.raises(EngineError, match="unknown job kind"):
            engine.submit(JobSpec("teleport", {}))

    def test_duplicate_id_rejected(self, engine):
        engine.submit(JobSpec("metrics", {"dataset": "people"}, job_id="x"))
        with pytest.raises(EngineError, match="duplicate job id"):
            engine.submit(JobSpec("metrics", {"dataset": "people"}, job_id="x"))

    def test_unknown_dependency_rejected(self, engine):
        with pytest.raises(EngineError, match="unknown job"):
            engine.submit(
                JobSpec("metrics", {"dataset": "people"}, depends_on=("ghost",))
            )


class TestCacheSemantics:
    def test_identical_rerun_does_not_recompute(self, engine, monkeypatch):
        """The acceptance criterion: the second run computes nothing."""
        calls = []
        original = FrostPlatform.metrics_table

        def counting(self, *args, **kwargs):
            calls.append(args)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(FrostPlatform, "metrics_table", counting)
        params = {"dataset": "people", "gold": "people-gold", "metrics": ["f1"]}
        first = engine.run([JobSpec("metrics", params, job_id="a")])["a"]
        assert first.cached is False and len(calls) == 1
        second = engine.run([JobSpec("metrics", params, job_id="b")])["b"]
        assert second.state is JobState.SUCCEEDED
        assert second.cached is True
        assert len(calls) == 1, "cached re-run must not recompute metrics"
        assert second.value == first.value
        assert engine.cached_jobs == 1

    def test_config_change_misses_cache(self, engine):
        base = {"dataset": "people", "gold": "people-gold"}
        first = engine.run(
            [JobSpec("metrics", {**base, "metrics": ["f1"]}, job_id="a")]
        )["a"]
        second = engine.run(
            [JobSpec("metrics", {**base, "metrics": ["recall"]}, job_id="b")]
        )["b"]
        assert first.cached is False and second.cached is False
        assert first.cache_key != second.cache_key

    def test_experiment_content_change_misses_cache(
        self, people_dataset, people_gold
    ):
        from repro.core import Experiment

        registry = FrostPlatform()
        registry.add_dataset(people_dataset)
        registry.add_gold(people_dataset.name, people_gold)
        registry.add_experiment(
            people_dataset.name, Experiment([("p1", "p2", 0.9)], name="run")
        )
        engine = ExperimentEngine(registry)
        params = {"dataset": "people", "gold": "people-gold",
                  "experiments": ["run"]}
        first = engine.run([JobSpec("metrics", params, job_id="a")])["a"]

        changed = FrostPlatform()
        changed.add_dataset(people_dataset)
        changed.add_gold(people_dataset.name, people_gold)
        changed.add_experiment(
            people_dataset.name, Experiment([("p1", "p3", 0.9)], name="run")
        )
        other = ExperimentEngine(changed)
        second = other.run([JobSpec("metrics", params, job_id="a")])["a"]
        assert first.cache_key != second.cache_key

    def test_cache_shared_through_store_across_engines(self, platform, tmp_path):
        path = tmp_path / "cache.db"
        params = {"dataset": "people", "gold": "people-gold", "metrics": ["f1"]}
        with FrostStore(path) as store:
            cold = ExperimentEngine(platform, store=store)
            assert not cold.run([JobSpec("metrics", params, job_id="a")])["a"].cached
        with FrostStore(path) as store:
            warm = ExperimentEngine(platform, store=store)
            assert warm.run([JobSpec("metrics", params, job_id="a")])["a"].cached

    def test_uncacheable_spec_always_computes(self, engine):
        params = {"dataset": "people", "gold": "people-gold"}
        engine.run([JobSpec("metrics", params, job_id="a", cacheable=False)])
        result = engine.run(
            [JobSpec("metrics", params, job_id="b", cacheable=False)]
        )["b"]
        assert result.cached is False and result.cache_key is None


class TestSweep:
    def test_sweep_fans_out_and_orders_results(self, engine):
        base = JobSpec(
            "metrics",
            {"dataset": "people", "gold": "people-gold", "metrics": ["recall"]},
            job_id="sweep",
        )
        job_ids = engine.sweep(base, "threshold", [0.5, 0.8, 0.99])
        assert job_ids == ["sweep@0.5", "sweep@0.8", "sweep@0.99"]
        engine.start()
        assert engine.join(job_ids, timeout=30)
        recalls = [
            engine.result(job_id).value["metrics"]["people-run"]["recall"]
            for job_id in job_ids
        ]
        # people-run has matches at 0.95 and 0.72: raising the threshold
        # from 0.5 to 0.99 drops both, so recall is monotonically falling.
        assert recalls == sorted(recalls, reverse=True)
        assert recalls[-1] == 0.0

    def test_sweep_points_cache_independently(self, engine):
        base = JobSpec(
            "metrics",
            {"dataset": "people", "gold": "people-gold", "metrics": ["f1"]},
            job_id="s",
        )
        engine.run(expand_sweep(base, "threshold", [0.5, 0.8]))
        rerun = engine.sweep(
            JobSpec(base.kind, base.params, job_id="s2"), "threshold", [0.8, 0.9]
        )
        engine.start()
        engine.join(rerun)
        assert engine.result("s2@0.8").cached is True   # seen at 0.8 before
        assert engine.result("s2@0.9").cached is False  # new grid point


class TestFailureIsolation:
    def test_failure_skips_dependents_only(self, engine):
        good = engine.submit(
            JobSpec("metrics", {"dataset": "people", "gold": "people-gold"},
                    job_id="good")
        )
        bad = engine.submit(
            JobSpec("metrics", {"dataset": "ghost", "gold": "people-gold"},
                    job_id="bad")
        )
        downstream = engine.submit(
            JobSpec("metrics", {"dataset": "people", "gold": "people-gold"},
                    job_id="downstream", depends_on=(bad,))
        )
        engine.start()
        assert engine.join(timeout=30)
        assert engine.result(good).state is JobState.SUCCEEDED
        assert engine.result(bad).state is JobState.FAILED
        assert "ghost" in engine.result(bad).error
        assert engine.result(downstream).state is JobState.SKIPPED

    def test_cancel_pending_job_and_dependents(self, platform):
        engine = ExperimentEngine(platform, max_workers=1)
        release = threading.Event()

        def blocked(params, inputs):
            release.wait(timeout=30)
            return "done"

        engine.register_handler("blocked", JobHandler(compute=blocked))
        engine.submit(JobSpec("blocked", {}, job_id="running", cacheable=False))
        engine.submit(JobSpec("blocked", {}, job_id="queued", cacheable=False))
        engine.submit(
            JobSpec("blocked", {}, job_id="child",
                    depends_on=("queued",), cacheable=False)
        )
        engine.start()
        assert engine.cancel("queued") is True
        release.set()
        assert engine.join(timeout=30)
        assert engine.result("running").state is JobState.SUCCEEDED
        assert engine.result("queued").state is JobState.CANCELLED
        assert engine.result("child").state is JobState.SKIPPED

    def test_mid_run_submission_runs_on_idle_workers(self, platform):
        """A fresh job must not wait behind an unrelated running job."""
        engine = ExperimentEngine(platform, max_workers=2)
        release = threading.Event()
        engine.register_handler(
            "blocked", JobHandler(compute=lambda params, inputs: release.wait(30))
        )
        engine.submit(JobSpec("blocked", {}, job_id="slow", cacheable=False))
        engine.start()
        fast = engine.submit(
            JobSpec("metrics", {"dataset": "people", "gold": "people-gold"},
                    job_id="fast")
        )
        try:
            assert engine.join([fast], timeout=10), (
                "independent job must finish while another job is running"
            )
            assert engine.result("slow").state is JobState.RUNNING
        finally:
            release.set()
        assert engine.join(timeout=30)

    def test_history_pruning_drops_oldest_terminal_jobs(self, platform):
        engine = ExperimentEngine(platform, max_workers=2, max_history=3)
        params = {"dataset": "people", "gold": "people-gold", "metrics": ["f1"]}
        for index in range(6):
            engine.run([JobSpec("metrics", params, job_id=f"job-{index}")])
        with pytest.raises(EngineError, match="unknown job"):
            engine.result("job-0")
        assert engine.result("job-5").state is JobState.SUCCEEDED
        assert engine.progress()["total"] <= 3

    def test_progress_counts_states(self, engine):
        engine.run(
            [JobSpec("metrics", {"dataset": "people", "gold": "people-gold"},
                     job_id="ok"),
             JobSpec("metrics", {"dataset": "ghost", "gold": "people-gold"},
                     job_id="boom")]
        )
        progress = engine.progress()
        assert progress["total"] == 2 and progress["done"] == 2
        assert progress["succeeded"] == 1 and progress["failed"] == 1
        assert progress["cache"]["misses"] >= 1


class TestPipelineJobs:
    @pytest.fixture
    def pipeline(self):
        return MatchingPipeline(
            candidate_generator=full_pairs,
            comparator=AttributeComparator({"first": "jaro_winkler",
                                            "last": "jaro_winkler"}),
            decision_model=_mean_decision,
            threshold=0.9,
            name="engine-pipe",
        )

    def test_pipeline_job_registers_and_caches(self, engine, pipeline):
        spec = JobSpec(
            "pipeline",
            {"pipeline": pipeline, "dataset": "people"},
            job_id="p1",
        )
        first = engine.run([spec])["p1"]
        assert first.state is JobState.SUCCEEDED and not first.cached
        assert "engine-pipe" in engine.platform.experiment_names("people")
        rerun = engine.run(
            [JobSpec("pipeline", {"pipeline": pipeline, "dataset": "people"},
                     job_id="p2")]
        )["p2"]
        assert rerun.cached is True

    def test_pipeline_as_job_graph_matches_direct_run(self, engine, pipeline):
        direct = pipeline.run(engine.platform.dataset("people")).experiment
        graph = pipeline.as_job_graph("people", prefix="graph", register=False)
        results = engine.run(graph)
        assert all(
            result.state is JobState.SUCCEEDED for result in results.values()
        )
        staged = results["graph:clustering"].value
        assert staged.pairs() == direct.pairs()

    def test_duck_typed_comparator_still_fingerprints(self, engine, pipeline):
        class MeanComparator:
            def compare(self, first, second):
                from repro.core.pairs import make_pair
                from repro.matching.attribute_matching import SimilarityVector

                return SimilarityVector(
                    pair=make_pair(first.record_id, second.record_id),
                    values={"first": 1.0 if first.values == second.values else 0.0},
                )

        duck = MatchingPipeline(
            candidate_generator=full_pairs,
            comparator=MeanComparator(),
            decision_model=_mean_decision,
            threshold=0.9,
            name="duck-pipe",
        )
        result = engine.run(
            [JobSpec("pipeline", {"pipeline": duck, "dataset": "people"},
                     job_id="duck")]
        )["duck"]
        assert result.state is JobState.SUCCEEDED, result.error
        assert "comparator" in duck.config_fingerprint()

    def test_workers_override_hits_serial_cache(self, engine, pipeline):
        """Parallelism cannot change the output, so it must not change
        the cache key: a serial run's cached result serves a
        4-worker re-submission of the same pipeline."""
        serial = engine.run(
            [JobSpec("pipeline", {"pipeline": pipeline, "dataset": "people"},
                     job_id="serial")]
        )["serial"]
        assert serial.state is JobState.SUCCEEDED and not serial.cached
        parallel = engine.run(
            [JobSpec(
                "pipeline",
                {"pipeline": pipeline, "dataset": "people",
                 "workers": 4, "shards": 8},
                job_id="parallel",
            )]
        )["parallel"]
        assert parallel.state is JobState.SUCCEEDED, parallel.error
        assert parallel.cached is True
        assert parallel.cache_key == serial.cache_key
        assert parallel.value == serial.value

    def test_columnar_override_hits_same_cache(self, engine, pipeline):
        """Like workers/shards, the columnar knob is pure execution: a
        kernelized run and a scalar run share one cache entry."""
        fast = engine.run(
            [JobSpec("pipeline", {"pipeline": pipeline, "dataset": "people"},
                     job_id="col-on")]
        )["col-on"]
        assert fast.state is JobState.SUCCEEDED, fast.error
        scalar = engine.run(
            [JobSpec(
                "pipeline",
                {"pipeline": pipeline, "dataset": "people", "columnar": False},
                job_id="col-off",
            )]
        )["col-off"]
        assert scalar.state is JobState.SUCCEEDED, scalar.error
        assert scalar.cache_key == fast.cache_key
        assert scalar.value == fast.value

    def test_stage_graph_with_workers_matches_serial(self, engine, pipeline):
        graph = pipeline.as_job_graph("people", prefix="par", register=False)
        for spec in graph:
            if spec.job_id == "par:similarity":
                spec.params.update(workers=2, shards=3)
        results = engine.run(graph)
        assert all(
            result.state is JobState.SUCCEEDED for result in results.values()
        ), {k: r.error for k, r in results.items()}
        direct = pipeline.run(engine.platform.dataset("people")).experiment
        assert results["par:clustering"].value.pairs() == direct.pairs()

    def test_job_graph_stage_order_is_dependency_driven(self, engine, pipeline):
        graph = pipeline.as_job_graph("people", prefix="g2", register=False)
        assert [spec.job_id for spec in graph] == [
            "g2:prepare", "g2:candidates", "g2:similarity",
            "g2:decision", "g2:clustering",
        ]
        assert graph[2].depends_on == ("g2:prepare", "g2:candidates")


class TestBlockerJobParam:
    """The ``blocker`` pipeline-job param: per-job candidate generation."""

    LSH = {"kind": "lsh", "num_perm": 16, "bands": 8, "seed": 3}

    @pytest.fixture
    def pipeline(self):
        return MatchingPipeline(
            candidate_generator=full_pairs,
            comparator=AttributeComparator({"first": "jaro_winkler",
                                            "last": "jaro_winkler"}),
            decision_model=_mean_decision,
            threshold=0.9,
            name="blocker-pipe",
        )

    def test_blocker_override_changes_the_cache_key(self, engine, pipeline):
        """Unlike workers/shards, a blocker override changes the output
        — so it must split the cache, never share an entry."""
        base = engine.run(
            [JobSpec("pipeline", {"pipeline": pipeline, "dataset": "people"},
                     job_id="base")]
        )["base"]
        lsh = engine.run(
            [JobSpec(
                "pipeline",
                {"pipeline": pipeline, "dataset": "people",
                 "blocker": self.LSH, "register": False},
                job_id="lsh",
            )]
        )["lsh"]
        assert base.state is JobState.SUCCEEDED, base.error
        assert lsh.state is JobState.SUCCEEDED, lsh.error
        assert lsh.cache_key != base.cache_key
        assert not lsh.cached
        other = engine.run(
            [JobSpec(
                "pipeline",
                {"pipeline": pipeline, "dataset": "people",
                 "blocker": {**self.LSH, "bands": 4}, "register": False},
                job_id="lsh4",
            )]
        )["lsh4"]
        assert other.state is JobState.SUCCEEDED, other.error
        assert other.cache_key != lsh.cache_key

    def test_identical_blocker_jobs_share_the_cache(self, engine, pipeline):
        params = {"pipeline": pipeline, "dataset": "people",
                  "blocker": self.LSH, "register": False}
        first = engine.run(
            [JobSpec("pipeline", dict(params), job_id="one")]
        )["one"]
        rerun = engine.run(
            [JobSpec("pipeline", dict(params), job_id="two")]
        )["two"]
        assert first.state is JobState.SUCCEEDED, first.error
        assert rerun.cached is True
        assert rerun.cache_key == first.cache_key

    def test_blocker_matches_with_blocker_direct_run(self, engine, pipeline):
        from repro.streaming import candidate_generator_from_key

        direct = pipeline.with_blocker(
            candidate_generator_from_key(self.LSH)
        ).run(engine.platform.dataset("people")).experiment
        result = engine.run(
            [JobSpec(
                "pipeline",
                {"pipeline": pipeline, "dataset": "people",
                 "blocker": self.LSH, "register": False},
                job_id="direct-check",
            )]
        )["direct-check"]
        assert result.state is JobState.SUCCEEDED, result.error
        assert sorted(
            (first, second) for first, second, _, _ in result.value["matches"]
        ) == sorted(tuple(match.pair) for match in direct)

    def test_candidates_stage_honours_blocker(self, engine, pipeline):
        from repro.streaming import candidate_generator_from_key

        graph = pipeline.as_job_graph("people", prefix="lsh", register=False)
        for spec in graph:
            if spec.job_id == "lsh:candidates":
                spec.params.update(blocker=self.LSH)
        results = engine.run(graph)
        assert all(
            result.state is JobState.SUCCEEDED for result in results.values()
        ), {k: r.error for k, r in results.items()}
        direct = pipeline.with_blocker(
            candidate_generator_from_key(self.LSH)
        ).run(engine.platform.dataset("people")).experiment
        assert results["lsh:clustering"].value.pairs() == direct.pairs()

    def test_malformed_blocker_fails_the_job_cleanly(self, engine, pipeline):
        result = engine.run(
            [JobSpec(
                "pipeline",
                {"pipeline": pipeline, "dataset": "people",
                 "blocker": {"kind": "lsh", "bands": 33}},
                job_id="broken",
            )]
        )["broken"]
        assert result.state is JobState.FAILED
        assert "divide" in result.error
