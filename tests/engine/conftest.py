"""Engine fixtures: a populated platform and an engine over it."""

from __future__ import annotations

import pytest

from repro.core.platform import FrostPlatform
from repro.engine import ExperimentEngine


@pytest.fixture
def platform(people_dataset, people_gold, people_experiment) -> FrostPlatform:
    registry = FrostPlatform()
    registry.add_dataset(people_dataset)
    registry.add_gold(people_dataset.name, people_gold)
    registry.add_experiment(people_dataset.name, people_experiment)
    return registry


@pytest.fixture
def engine(platform) -> ExperimentEngine:
    return ExperimentEngine(platform, max_workers=2)
