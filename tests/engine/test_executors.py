"""Tests for the shard execution backends."""

from __future__ import annotations

import os

import pytest

from repro.engine.executors import (
    ProcessExecutor,
    SerialExecutor,
    executor_for,
)


def _square(value: int) -> int:
    """Module-level so process pools can pickle it by reference."""
    return value * value


def _identify(value: int) -> tuple[int, int]:
    return value, os.getpid()


def test_serial_executor_preserves_order():
    assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]
    assert SerialExecutor().map(_square, []) == []


def test_process_executor_matches_serial():
    tasks = list(range(20))
    expected = SerialExecutor().map(_square, tasks)
    assert ProcessExecutor(workers=4).map(_square, tasks) == expected


def test_process_executor_runs_outside_the_calling_process():
    results = ProcessExecutor(workers=2).map(_identify, list(range(6)))
    assert [value for value, _ in results] == list(range(6))
    worker_pids = {pid for _, pid in results}
    assert os.getpid() not in worker_pids


def test_process_executor_single_task_stays_inline():
    """One task never justifies a pool: width collapses to serial."""
    results = ProcessExecutor(workers=4).map(_identify, [7])
    assert results == [(7, os.getpid())]


def test_process_executor_empty_tasks():
    assert ProcessExecutor(workers=4).map(_square, []) == []


def test_process_executor_rejects_bad_width():
    with pytest.raises(ValueError):
        ProcessExecutor(workers=0)


def test_shared_state_reaches_workers():
    """`shared` ships once per worker and is readable from tasks."""
    from repro.engine import executors

    def read_shared(_):
        return executors.shared_state()

    results = SerialExecutor().map(read_shared, [1, 2], shared="token")
    assert results == ["token", "token"]
    assert executors.shared_state() is None  # restored after the loop


def _read_shared_in_worker(_):
    from repro.engine.executors import shared_state

    return shared_state()


def test_shared_state_reaches_process_workers():
    results = ProcessExecutor(workers=2).map(
        _read_shared_in_worker, list(range(6)), shared={"k": 1}
    )
    assert results == [{"k": 1}] * 6


def test_shared_state_is_thread_isolated():
    """Concurrent inline stages (engine worker threads) must each see
    their own shared value — a bleed would mean scoring one pipeline's
    pairs with another pipeline's comparator."""
    import threading

    from repro.engine import executors

    barrier = threading.Barrier(2)
    observed = {}

    def read_shared_slowly(task):
        barrier.wait(timeout=5)  # both threads inside their map loops
        return executors.shared_state()

    def run(name):
        observed[name] = SerialExecutor().map(
            read_shared_slowly, [0], shared=name
        )

    threads = [
        threading.Thread(target=run, args=(name,)) for name in ("a", "b")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert observed == {"a": ["a"], "b": ["b"]}
    assert executors.shared_state() is None  # main thread untouched


def test_pool_failure_falls_back_to_serial(monkeypatch, caplog):
    """Any pool-level failure degrades to the serial path with a
    warning instead of failing the caller."""
    import concurrent.futures
    import logging

    class ExplodingPool:
        def __init__(self, *args, **kwargs):
            raise OSError("no semaphores in this sandbox")

    monkeypatch.setattr(
        concurrent.futures, "ProcessPoolExecutor", ExplodingPool
    )
    with caplog.at_level(logging.WARNING, logger="repro.engine.executors"):
        results = ProcessExecutor(workers=4).map(
            _square, [1, 2, 3], shared=None
        )
    assert results == [1, 4, 9]
    assert any("serially" in message for message in caplog.messages)


def test_executor_for_dispatch():
    assert isinstance(executor_for(1), SerialExecutor)
    pool = executor_for(3)
    assert isinstance(pool, ProcessExecutor)
    assert pool.workers == 3
    all_cores = executor_for(None)
    if (os.cpu_count() or 1) == 1:
        assert isinstance(all_cores, SerialExecutor)
    else:
        assert isinstance(all_cores, ProcessExecutor)
        assert all_cores.workers == os.cpu_count()
    assert type(executor_for(0)) is type(all_cores)
