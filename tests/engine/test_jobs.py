"""Tests for job specs, sweeps, and content fingerprints."""

import pytest

from repro.core import Dataset, Experiment, GoldStandard, Record
from repro.engine import (
    JobSpec,
    content_fingerprint,
    dataset_fingerprint,
    expand_sweep,
    experiment_fingerprint,
    gold_fingerprint,
)
from repro.engine.jobs import job_cache_key


class TestJobSpec:
    def test_params_are_copied(self):
        params = {"dataset": "d"}
        spec = JobSpec("metrics", params)
        params["dataset"] = "mutated"
        assert spec.params["dataset"] == "d"

    def test_with_params_merges(self):
        spec = JobSpec("metrics", {"dataset": "d"}).with_params(threshold=0.5)
        assert spec.params == {"dataset": "d", "threshold": 0.5}

    def test_sweep_fans_out_with_derived_ids(self):
        base = JobSpec("metrics", {"dataset": "d"}, job_id="m")
        specs = expand_sweep(base, "threshold", [0.5, 0.7, 0.9])
        assert [spec.job_id for spec in specs] == ["m@0.5", "m@0.7", "m@0.9"]
        assert [spec.params["threshold"] for spec in specs] == [0.5, 0.7, 0.9]
        assert all(spec.kind == "metrics" for spec in specs)


class TestFingerprints:
    def test_dataset_fingerprint_is_content_addressed(self):
        records = [Record("r1", {"name": "ann"}), Record("r2", {"name": "bob"})]
        first = Dataset(list(records), name="one")
        renamed = Dataset(list(records), name="two")
        assert dataset_fingerprint(first) == dataset_fingerprint(renamed)

    def test_dataset_fingerprint_sees_value_changes(self):
        first = Dataset([Record("r1", {"name": "ann"})])
        changed = Dataset([Record("r1", {"name": "ann!"})])
        assert dataset_fingerprint(first) != dataset_fingerprint(changed)

    def test_experiment_fingerprint_order_independent(self):
        one = Experiment([("a", "b", 0.9), ("c", "d", 0.8)])
        two = Experiment([("c", "d", 0.8), ("a", "b", 0.9)])
        assert experiment_fingerprint(one) == experiment_fingerprint(two)

    def test_experiment_fingerprint_sees_score_changes(self):
        one = Experiment([("a", "b", 0.9)])
        two = Experiment([("a", "b", 0.8)])
        assert experiment_fingerprint(one) != experiment_fingerprint(two)

    def test_gold_fingerprint_ignores_name(self):
        pairs = [("a", "b"), ("c", "d")]
        assert gold_fingerprint(
            GoldStandard.from_pairs(pairs, name="x")
        ) == gold_fingerprint(GoldStandard.from_pairs(pairs, name="y"))

    def test_cache_key_changes_with_config(self):
        dataset = Dataset([Record("r1", {"name": "ann"})])
        one = job_cache_key("metrics", {"dataset": dataset, "metrics": ["f1"]})
        two = job_cache_key(
            "metrics", {"dataset": dataset, "metrics": ["precision"]}
        )
        assert one != two

    def test_callables_tokenized_by_qualified_name(self):
        token = content_fingerprint({"fn": dataset_fingerprint})
        assert token["fn"]["callable"].endswith("dataset_fingerprint")

    def test_callable_instances_tokenized_by_state_not_address(self):
        from repro.matching.threshold import WeightedAverageModel

        one = content_fingerprint(WeightedAverageModel({"name": 2.0}))
        same = content_fingerprint(WeightedAverageModel({"name": 2.0}))
        other = content_fingerprint(WeightedAverageModel({"zip": 5.0}))
        assert one == same, "equal config must produce equal tokens"
        assert one != other, "different config must produce different tokens"
        assert "0x" not in repr(one), "token must not embed a memory address"

    def test_plain_objects_tokenized_by_state(self):
        class Knob:
            def __init__(self, level):
                self.level = level

        assert content_fingerprint(Knob(3)) == content_fingerprint(Knob(3))
        assert content_fingerprint(Knob(3)) != content_fingerprint(Knob(4))
        assert "0x" not in repr(content_fingerprint(Knob(3)))

    def test_nested_structures_are_canonicalized(self):
        token = content_fingerprint({"values": {0.5, 0.7}, "pair": ("a", "b")})
        assert token == {"values": [0.5, 0.7], "pair": ["a", "b"]}
