"""Tests for the two-tier content-addressed result cache."""

import pytest

from repro.engine.cache import MISS, ResultCache
from repro.storage.database import FrostStore


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("k") is MISS
        cache.put("k", "metrics", {"f1": 1.0})
        assert cache.get("k") == {"f1": 1.0}
        assert cache.stats()["memory_hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_drops_least_recently_used(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", "metrics", 1)
        cache.put("b", "metrics", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", "metrics", 3)
        assert cache.get("b") is MISS
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestPersistentTier:
    def test_store_hit_survives_memory_eviction(self):
        with FrostStore() as store:
            cache = ResultCache(max_entries=1, store=store)
            cache.put("a", "metrics", {"x": 1})
            cache.put("b", "metrics", {"y": 2})  # evicts a from memory
            assert cache.get("a") == {"x": 1}
            assert cache.stats()["store_hits"] == 1

    def test_cache_survives_reopen(self, tmp_path):
        path = tmp_path / "cache.db"
        with FrostStore(path) as store:
            ResultCache(store=store).put("k", "diagram", {"points": []})
        with FrostStore(path) as store:
            fresh = ResultCache(store=store)
            assert fresh.get("k") == {"points": []}

    def test_clear_drops_both_tiers(self):
        with FrostStore() as store:
            cache = ResultCache(store=store)
            cache.put("k", "metrics", 1)
            cache.clear()
            assert cache.get("k") is MISS
            assert store.cache_entries() == []

    def test_store_entries_record_kind(self):
        with FrostStore() as store:
            cache = ResultCache(store=store)
            cache.put("k1", "metrics", 1)
            cache.put("k2", "diagram", 2)
            kinds = {kind for _, kind in store.cache_entries()}
            assert kinds == {"metrics", "diagram"}
