"""Tests for cluster-based quality metrics (§3.2.2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Clustering, ConfusionMatrix
from repro.metrics import clusterwise


def random_clustering(rng, ids):
    labels = {record_id: rng.randrange(1 + len(ids) // 2) for record_id in ids}
    return Clustering.from_assignment({k: str(v) for k, v in labels.items()})


@st.composite
def clustering_pairs(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    ids = [f"r{i}" for i in range(n)]
    return ids, random_clustering(rng, ids), random_clustering(rng, ids)


IDS = ["a", "b", "c", "d", "e"]
TRUTH = Clustering([["a", "b", "c"], ["d", "e"]])


class TestClosestClusterF1:
    def test_identical_clusterings_score_one(self):
        assert clusterwise.closest_cluster_f1(TRUTH, TRUTH, IDS) == pytest.approx(1.0)

    def test_partial_overlap(self):
        experiment = Clustering([["a", "b"], ["c", "d", "e"]])
        precision = clusterwise.closest_cluster_precision(experiment, TRUTH, IDS)
        # {a,b} vs {a,b,c}: 2/3; {c,d,e} vs {d,e}: 2/3
        assert precision == pytest.approx(2 / 3)

    def test_all_singletons_vs_clusters(self):
        singletons = Clustering([[x] for x in IDS])
        f1 = clusterwise.closest_cluster_f1(singletons, TRUTH, IDS)
        assert 0.0 < f1 < 1.0

    @given(clustering_pairs())
    @settings(max_examples=50)
    def test_bounds_and_symmetry_of_roles(self, case):
        ids, experiment, truth = case
        precision = clusterwise.closest_cluster_precision(experiment, truth, ids)
        recall = clusterwise.closest_cluster_recall(experiment, truth, ids)
        assert 0.0 <= precision <= 1.0
        assert 0.0 <= recall <= 1.0
        # swapping arguments swaps precision and recall
        assert clusterwise.closest_cluster_precision(
            truth, experiment, ids
        ) == pytest.approx(recall)


class TestVariationOfInformation:
    def test_identical_is_zero(self):
        assert clusterwise.variation_of_information(TRUTH, TRUTH, IDS) == 0.0

    def test_positive_for_different(self):
        experiment = Clustering([["a", "b", "c", "d", "e"]])
        assert clusterwise.variation_of_information(experiment, TRUTH, IDS) > 0.0

    def test_symmetric(self):
        experiment = Clustering([["a", "d"], ["b", "c"]])
        forward = clusterwise.variation_of_information(experiment, TRUTH, IDS)
        backward = clusterwise.variation_of_information(TRUTH, experiment, IDS)
        assert forward == pytest.approx(backward)

    def test_empty_universe(self):
        assert clusterwise.variation_of_information(
            Clustering([]), Clustering([]), []
        ) == 0.0

    @given(clustering_pairs())
    @settings(max_examples=50)
    def test_non_negative(self, case):
        ids, experiment, truth = case
        assert clusterwise.variation_of_information(experiment, truth, ids) >= 0.0

    @given(clustering_pairs())
    @settings(max_examples=40)
    def test_triangle_inequality(self, case):
        ids, first, second = case
        third = Clustering([ids])  # everything in one cluster
        d12 = clusterwise.variation_of_information(first, second, ids)
        d13 = clusterwise.variation_of_information(first, third, ids)
        d23 = clusterwise.variation_of_information(third, second, ids)
        assert d12 <= d13 + d23 + 1e-9


class TestGeneralizedMergeDistance:
    def test_identity_costs_zero(self):
        assert clusterwise.basic_merge_distance(TRUTH, TRUTH, IDS) == 0.0

    def test_single_merge(self):
        split = Clustering([["a", "b"], ["c"], ["d", "e"]])
        assert clusterwise.basic_merge_distance(split, TRUTH, IDS) == 1.0

    def test_single_split(self):
        merged = Clustering([["a", "b", "c", "d", "e"]])
        # one split separates {a,b,c} from {d,e}
        assert clusterwise.basic_merge_distance(merged, TRUTH, IDS) == 1.0

    def test_pairwise_gmd_equals_fp_plus_fn(self):
        experiment = Clustering([["a", "b"], ["c", "d"], ["e"]])
        matrix = ConfusionMatrix.from_clusterings(experiment, TRUTH, 10)
        assert clusterwise.pairwise_merge_distance(
            experiment, TRUTH, IDS
        ) == pytest.approx(matrix.false_positives + matrix.false_negatives)

    @given(clustering_pairs())
    @settings(max_examples=50)
    def test_pairwise_gmd_identity_property(self, case):
        """Menestrina et al.: GMD with product costs == pair disagreements."""
        ids, experiment, truth = case
        total = len(ids) * (len(ids) - 1) // 2
        matrix = ConfusionMatrix.from_clusterings(experiment, truth, total)
        assert clusterwise.pairwise_merge_distance(
            experiment, truth, ids
        ) == pytest.approx(matrix.false_positives + matrix.false_negatives)

    @given(clustering_pairs())
    @settings(max_examples=50)
    def test_gmd_non_negative(self, case):
        ids, experiment, truth = case
        assert clusterwise.basic_merge_distance(experiment, truth, ids) >= 0.0

    def test_custom_cost_functions(self):
        merged = Clustering([["a", "b", "c", "d", "e"]])
        expensive_split = clusterwise.generalized_merge_distance(
            merged, TRUTH, merge_cost=lambda x, y: 0.0,
            split_cost=lambda x, y: 10.0, records=IDS,
        )
        assert expensive_split == 10.0


class TestExactClusterMetrics:
    def test_perfect(self):
        assert clusterwise.cluster_f1(TRUTH, TRUTH) == 1.0

    def test_partial(self):
        experiment = Clustering([["a", "b", "c"], ["d"], ["e"]])
        assert clusterwise.cluster_precision(experiment, TRUTH) == 1.0
        assert clusterwise.cluster_recall(experiment, TRUTH) == 0.5

    def test_singletons_ignored(self):
        experiment = Clustering([["a"], ["b"], ["c"]])
        # no non-trivial clusters -> vacuous precision
        assert clusterwise.cluster_precision(experiment, TRUTH) == 1.0
        assert clusterwise.cluster_recall(experiment, TRUTH) == 0.0

    def test_f1_zero_when_disjoint(self):
        experiment = Clustering([["a", "d"], ["b", "e"]])
        assert clusterwise.cluster_f1(experiment, TRUTH) == 0.0


class TestAdjustedRandIndex:
    def test_identical_is_one(self):
        assert clusterwise.adjusted_rand_index(TRUTH, TRUTH, IDS) == pytest.approx(1.0)

    def test_trivial_universe(self):
        assert clusterwise.adjusted_rand_index(
            Clustering([]), Clustering([]), ["a"]
        ) == 1.0

    @given(clustering_pairs())
    @settings(max_examples=50)
    def test_upper_bound(self, case):
        ids, experiment, truth = case
        assert clusterwise.adjusted_rand_index(experiment, truth, ids) <= 1.0 + 1e-9

    @given(clustering_pairs())
    @settings(max_examples=50)
    def test_symmetric(self, case):
        ids, experiment, truth = case
        assert clusterwise.adjusted_rand_index(
            experiment, truth, ids
        ) == pytest.approx(clusterwise.adjusted_rand_index(truth, experiment, ids))
