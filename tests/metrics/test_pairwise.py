"""Tests for pair-based quality metrics (§3.2.1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfusionMatrix
from repro.metrics import pairwise

matrices = st.builds(
    ConfusionMatrix,
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
)

PERFECT = ConfusionMatrix(10, 0, 0, 90)
ALL_WRONG = ConfusionMatrix(0, 10, 10, 80)
MIXED = ConfusionMatrix(6, 2, 4, 88)


class TestPrecisionRecall:
    def test_perfect(self):
        assert pairwise.precision(PERFECT) == 1.0
        assert pairwise.recall(PERFECT) == 1.0

    def test_mixed(self):
        assert pairwise.precision(MIXED) == pytest.approx(6 / 8)
        assert pairwise.recall(MIXED) == pytest.approx(6 / 10)

    def test_empty_prediction_gives_vacuous_precision(self):
        matrix = ConfusionMatrix(0, 0, 5, 5)
        assert pairwise.precision(matrix) == 1.0
        assert pairwise.recall(matrix) == 0.0

    def test_no_true_duplicates_gives_vacuous_recall(self):
        matrix = ConfusionMatrix(0, 5, 0, 5)
        assert pairwise.recall(matrix) == 1.0


class TestFScores:
    def test_f1_harmonic_mean(self):
        p = pairwise.precision(MIXED)
        r = pairwise.recall(MIXED)
        assert pairwise.f1_score(MIXED) == pytest.approx(2 * p * r / (p + r))

    def test_f1_zero_when_nothing_right(self):
        assert pairwise.f1_score(ALL_WRONG) == 0.0

    def test_f_beta_weights_recall(self):
        high_recall = ConfusionMatrix(9, 9, 1, 81)
        high_precision = ConfusionMatrix(5, 0, 5, 90)
        assert pairwise.f_beta(high_recall, beta=2) > pairwise.f_beta(
            high_precision, beta=2
        )

    def test_f_beta_rejects_nonpositive_beta(self):
        with pytest.raises(ValueError, match="positive"):
            pairwise.f_beta(MIXED, beta=0)

    def test_f_star_definition(self):
        assert pairwise.f_star(MIXED) == pytest.approx(6 / 12)

    @given(matrices)
    @settings(max_examples=100)
    def test_f_star_relates_to_f1(self, matrix):
        """Hand et al.: f* = f1 / (2 - f1)."""
        f1 = pairwise.f1_score(matrix)
        if matrix.predicted_positives == 0 or matrix.actual_positives == 0:
            return  # vacuous conventions differ between the two formulas
        assert pairwise.f_star(matrix) == pytest.approx(f1 / (2 - f1))

    def test_jaccard_is_f_star(self):
        assert pairwise.jaccard_index(MIXED) == pairwise.f_star(MIXED)


class TestAccuracyFamily:
    def test_accuracy(self):
        assert pairwise.accuracy(MIXED) == pytest.approx(94 / 100)

    def test_accuracy_class_imbalance_weakness(self):
        """The §3.2.1 caveat: all-negative predictions still score ~1."""
        lazy = ConfusionMatrix(0, 0, 10, 9990)
        assert pairwise.accuracy(lazy) > 0.99
        assert pairwise.f1_score(lazy) == 0.0

    def test_specificity(self):
        assert pairwise.specificity(MIXED) == pytest.approx(88 / 90)

    def test_balanced_accuracy(self):
        expected = (pairwise.recall(MIXED) + pairwise.specificity(MIXED)) / 2
        assert pairwise.balanced_accuracy(MIXED) == pytest.approx(expected)

    def test_rates_complement(self):
        assert pairwise.false_positive_rate(MIXED) == pytest.approx(
            1 - pairwise.specificity(MIXED)
        )
        assert pairwise.false_negative_rate(MIXED) == pytest.approx(
            1 - pairwise.recall(MIXED)
        )


class TestCorrelationMetrics:
    def test_fowlkes_mallows_geometric_mean(self):
        expected = math.sqrt(pairwise.precision(MIXED) * pairwise.recall(MIXED))
        assert pairwise.fowlkes_mallows(MIXED) == pytest.approx(expected)

    def test_mcc_perfect(self):
        assert pairwise.matthews_correlation(PERFECT) == pytest.approx(1.0)

    def test_mcc_inverted(self):
        inverted = ConfusionMatrix(0, 90, 10, 0)
        assert pairwise.matthews_correlation(inverted) < 0

    def test_mcc_degenerate_is_zero(self):
        assert pairwise.matthews_correlation(ConfusionMatrix(0, 0, 0, 10)) == 0.0

    @given(matrices)
    @settings(max_examples=100)
    def test_mcc_bounds(self, matrix):
        assert -1.0 <= pairwise.matthews_correlation(matrix) <= 1.0 + 1e-12

    @given(matrices)
    @settings(max_examples=100)
    def test_informedness_and_markedness_bounds(self, matrix):
        assert -1.0 <= pairwise.bookmaker_informedness(matrix) <= 1.0 + 1e-12
        assert -1.0 <= pairwise.markedness(matrix) <= 1.0 + 1e-12


class TestBlockingMetrics:
    def test_reduction_ratio(self):
        # 8 candidates out of 100 pairs -> 92% reduction
        assert pairwise.reduction_ratio(MIXED) == pytest.approx(0.92)

    def test_aliases(self):
        assert pairwise.pairs_completeness(MIXED) == pairwise.recall(MIXED)
        assert pairwise.pairs_quality(MIXED) == pairwise.precision(MIXED)

    def test_prevalence(self):
        assert pairwise.prevalence(MIXED) == pytest.approx(0.1)


class TestUnitIntervalBounds:
    @given(matrices)
    @settings(max_examples=100)
    def test_rates_in_unit_interval(self, matrix):
        for metric in (
            pairwise.precision,
            pairwise.recall,
            pairwise.f1_score,
            pairwise.f_star,
            pairwise.accuracy,
            pairwise.specificity,
            pairwise.balanced_accuracy,
            pairwise.fowlkes_mallows,
            pairwise.negative_predictive_value,
            pairwise.prevalence,
        ):
            value = metric(matrix)
            assert 0.0 <= value <= 1.0 + 1e-12, metric.__name__
