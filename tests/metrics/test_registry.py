"""Tests for the metric registry (extensibility point, §3.2)."""

import pytest

from repro.core import ConfusionMatrix
from repro.metrics.registry import MetricRegistry, default_registry


class TestRegistry:
    def test_default_contains_core_metrics(self):
        registry = default_registry()
        for name in ("precision", "recall", "f1", "f_star", "matthews_correlation"):
            assert name in registry

    def test_register_and_get(self):
        registry = MetricRegistry()
        registry.register("always_one", lambda matrix: 1.0)
        assert registry.get("always_one")(ConfusionMatrix(1, 1, 1, 1)) == 1.0

    def test_collision_rejected(self):
        registry = default_registry()
        with pytest.raises(ValueError, match="already registered"):
            registry.register("precision", lambda matrix: 0.0)

    def test_collision_with_replace(self):
        registry = default_registry()
        registry.register("precision", lambda matrix: 0.0, replace=True)
        assert registry.get("precision")(ConfusionMatrix(5, 0, 0, 5)) == 0.0

    def test_unknown_metric_lists_known(self):
        registry = default_registry()
        with pytest.raises(KeyError, match="known metrics"):
            registry.get("nope")

    def test_evaluate_all(self):
        registry = default_registry()
        values = registry.evaluate(ConfusionMatrix(5, 0, 0, 5))
        assert values["precision"] == 1.0
        assert len(values) == len(registry)

    def test_evaluate_selected(self):
        registry = default_registry()
        values = registry.evaluate(
            ConfusionMatrix(1, 1, 1, 1), names=["f1", "recall"]
        )
        assert sorted(values) == ["f1", "recall"]

    def test_len_and_iter(self):
        registry = default_registry()
        assert len(list(registry)) == len(registry) >= 15
