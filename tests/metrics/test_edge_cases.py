"""Edge cases of the pair- and cluster-based metrics.

Degenerate inputs the evaluation surfaces must not crash or mis-score
on: empty candidate sets (a blocker that emitted nothing), clusterings
made of singletons only, and gold standards mentioning records that are
absent from the dataset under evaluation.
"""

import pytest

from repro.core.clustering import Clustering
from repro.core.confusion import ConfusionMatrix
from repro.metrics.blocking_quality import evaluate_blocking
from repro.metrics.clusterwise import (
    adjusted_rand_index,
    basic_merge_distance,
    closest_cluster_f1,
    closest_cluster_precision,
    closest_cluster_recall,
    cluster_f1,
    cluster_precision,
    cluster_recall,
    variation_of_information,
)
from repro.metrics.pairwise import (
    f1_score,
    pairs_completeness,
    pairs_quality,
    precision,
    recall,
    reduction_ratio,
)


class TestEmptyCandidateSet:
    """A blocker (or decision model) that emitted nothing at all."""

    def matrix(self):
        return ConfusionMatrix.from_pair_sets(
            [], [("a", "b"), ("c", "d")], total_pairs=10
        )

    def test_precision_is_vacuously_perfect(self):
        assert precision(self.matrix()) == 1.0
        assert pairs_quality(self.matrix()) == 1.0

    def test_recall_and_completeness_are_zero(self):
        assert recall(self.matrix()) == 0.0
        assert pairs_completeness(self.matrix()) == 0.0
        assert f1_score(self.matrix()) == 0.0

    def test_reduction_ratio_is_total(self):
        assert reduction_ratio(self.matrix()) == 1.0

    def test_blocking_quality_mirrors_the_conventions(self):
        quality = evaluate_blocking([], [("a", "b")], total_pairs=6)
        assert quality.pairs_completeness == 0.0
        assert quality.reduction_ratio == 1.0
        assert quality.pairs_quality == 1.0

    def test_empty_gold_too_is_all_perfect(self):
        matrix = ConfusionMatrix.from_pair_sets([], [], total_pairs=3)
        assert precision(matrix) == recall(matrix) == 1.0
        quality = evaluate_blocking([], [], total_pairs=0)
        assert quality.pairs_completeness == 1.0
        assert quality.reduction_ratio == 0.0  # nothing to prune


class TestSingletonClusters:
    """Clusterings whose explicit clusters are all singletons behave
    like the empty clustering (singletons are representation-dependent)."""

    def test_identical_singleton_clusterings_agree_perfectly(self):
        experiment = Clustering([["a"], ["b"], ["c"]])
        truth = Clustering([])
        records = ["a", "b", "c"]
        assert variation_of_information(experiment, truth, records) == 0.0
        assert adjusted_rand_index(experiment, truth, records) == 1.0
        assert basic_merge_distance(experiment, truth, records) == 0.0

    def test_exact_cluster_metrics_ignore_singletons(self):
        experiment = Clustering([["a"], ["b"]])
        truth = Clustering([["a", "b"]])
        assert cluster_precision(experiment, truth) == 1.0  # nothing nontrivial
        assert cluster_recall(experiment, truth) == 0.0
        assert cluster_f1(experiment, truth) == 0.0

    def test_closest_cluster_scores_stay_in_range(self):
        experiment = Clustering([["a"], ["b"], ["c"]])
        truth = Clustering([["a", "b"]])
        records = ["a", "b", "c"]
        p = closest_cluster_precision(experiment, truth, records)
        r = closest_cluster_recall(experiment, truth, records)
        assert 0.0 <= p <= 1.0 and 0.0 <= r <= 1.0
        assert 0.0 <= closest_cluster_f1(experiment, truth, records) <= 1.0

    def test_both_empty_clusterings_are_perfect(self):
        empty = Clustering([])
        assert closest_cluster_f1(empty, empty) == 1.0
        assert variation_of_information(empty, empty) == 0.0
        assert cluster_f1(empty, empty) == 1.0


class TestGoldRecordsAbsentFromDataset:
    """A gold standard may mention records the dataset slice lacks."""

    def test_pairwise_counts_unreachable_gold_pairs_as_misses(self):
        # dataset has 3 records (3 pairs); gold clusters records x, y
        # that are not among them
        matrix = ConfusionMatrix.from_pair_sets(
            [("a", "b")], [("x", "y")], total_pairs=3
        )
        assert matrix.true_positives == 0
        assert matrix.false_negatives == 1
        assert recall(matrix) == 0.0
        assert precision(matrix) == 0.0

    def test_blocking_quality_via_evaluate_blocker_excludes_them(self):
        from repro.core.experiment import GoldStandard
        from repro.core.records import Dataset, Record

        dataset = Dataset(
            [Record("a", {"n": "x"}), Record("b", {"n": "x"})], name="d"
        )
        gold = GoldStandard(
            Clustering([["a", "b"], ["ghost1", "ghost2"]]), name="g"
        )
        from repro.metrics.blocking_quality import evaluate_blocker

        quality = evaluate_blocker(
            dataset, gold, lambda ds: {("a", "b")}
        )
        # the ghost pair is unreachable: completeness must still be 1.0
        assert quality.gold_pair_count == 1
        assert quality.pairs_completeness == 1.0

    def test_cluster_metrics_with_restricted_universe(self):
        experiment = Clustering([["a", "b"]])
        truth = Clustering([["a", "x"], ["b", "y"]])
        records = ["a", "b"]  # the dataset's records only
        vi = variation_of_information(experiment, truth, records)
        assert vi >= 0.0
        assert 0.0 <= closest_cluster_recall(experiment, truth, records) <= 1.0
        assert 0.0 <= adjusted_rand_index(experiment, truth, records) <= 1.0


class TestBlockingQualityValidation:
    def test_negative_total_pairs_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            evaluate_blocking([], [], total_pairs=-1)

    def test_as_dict_is_json_ready(self):
        import json

        quality = evaluate_blocking(
            [("a", "b"), ("a", "c")], [("a", "b")], total_pairs=3
        )
        payload = json.loads(json.dumps(quality.as_dict()))
        assert payload["true_positives"] == 1
        assert payload["pairs_quality"] == 0.5
