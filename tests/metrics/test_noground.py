"""Tests for quality estimation without ground truth (§3.2.3)."""

import pytest

from repro.core import Clustering, Experiment, Match
from repro.metrics import noground


class TestClosureDistance:
    def test_open_chain(self):
        experiment = Experiment([("a", "b", 0.9), ("b", "c", 0.8)])
        assert noground.transitive_closure_distance(experiment) == 1

    def test_closed_triangle(self):
        experiment = Experiment([("a", "b"), ("b", "c"), ("a", "c")])
        assert noground.transitive_closure_distance(experiment) == 0

    def test_ignores_clustering_added_pairs(self):
        experiment = Experiment(
            [
                Match(pair=("a", "b")),
                Match(pair=("b", "c")),
                Match(pair=("a", "c"), from_clustering=True),
            ]
        )
        # original pairs a-b, b-c are open
        assert noground.transitive_closure_distance(experiment) == 1


class TestComponentRedundancy:
    def test_empty_is_one(self):
        assert noground.component_redundancy([]) == 1.0

    def test_pair_component_is_complete(self):
        assert noground.component_redundancy([("a", "b")]) == 1.0

    def test_spanning_tree_is_zero(self):
        assert noground.component_redundancy([("a", "b"), ("b", "c")]) == 0.0

    def test_complete_triangle_is_one(self):
        pairs = [("a", "b"), ("b", "c"), ("a", "c")]
        assert noground.component_redundancy(pairs) == 1.0

    def test_mixed_components_average(self):
        pairs = [("a", "b"), ("c", "d"), ("d", "e")]  # complete + tree
        assert noground.component_redundancy(pairs) == pytest.approx(0.5)


class TestBridges:
    def test_chain_all_bridges(self):
        assert noground.bridge_count([("a", "b"), ("b", "c")]) == 2

    def test_triangle_no_bridges(self):
        assert noground.bridge_count([("a", "b"), ("b", "c"), ("a", "c")]) == 0

    def test_triangle_with_tail(self):
        pairs = [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")]
        assert noground.bridge_count(pairs) == 1

    def test_long_chain_does_not_recurse(self):
        pairs = [(f"n{i}", f"n{i+1}") for i in range(5000)]
        assert noground.bridge_count(pairs) == 5000


class TestLinkNetworkQuality:
    def test_empty_experiment(self):
        assert noground.link_network_quality(Experiment([])) == 1.0

    def test_redundant_beats_chained(self):
        redundant = Experiment([("a", "b"), ("b", "c"), ("a", "c")])
        chained = Experiment([("a", "b"), ("b", "c"), ("c", "d")])
        assert noground.link_network_quality(
            redundant
        ) > noground.link_network_quality(chained)

    def test_bounds(self):
        for pairs in ([("a", "b")], [("a", "b"), ("b", "c")]):
            value = noground.link_network_quality(Experiment(pairs))
            assert 0.0 <= value <= 1.0


class TestCompactnessSparsity:
    def test_compactness_is_mean_score(self):
        experiment = Experiment([("a", "b", 0.8), ("c", "d", 0.6)])
        assert noground.cluster_compactness(experiment) == pytest.approx(0.7)

    def test_compactness_requires_scores(self):
        with pytest.raises(ValueError, match="scores"):
            noground.cluster_compactness(Experiment([("a", "b")]))

    def test_sparsity(self):
        assert noground.neighborhood_sparsity(
            Experiment([("a", "b", 0.9)]), [0.2, 0.4]
        ) == pytest.approx(0.3)

    def test_ratio(self):
        experiment = Experiment([("a", "b", 0.9)])
        assert noground.compactness_sparsity_ratio(
            experiment, [0.3]
        ) == pytest.approx(3.0)

    def test_ratio_infinite_when_isolated(self):
        experiment = Experiment([("a", "b", 0.9)])
        assert noground.compactness_sparsity_ratio(experiment, []) == float("inf")


class TestClusteringAgreement:
    def test_single_clustering(self):
        assert noground.clustering_agreement([Clustering([["a", "b"]])]) == 1.0

    def test_identical_clusterings(self):
        clustering = Clustering([["a", "b", "c"]])
        assert noground.clustering_agreement([clustering, clustering]) == 1.0

    def test_disjoint_clusterings(self):
        first = Clustering([["a", "b"]])
        second = Clustering([["c", "d"]])
        assert noground.clustering_agreement([first, second]) == 0.0

    def test_partial_agreement(self):
        first = Clustering([["a", "b", "c"]])  # 3 pairs
        second = Clustering([["a", "b"]])  # 1 pair, shared
        assert noground.clustering_agreement([first, second]) == pytest.approx(1 / 3)


class TestConsensus:
    def test_majority_vote(self):
        experiments = [
            Experiment([("a", "b"), ("c", "d")]),
            Experiment([("a", "b")]),
            Experiment([("a", "b"), ("e", "f")]),
        ]
        assert noground.majority_vote_pairs(experiments) == {("a", "b")}

    def test_majority_empty_input(self):
        assert noground.majority_vote_pairs([]) == set()

    def test_consensus_deviation(self):
        agreeing = Experiment([("a", "b")])
        others = [Experiment([("a", "b")]), Experiment([("a", "b")])]
        assert noground.consensus_deviation(agreeing, others) == 0

    def test_deviant_experiment(self):
        deviant = Experiment([("x", "y")])
        others = [Experiment([("a", "b")]), Experiment([("a", "b")])]
        # deviant misses the majority pair (a,b) and adds (x,y)
        assert noground.consensus_deviation(deviant, others) == 2
