"""Tests for the KPI decision matrix and aggregation framework (§3.3)."""

import pytest

from repro.kpis.decision import KpiDecisionMatrix, SolutionEntry
from repro.kpis.model import (
    DeploymentType,
    Effort,
    LifecycleExpenditures,
    SolutionProperties,
)


@pytest.fixture
def entries():
    cheap = SolutionEntry(
        properties=SolutionProperties(
            name="cheap-rules",
            lifecycle=LifecycleExpenditures(
                general_costs=0.0, technical_configuration=Effort(5, 20)
            ),
            deployment_types=frozenset({DeploymentType.ON_PREMISE}),
        ),
        quality_metrics={"f1": 0.7, "precision": 0.8},
    )
    expensive = SolutionEntry(
        properties=SolutionProperties(
            name="premium-ml",
            lifecycle=LifecycleExpenditures(
                general_costs=10_000.0, domain_configuration=Effort(40, 80)
            ),
            deployment_types=frozenset({DeploymentType.CLOUD}),
        ),
        quality_metrics={"f1": 0.92, "precision": 0.95},
    )
    return [cheap, expensive]


class TestDecisionMatrix:
    def test_rows_side_by_side(self, entries):
        matrix = KpiDecisionMatrix(entries)
        rows = matrix.rows()
        assert [row["solution"] for row in rows] == ["cheap-rules", "premium-ml"]
        assert rows[0]["f1"] == 0.7
        assert rows[1]["estimated_cost"] > rows[0]["estimated_cost"]

    def test_rows_include_categorical(self, entries):
        rows = KpiDecisionMatrix(entries).rows()
        assert rows[0]["deployment"] == ["on-premise"]

    def test_render_contains_solutions_and_metrics(self, entries):
        text = KpiDecisionMatrix(entries).render(metrics=["f1"])
        assert "cheap-rules" in text
        assert "premium-ml" in text
        assert "f1" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            KpiDecisionMatrix([])

    def test_duplicate_names_rejected(self, entries):
        with pytest.raises(ValueError, match="duplicate"):
            KpiDecisionMatrix([entries[0], entries[0]])


class TestAggregation:
    def test_quality_first_aggregator(self, entries):
        matrix = KpiDecisionMatrix(entries)
        best = matrix.best(lambda entry: entry.quality_metrics["f1"])
        assert best.name == "premium-ml"

    def test_budget_aware_aggregator(self, entries):
        """The §3.3 framework: convert effort to cost and trade off."""
        matrix = KpiDecisionMatrix(entries)

        def roi(entry):
            cost = entry.properties.lifecycle.total_cost()
            return entry.quality_metrics["f1"] - cost / 20_000.0

        best = matrix.best(roi)
        assert best.name == "cheap-rules"

    def test_aggregate_returns_all_scores(self, entries):
        scores = KpiDecisionMatrix(entries).aggregate(
            lambda entry: entry.quality_metrics["precision"]
        )
        assert set(scores) == {"cheap-rules", "premium-ml"}
