"""Tests for the soft-KPI data model (§3.3)."""

import pytest

from repro.kpis.model import (
    DeploymentType,
    Effort,
    ExperimentKpis,
    InterfaceType,
    LifecycleExpenditures,
    MatchingTechnique,
    SolutionProperties,
)


class TestEffort:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            Effort(-1, 50)
        with pytest.raises(ValueError, match="expertise"):
            Effort(1, 150)

    def test_cost_grows_with_expertise(self):
        junior = Effort(10, 0)
        senior = Effort(10, 100)
        assert senior.cost() > junior.cost()

    def test_cost_formula(self):
        assert Effort(10, 0).cost(base_rate=40, expertise_premium=2.0) == 400.0
        assert Effort(10, 100).cost(base_rate=40, expertise_premium=2.0) == 1200.0

    def test_addition_weights_expertise_by_hours(self):
        combined = Effort(10, 100) + Effort(30, 0)
        assert combined.hr_amount == 40
        assert combined.expertise == pytest.approx(25.0)

    def test_addition_zero_hours(self):
        combined = Effort(0, 80) + Effort(0, 20)
        assert combined.hr_amount == 0
        assert combined.expertise == 80  # max of the two


class TestLifecycleExpenditures:
    def test_total_effort_combines_phases(self):
        lifecycle = LifecycleExpenditures(
            general_costs=1000.0,
            production_readiness=Effort(5, 80),
            domain_configuration=Effort(20, 30),
            technical_configuration=Effort(10, 90),
        )
        assert lifecycle.total_effort().hr_amount == 35

    def test_total_cost_adds_general_costs(self):
        lifecycle = LifecycleExpenditures(
            general_costs=500.0, domain_configuration=Effort(10, 0)
        )
        assert lifecycle.total_cost(base_rate=40) == 500.0 + 400.0

    def test_defaults_are_zero(self):
        lifecycle = LifecycleExpenditures()
        assert lifecycle.total_cost() == 0.0


class TestCategoricalKpis:
    def test_enum_values(self):
        assert DeploymentType.ON_PREMISE.value == "on-premise"
        assert InterfaceType.API.value == "api"
        assert MatchingTechnique.RULE_BASED.value == "rule-based"

    def test_solution_properties(self):
        properties = SolutionProperties(
            name="matcher-x",
            deployment_types=frozenset({DeploymentType.CLOUD}),
            techniques=frozenset(
                {MatchingTechnique.MACHINE_LEARNING, MatchingTechnique.RULE_BASED}
            ),
        )
        assert DeploymentType.CLOUD in properties.deployment_types
        assert len(properties.techniques) == 2


class TestExperimentKpis:
    def test_total_effort(self):
        kpis = ExperimentKpis(
            setup_effort=Effort(2, 40),
            configuration_effort=Effort(6, 60),
            runtime_seconds=12.5,
        )
        assert kpis.total_effort().hr_amount == 8
        assert kpis.runtime_seconds == 12.5
