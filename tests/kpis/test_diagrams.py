"""Tests for effort/metric diagrams (§3.3, Figure 6 machinery)."""

import pytest

from repro.kpis.diagrams import (
    EffortCurve,
    EffortPoint,
    effort_to_reach,
    out_of_box_score,
    render_effort_diagram,
)


@pytest.fixture
def curve():
    # noisy run: dips below earlier best at 3h
    return EffortCurve(
        solution="demo",
        points=[
            EffortPoint(0.0, 0.30),
            EffortPoint(1.0, 0.35),
            EffortPoint(2.0, 0.70),  # breakthrough
            EffortPoint(3.0, 0.60),  # regression
            EffortPoint(4.0, 0.80),
            EffortPoint(10.0, 0.82),
            EffortPoint(14.0, 0.825),
            EffortPoint(20.0, 0.826),
        ],
    )


class TestEffortCurve:
    def test_points_sorted_on_init(self):
        curve = EffortCurve(
            "x", [EffortPoint(5.0, 0.5), EffortPoint(1.0, 0.2)]
        )
        assert [p.effort_hours for p in curve.points] == [1.0, 5.0]

    def test_best_so_far_monotone(self, curve):
        envelope = curve.best_so_far()
        values = [p.metric_value for p in envelope]
        assert values == sorted(values)
        assert envelope[3].metric_value == 0.70  # regression flattened

    def test_final_value(self, curve):
        assert curve.final_value() == 0.826

    def test_final_value_empty_rejected(self):
        with pytest.raises(ValueError, match="no points"):
            EffortCurve("x", []).final_value()

    def test_breakthrough_detection(self, curve):
        assert curve.breakthrough(jump=0.3) == 2.0

    def test_no_breakthrough(self):
        flat = EffortCurve(
            "flat", [EffortPoint(float(h), 0.5 + 0.001 * h) for h in range(10)]
        )
        assert flat.breakthrough(jump=0.3) is None

    def test_barrier_detection(self, curve):
        barrier = curve.barrier(window=4.0, improvement=0.01)
        assert barrier is not None
        assert barrier >= 4.0  # big gains stop after the 4h point

    def test_barrier_requires_window_of_evidence(self, curve):
        """A candidate barrier at the very tail is not a barrier."""
        # the last observation is at 20h; a 10h window leaves 10h as the
        # latest point with enough evidence
        barrier = curve.barrier(window=10.0, improvement=0.01)
        assert barrier is not None
        assert barrier <= 10.0

    def test_no_barrier_when_still_improving(self):
        rising = EffortCurve(
            "rising",
            [EffortPoint(float(h), 0.1 * h) for h in range(10)],
        )
        assert rising.barrier(window=2.0, improvement=0.05) is None

    def test_barrier_on_empty_curve(self):
        assert EffortCurve("x", []).barrier() is None

    def test_barrier_short_curve_lacks_evidence(self):
        short = EffortCurve(
            "short", [EffortPoint(0.0, 0.5), EffortPoint(1.0, 0.5)]
        )
        assert short.barrier(window=4.0) is None


class TestHelpers:
    def test_effort_to_reach(self, curve):
        assert effort_to_reach(curve, 0.7) == 2.0
        assert effort_to_reach(curve, 0.99) is None

    def test_out_of_box(self, curve):
        assert out_of_box_score(curve) == 0.30

    def test_out_of_box_empty_rejected(self):
        with pytest.raises(ValueError, match="no points"):
            out_of_box_score(EffortCurve("x", []))

    def test_render_diagram(self, curve):
        text = render_effort_diagram([curve])
        assert "demo" in text
        assert "effort" in text

    def test_render_empty(self):
        assert render_effort_diagram([]) == "(no curves)"
