"""Tests for the Figure 6 / Figure 7 study simulators (§5.5)."""

import pytest

from repro.datagen import make_person_benchmark
from repro.kpis.effort_study import (
    ContestTimelineSimulator,
    EffortStudySimulator,
    SolutionProfile,
)


@pytest.fixture(scope="module")
def bench_data():
    return make_person_benchmark(250, seed=21)


@pytest.fixture(scope="module")
def curves(bench_data):
    simulator = EffortStudySimulator(
        dataset=bench_data.dataset,
        gold=bench_data.gold,
        profiles=[
            SolutionProfile(
                "rule-based", out_of_box=0.3, plateau=0.8,
                breakthrough_hours=5.0,
            ),
            SolutionProfile(
                "ml", out_of_box=0.2, plateau=0.92, breakthrough_hours=8.0,
            ),
        ],
        checkpoint_hours=1.0,
        total_hours=24.0,
        seed=3,
    )
    return simulator.run()


class TestEffortStudy:
    def test_one_curve_per_profile(self, curves):
        assert [c.solution for c in curves] == ["rule-based", "ml"]

    def test_checkpoints_cover_total_hours(self, curves):
        assert len(curves[0].points) == 25  # 0..24 inclusive

    def test_quality_improves_with_effort(self, curves):
        """Figure 6 shape: final >> out-of-box."""
        for curve in curves:
            assert curve.final_value() > curve.points[0].metric_value + 0.2

    def test_breakthrough_visible(self, curves):
        for curve in curves:
            assert curve.breakthrough(jump=0.15) is not None

    def test_barrier_near_14_hours(self, curves):
        """§5.5: 'all solutions reached a barrier at around 14 hours'."""
        for curve in curves:
            barrier = curve.barrier(window=4.0, improvement=0.02)
            assert barrier is not None
            assert barrier <= 16.0

    def test_measured_f1_in_unit_interval(self, curves):
        for curve in curves:
            assert all(0.0 <= p.metric_value <= 1.0 for p in curve.points)


class TestContestTimeline:
    @pytest.fixture(scope="class")
    def timelines(self, bench_data):
        simulator = ContestTimelineSimulator(
            dataset=bench_data.dataset,
            gold=bench_data.gold,
            team_count=3,
            submissions=20,
            seed=5,
        )
        return simulator.run()

    def test_one_timeline_per_team(self, timelines):
        assert len(timelines) == 3
        assert all(len(points) == 20 for points in timelines.values())

    def test_quality_generally_increases(self, timelines):
        """Figure 7: 'matching quality generally increased over time'."""
        for points in timelines.values():
            early = sum(f1 for _, f1 in points[:5]) / 5
            late = sum(f1 for _, f1 in points[-5:]) / 5
            assert late > early

    def test_declines_occur(self, timelines):
        """Figure 7: 'sometimes faced significant declines' —
        trial-and-error character."""
        total_declines = 0
        for points in timelines.values():
            values = [f1 for _, f1 in points]
            total_declines += sum(
                1 for a, b in zip(values, values[1:]) if b < a - 0.03
            )
        assert total_declines >= 2

    def test_values_bounded(self, timelines):
        for points in timelines.values():
            assert all(0.0 <= f1 <= 1.0 for _, f1 in points)
