"""Health endpoints, access logging, and request-id correlation.

Covers the observability surface of the HTTP front-end: ``/healthz``
(liveness), ``/readyz`` (dependency readiness, 503 when the store is
gone), the structured DEBUG access log, per-endpoint-family metrics
with latency-SLO burn counters, and one ``request_id`` observable
end-to-end — response header, access log, span tree, and ``/stats`` —
including across the process-pool shard boundary.
"""

from __future__ import annotations

import http.client
import json
import logging
import re

import pytest

from repro.core.platform import FrostPlatform
from repro.server.api import ApiError, FrostApi
from repro.server.http import FrostHttpServer, _endpoint_family
from repro.telemetry import get_metrics, get_tracer


@pytest.fixture
def platform(people_dataset, people_gold, people_experiment):
    instance = FrostPlatform()
    instance.add_dataset(people_dataset)
    instance.add_gold(people_dataset.name, people_gold)
    instance.add_experiment(people_dataset.name, people_experiment)
    return instance


@pytest.fixture
def api(platform):
    return FrostApi(platform)


def request(port, path, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", path, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class TestHealthEndpoints:
    def test_healthz_is_alive(self, api):
        with FrostHttpServer(api, port=0) as server:
            status, _, body = request(server.port, "/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_readyz_reports_checks(self, api):
        with FrostHttpServer(api, port=0) as server:
            status, _, body = request(server.port, "/readyz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ready"
        assert payload["checks"]["platform"]["ok"]
        assert payload["checks"]["platform"]["datasets"] == 1
        assert payload["checks"]["store"] == {"ok": True, "durable": False}
        assert payload["checks"]["serving_cache"]["ok"]

    def test_readyz_503_when_store_unreachable(
        self, platform, tmp_path
    ):
        from repro.storage.database import FrostStore

        store = FrostStore(tmp_path / "frost.db")
        api = FrostApi(platform, store=store)
        store.close()  # torn-down dependency: served requests would fail
        ready, payload = api.readiness()
        assert not ready
        assert payload["status"] == "unavailable"
        assert not payload["checks"]["store"]["ok"]
        with FrostHttpServer(api, port=0) as server:
            status, _, body = request(server.port, "/readyz")
        assert status == 503
        assert json.loads(body)["checks"]["store"]["ok"] is False

    def test_readyz_reports_store_schema_version(self, platform, tmp_path):
        from repro.storage.database import SCHEMA_VERSION, FrostStore

        with FrostStore(tmp_path / "frost.db") as store:
            api = FrostApi(platform, store=store)
            ready, payload = api.readiness()
        assert ready
        assert payload["checks"]["store"]["schema_version"] == SCHEMA_VERSION

    def test_dispatcher_serves_health_routes_too(self, api):
        assert api.handle("/healthz") == {"status": "ok"}
        assert api.handle("/readyz")["status"] == "ready"

    def test_dispatcher_readyz_503_when_not_ready(self, platform, tmp_path):
        from repro.storage.database import FrostStore

        store = FrostStore(tmp_path / "frost.db")
        api = FrostApi(platform, store=store)
        store.close()
        with pytest.raises(ApiError) as excinfo:
            api.handle("/readyz")
        assert excinfo.value.status == 503
        assert "store" in excinfo.value.message


class TestAccessLog:
    def test_access_line_format_at_debug(self, api, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.server.access"):
            with FrostHttpServer(api, port=0) as server:
                status, headers, _ = request(
                    server.port, "/datasets", {"X-Request-Id": "req-log-1"}
                )
        assert status == 200
        records = [
            record
            for record in caplog.records
            if record.name == "repro.server.access"
            and getattr(record, "method", None) == "GET"
        ]
        assert records, "no access-log record emitted"
        record = records[0]
        assert record.levelno == logging.DEBUG
        assert re.fullmatch(
            r"GET /datasets -> 200 in \d+\.\d{2}ms \[req-log-1\]",
            record.getMessage(),
        )
        assert record.request_id == "req-log-1"
        assert record.status == 200

    def test_default_level_keeps_output_quiet(self, api, capsys, caplog):
        """At the default INFO level no per-request line reaches handlers."""
        with caplog.at_level(logging.INFO):
            with FrostHttpServer(api, port=0) as server:
                request(server.port, "/datasets")
        access = [
            record
            for record in caplog.records
            if record.name == "repro.server.access"
        ]
        assert access == []
        captured = capsys.readouterr()
        assert "GET /datasets" not in captured.out
        assert "GET /datasets" not in captured.err


class TestEndpointMetrics:
    def test_family_of_known_and_unknown_paths(self):
        assert _endpoint_family("/datasets/people/metrics") == "datasets"
        assert _endpoint_family("/metrics") == "metrics"
        assert _endpoint_family("/healthz") == "healthz"
        assert _endpoint_family("/") == "other"
        assert _endpoint_family("/evil{}path") == "other"

    def test_requests_and_latency_are_counted_per_family(self, api):
        registry = get_metrics()
        registry.reset()
        with FrostHttpServer(api, port=0) as server:
            request(server.port, "/datasets")
            request(server.port, "/datasets/people")
            request(server.port, "/healthz")
        values = registry.values()
        assert values["frost_http_datasets_requests_total"] == 2
        assert values["frost_http_datasets_request_seconds_count"] == 2
        assert values["frost_http_healthz_requests_total"] == 1
        registry.reset()

    def test_slo_burn_counts_slow_requests(self, api, monkeypatch):
        import repro.server.http as http_module

        registry = get_metrics()
        registry.reset()
        # an impossible SLO: every request burns budget
        monkeypatch.setitem(http_module._SLO_MS, "datasets", -1.0)
        with FrostHttpServer(api, port=0) as server:
            request(server.port, "/datasets")
        values = registry.values()
        assert values["frost_http_datasets_slo_burn_total"] == 1
        # healthz kept its sane SLO: no burn counter was ever minted
        assert "frost_http_healthz_slo_burn_total" not in values
        registry.reset()


class TestRequestIdCorrelation:
    def test_server_mints_an_id_when_absent(self, api):
        with FrostHttpServer(api, port=0) as server:
            _, headers, _ = request(server.port, "/datasets")
        minted = headers.get("X-Request-Id")
        assert minted
        int(minted, 16)

    def test_client_id_is_honored_and_echoed(self, api):
        with FrostHttpServer(api, port=0) as server:
            _, headers, body = request(
                server.port, "/stats", {"X-Request-Id": "req-client-7"}
            )
        assert headers.get("X-Request-Id") == "req-client-7"
        assert json.loads(body)["request_id"] == "req-client-7"

    def test_one_id_spans_log_trace_and_stats(self, api, caplog):
        """The acceptance-criteria walk: one request's id shows up in the
        access log, on every span of its trace (including the folded
        process-pool shard spans), and in the /stats payload."""
        tracer = get_tracer()
        tracer.reset()
        tracer.enable()
        try:
            with caplog.at_level(logging.DEBUG, logger="repro.server.access"):
                with FrostHttpServer(api, port=0) as server:
                    status, headers, body = request(
                        server.port,
                        "/stats",
                        {"X-Request-Id": "req-e2e"},
                    )
        finally:
            tracer.disable()
        assert status == 200
        # header + payload
        assert headers.get("X-Request-Id") == "req-e2e"
        assert json.loads(body)["request_id"] == "req-e2e"
        # access log
        assert any(
            getattr(record, "request_id", None) == "req-e2e"
            for record in caplog.records
            if record.name == "repro.server.access"
        )
        # trace: the request root and every descendant carry the id
        roots = [
            root
            for root in tracer.roots()
            if root.annotations.get("request_id") == "req-e2e"
        ]
        assert roots, "no http.request span recorded for the request"
        for span in roots[0].walk():
            assert span.annotations.get("request_id") == "req-e2e", span.name
        tracer.reset()

    def test_id_crosses_the_process_pool_boundary(self, people_dataset):
        """Shard spans folded back from pool workers inherit the id."""
        from repro.engine.executors import SerialExecutor
        from repro.matching.attribute_matching import AttributeComparator
        from repro.matching.parallel import (
            ParallelConfig,
            compare_pairs_sharded,
        )
        from repro.core.pairs import make_pair
        from repro.telemetry import bind_request_id

        tracer = get_tracer()
        tracer.reset()
        tracer.enable()
        try:
            comparator = AttributeComparator({"name": "jaro_winkler"})
            records = list(people_dataset)
            pairs = [
                make_pair(records[0].record_id, records[1].record_id),
                make_pair(records[1].record_id, records[2].record_id),
            ]
            with bind_request_id("req-shard"), tracer.span(
                "http.request", request_id="req-shard"
            ):
                compare_pairs_sharded(
                    people_dataset,
                    pairs,
                    comparator,
                    ParallelConfig(workers=2, shards=2, min_pairs=0),
                    executor=SerialExecutor(),
                    columnar=False,
                )
        finally:
            tracer.disable()
        (root,) = [
            span
            for span in tracer.roots()
            if span.name == "http.request"
        ]
        shards = [
            span for span in root.walk() if span.name == "comparison.shard"
        ]
        assert shards, "no shard spans were folded into the trace"
        for shard in shards:
            assert shard.annotations["request_id"] == "req-shard"
        tracer.reset()
