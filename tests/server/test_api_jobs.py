"""End-to-end tests for the engine-backed ``/jobs`` API routes."""

import json
import urllib.request

import pytest

from repro.core.platform import FrostPlatform
from repro.server.api import ApiError, FrostApi
from repro.server.http import FrostHttpServer


@pytest.fixture
def api(people_dataset, people_gold, people_experiment):
    platform = FrostPlatform()
    platform.add_dataset(people_dataset)
    platform.add_gold(people_dataset.name, people_gold)
    platform.add_experiment(people_dataset.name, people_experiment)
    return FrostApi(platform)


class TestJobRoutes:
    def test_submit_and_fetch_single_job(self, api):
        submitted = api.handle(
            "/jobs",
            {"wait": "1"},
            method="POST",
            body={
                "kind": "metrics",
                "id": "m1",
                "params": {
                    "dataset": "people",
                    "gold": "people-gold",
                    "metrics": ["precision", "recall"],
                },
            },
        )
        assert submitted["submitted"] == ["m1"]
        assert submitted["jobs"][0]["state"] == "succeeded"
        detail = api.handle("/jobs/m1")
        assert detail["state"] == "succeeded"
        assert detail["result"]["metrics"]["people-run"] == {
            "precision": 0.5,
            "recall": 0.5,
        }

    def test_sweep_through_api_routes(self, api):
        """The ISSUE's e2e scenario: a threshold sweep over /jobs."""
        submitted = api.handle(
            "/jobs",
            {"wait": "1"},
            method="POST",
            body={
                "kind": "metrics",
                "id": "sweep",
                "params": {
                    "dataset": "people",
                    "gold": "people-gold",
                    "metrics": ["recall"],
                },
                "sweep": {"parameter": "threshold", "values": [0.5, 0.8, 0.99]},
            },
        )
        assert submitted["submitted"] == ["sweep@0.5", "sweep@0.8", "sweep@0.99"]
        assert all(job["state"] == "succeeded" for job in submitted["jobs"])
        recalls = [
            api.handle(f"/jobs/{job_id}")["result"]["metrics"]["people-run"][
                "recall"
            ]
            for job_id in submitted["submitted"]
        ]
        assert recalls == sorted(recalls, reverse=True)
        listing = api.handle("/jobs")
        assert listing["progress"]["succeeded"] == 3
        # identical re-submission is served from the content-addressed cache
        rerun = api.handle(
            "/jobs",
            {"wait": "1"},
            method="POST",
            body={
                "kind": "metrics",
                "id": "again",
                "params": {
                    "dataset": "people",
                    "gold": "people-gold",
                    "metrics": ["recall"],
                },
                "sweep": {"parameter": "threshold", "values": [0.5, 0.8, 0.99]},
            },
        )
        assert all(job["cached"] for job in rerun["jobs"])

    def test_job_listing_reports_cache_stats(self, api):
        api.handle(
            "/jobs",
            {"wait": "1"},
            method="POST",
            body={
                "kind": "diagram",
                "params": {
                    "dataset": "people",
                    "gold": "people-gold",
                    "experiment": "people-run",
                    "samples": 3,
                },
            },
        )
        listing = api.handle("/jobs")
        assert listing["progress"]["cache"]["puts"] == 1

    def test_bad_sweep_submission_is_atomic(self, api):
        """A duplicate id mid-batch must not poison later retries."""
        body = {
            "kind": "metrics",
            "id": "atomic",
            "params": {"dataset": "people", "gold": "people-gold"},
            "sweep": {"parameter": "threshold", "values": [0.5, 0.5, 0.7]},
        }
        with pytest.raises(ApiError) as excinfo:
            api.handle("/jobs", method="POST", body=body)
        assert excinfo.value.status == 400
        listing = api.handle("/jobs")
        assert listing["jobs"] == [], "failed batch must enqueue nothing"
        body["sweep"]["values"] = [0.5, 0.7]
        retry = api.handle("/jobs", {"wait": "1"}, method="POST", body=body)
        assert [job["state"] for job in retry["jobs"]] == ["succeeded"] * 2

    def test_unknown_job_404(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.handle("/jobs/ghost")
        assert excinfo.value.status == 404

    def test_bad_kind_400(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.handle("/jobs", method="POST", body={"kind": "pipeline"})
        assert excinfo.value.status == 400

    def test_missing_body_400(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.handle("/jobs", method="POST", body=None)
        assert excinfo.value.status == 400

    def test_post_not_allowed_elsewhere(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.handle("/datasets", method="POST", body={})
        assert excinfo.value.status == 405


class TestJobsOverHttp:
    def test_post_jobs_over_http(self, api):
        with FrostHttpServer(api, port=0) as server:
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}/jobs?wait=1",
                data=json.dumps(
                    {
                        "kind": "metrics",
                        "id": "http-job",
                        "params": {
                            "dataset": "people",
                            "gold": "people-gold",
                            "metrics": ["f1"],
                        },
                    }
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                payload = json.loads(response.read())
            assert payload["jobs"][0]["state"] == "succeeded"
            with urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/jobs/http-job", timeout=30
            ) as response:
                detail = json.loads(response.read())
            assert detail["result"]["metrics"]["people-run"]["f1"] > 0

    def test_invalid_json_body_http_400(self, api):
        with FrostHttpServer(api, port=0) as server:
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}/jobs",
                data=b"{not json",
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 400
