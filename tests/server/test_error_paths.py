"""Parametrized API error-path coverage: 404, 400, and 405 responses.

Every route family must fail with the right status: 404 for unknown
names/routes, 400 for malformed parameters or JSON bodies, 405 for
wrong methods.  The HTTP wrapper must translate each into a JSON error
document with the matching status code.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.platform import FrostPlatform
from repro.server.api import ApiError, FrostApi
from repro.server.http import FrostHttpServer


@pytest.fixture
def api(people_dataset, people_gold, people_experiment):
    platform = FrostPlatform()
    platform.add_dataset(people_dataset)
    platform.add_gold(people_dataset.name, people_gold)
    platform.add_experiment(people_dataset.name, people_experiment)
    return FrostApi(platform)


NOT_FOUND_CASES = [
    ("GET", "/datasets/ghost", {}, None),
    ("GET", "/datasets/ghost/records", {}, None),
    ("GET", "/datasets/people/experiments/ghost", {}, None),
    ("GET", "/datasets/people/metrics", {"gold": "ghost"}, None),
    (
        "GET",
        "/datasets/people/diagram",
        {"exp": "ghost", "gold": "people-gold"},
        None,
    ),
    (
        "GET",
        "/datasets/people/categorize",
        {"exp": "people-run", "gold": "ghost"},
        None,
    ),
    ("GET", "/datasets/people/unknown-evaluation", {}, None),
    ("GET", "/streams/ghost", {}, None),
    ("POST", "/streams/ghost/batches", {}, {"records": []}),
    ("GET", "/jobs/ghost", {}, None),
    ("GET", "/completely/unknown", {}, None),
]

BAD_REQUEST_CASES = [
    ("GET", "/datasets/people/metrics", {}, None),  # gold missing
    ("GET", "/datasets/people/records", {"offset": "-1"}, None),
    ("GET", "/datasets/people/records", {"limit": "nope"}, None),
    ("GET", "/datasets/people/diagram", {"exp": "people-run"}, None),
    (
        "GET",
        "/datasets/people/categorize",
        {"gold": "people-gold"},
        None,
    ),
    (
        "GET",
        "/datasets/people/timeline",
        {"exp": "people-run", "gold": "people-gold"},
        None,
    ),
    ("GET", "/datasets/people/intersection", {"exclude": "people-run"}, None),
    ("POST", "/jobs", {}, None),  # body missing
    ("POST", "/jobs", {}, ["not", "an", "object"]),
    ("POST", "/jobs", {}, {"kind": "bogus"}),
    ("POST", "/jobs", {}, {"kind": "metrics", "params": 5}),
    ("POST", "/jobs", {}, {"kind": "metrics", "params": {}, "sweep": {}}),
    ("POST", "/streams", {}, None),
    ("POST", "/streams", {}, {"name": "bad/name"}),
    ("POST", "/streams", {}, {"name": "s", "config": {"key": {"kind": "bogus"}}}),
]

WRONG_METHOD_CASES = [
    ("POST", "/datasets", {}, None),
    ("POST", "/datasets/people/metrics", {"gold": "people-gold"}, None),
    ("DELETE", "/datasets/people", {}, None),
    ("PUT", "/stats", {}, None),
    ("DELETE", "/streams", {}, None),
    ("DELETE", "/jobs", {}, None),
]


def _expect_status(api, method, path, query, body, status):
    with pytest.raises(ApiError) as excinfo:
        api.handle(path, query, method=method, body=body)
    assert excinfo.value.status == status
    assert excinfo.value.message


class TestApiErrorStatuses:
    @pytest.mark.parametrize("method,path,query,body", NOT_FOUND_CASES)
    def test_unknown_names_and_routes_are_404(
        self, api, method, path, query, body
    ):
        _expect_status(api, method, path, query, body, 404)

    @pytest.mark.parametrize("method,path,query,body", BAD_REQUEST_CASES)
    def test_malformed_requests_are_400(self, api, method, path, query, body):
        _expect_status(api, method, path, query, body, 400)

    @pytest.mark.parametrize("method,path,query,body", WRONG_METHOD_CASES)
    def test_wrong_methods_are_405(self, api, method, path, query, body):
        _expect_status(api, method, path, query, body, 405)

    def test_batch_post_without_records_list_is_400(self, api):
        api.handle(
            "/streams",
            method="POST",
            body={
                "name": "s",
                "config": {
                    "key": {"kind": "first_token", "attribute": "first"},
                    "similarities": {"first": "jaro_winkler"},
                    "threshold": 0.5,
                },
            },
        )
        for body in (None, {}, {"records": "nope"}):
            _expect_status(api, "POST", "/streams/s/batches", {}, body, 400)


class TestHttpErrorTranslation:
    @pytest.fixture
    def server(self, api):
        with FrostHttpServer(api, port=0) as server:
            yield server

    def _request(self, server, path, method="GET", data=None):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}{path}", data=data, method=method
        )
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, json.loads(response.read())

    @pytest.mark.parametrize(
        "method,path,data,status",
        [
            ("GET", "/datasets/ghost", None, 404),
            ("GET", "/datasets/people/metrics", None, 400),
            ("POST", "/jobs", b"{not json", 400),
            ("DELETE", "/datasets", None, 405),
        ],
    )
    def test_error_documents_over_http(self, server, method, path, data, status):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._request(server, path, method=method, data=data)
        assert excinfo.value.code == status
        document = json.loads(excinfo.value.read())
        assert document["status"] == status
        assert document["error"]

    def test_unexpected_exceptions_become_json_500s(self, api, monkeypatch):
        """A server-side bug must answer, not kill the connection."""

        def explode(*args, **kwargs):
            raise RuntimeError("wires crossed")

        monkeypatch.setattr(api, "handle", explode)
        with FrostHttpServer(api, port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._request(server, "/datasets")
            assert excinfo.value.code == 500
            document = json.loads(excinfo.value.read())
            assert document["status"] == 500
            assert "RuntimeError" in document["error"]
