"""Tests for the profile / categorize / timeline API routes."""

import json

import pytest

from repro.core.platform import FrostPlatform
from repro.server.api import ApiError, FrostApi


@pytest.fixture
def api(people_dataset, people_gold, people_experiment):
    platform = FrostPlatform()
    platform.add_dataset(people_dataset)
    platform.add_gold(people_dataset.name, people_gold)
    platform.add_experiment(people_dataset.name, people_experiment)
    return FrostApi(platform)


class TestProfileRoute:
    def test_profile_summary(self, api):
        payload = api.handle("/datasets/people/profile")
        assert payload["tuple_count"] == 6
        assert 0.0 <= payload["sparsity"] <= 1.0
        assert payload["schema_complexity"] == 4

    def test_json_serializable(self, api):
        json.dumps(api.handle("/datasets/people/profile"))


class TestCategorizeRoute:
    def test_counts_and_weakness(self, api):
        payload = api.handle(
            "/datasets/people/categorize",
            {"exp": "people-run", "gold": "people-gold"},
        )
        # people-run missed (p3, p4) and invented (p5, p6)
        assert payload["false_negatives"] == 1
        assert payload["false_positives"] == 1
        assert isinstance(payload["fn_relations"], dict)

    def test_limit_parameter(self, api):
        payload = api.handle(
            "/datasets/people/categorize",
            {"exp": "people-run", "gold": "people-gold", "limit": "0"},
        )
        assert payload["false_negatives"] == 0

    def test_missing_parameters_is_400(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.handle("/datasets/people/categorize", {"exp": "people-run"})
        assert excinfo.value.status == 400

    def test_unknown_experiment_is_404(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.handle(
                "/datasets/people/categorize",
                {"exp": "ghost", "gold": "people-gold"},
            )
        assert excinfo.value.status == 404

    def test_json_serializable(self, api):
        json.dumps(
            api.handle(
                "/datasets/people/categorize",
                {"exp": "people-run", "gold": "people-gold"},
            )
        )


class TestTimelineRoute:
    def test_segment_pairs_returned(self, api):
        payload = api.handle(
            "/datasets/people/timeline",
            {
                "exp": "people-run",
                "gold": "people-gold",
                "high": "0.9",
                "low": "0.5",
            },
        )
        # only (p5, p6) at 0.72 falls inside (0.5, 0.9]; it is a non-match
        assert payload["new_true_positives"] == []
        assert payload["new_false_positives"] == [["p5", "p6"]]

    def test_bad_range_is_400(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.handle(
                "/datasets/people/timeline",
                {
                    "exp": "people-run",
                    "gold": "people-gold",
                    "high": "0.2",
                    "low": "0.8",
                },
            )
        assert excinfo.value.status == 400

    def test_missing_thresholds_is_400(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.handle(
                "/datasets/people/timeline",
                {"exp": "people-run", "gold": "people-gold"},
            )
        assert excinfo.value.status == 400

    def test_json_serializable(self, api):
        json.dumps(
            api.handle(
                "/datasets/people/timeline",
                {
                    "exp": "people-run",
                    "gold": "people-gold",
                    "high": "1.0",
                    "low": "0.0",
                },
            )
        )
