"""Tests for GET /stats and serving-layer behavior over the HTTP API."""

import json
import urllib.request

import pytest

from repro.core import Experiment
from repro.core.platform import FrostPlatform
from repro.server.api import FrostApi
from repro.server.http import FrostHttpServer


@pytest.fixture
def platform(people_dataset, people_gold, people_experiment):
    platform = FrostPlatform()
    platform.add_dataset(people_dataset)
    platform.add_gold(people_dataset.name, people_gold)
    platform.add_experiment(people_dataset.name, people_experiment)
    return platform


@pytest.fixture
def api(platform):
    return FrostApi(platform)


class TestStatsRoute:
    def test_shape(self, api):
        stats = api.handle("/stats")
        assert stats["datasets"] == 1
        assert stats["durable"] is False
        assert stats["engine"] is None  # not created yet: /jobs untouched
        serving = stats["serving"]
        assert serving["requests"] == 0
        assert serving["computations"] == 0
        assert set(serving["cache"]) >= {
            "entries", "hits", "misses", "puts", "evictions", "invalidations",
        }
        assert set(serving["coalescer"]) == {"leaders", "followers", "in_flight"}

    def test_counters_track_cached_reads(self, api):
        query = {"gold": "people-gold"}
        api.handle("/datasets/people/metrics", query)
        api.handle("/datasets/people/metrics", query)
        api.handle("/datasets/people/metrics", query)
        serving = api.handle("/stats")["serving"]
        assert serving["requests"] == 3
        assert serving["computations"] == 1
        assert serving["cache"]["hits"] == 2
        assert serving["cache"]["misses"] == 1

    def test_stats_itself_is_not_a_served_evaluation(self, api):
        before = api.handle("/stats")["serving"]["requests"]
        api.handle("/stats")
        assert api.handle("/stats")["serving"]["requests"] == before

    def test_engine_progress_appears_once_jobs_ran(self, api):
        api.handle(
            "/jobs",
            {"wait": "1"},
            method="POST",
            body={"kind": "metrics", "params": {
                "dataset": "people", "gold": "people-gold",
            }},
        )
        stats = api.handle("/stats")
        assert stats["engine"]["total"] == 1
        assert stats["engine"]["succeeded"] == 1

    def test_registry_write_invalidates_through_the_api(self, api, platform):
        query = {"gold": "people-gold"}
        before = api.handle("/datasets/people/metrics", query)
        platform.add_experiment(
            "people", Experiment([("p3", "p4", 0.9)], name="late-run")
        )
        after = api.handle("/datasets/people/metrics", query)
        assert set(before["metrics"]) == {"people-run"}
        assert set(after["metrics"]) == {"people-run", "late-run"}
        assert api.handle("/stats")["serving"]["computations"] == 2


class TestServingOverHttp:
    @pytest.fixture
    def server(self, api):
        with FrostHttpServer(api, port=0) as server:
            yield server

    def _fetch(self, server, path):
        with urllib.request.urlopen(
            f"http://127.0.0.1:{server.port}{path}", timeout=5
        ) as response:
            return response.read()

    def test_repeated_requests_are_byte_identical_and_cached(self, server):
        path = "/datasets/people/diagram?exp=people-run&gold=people-gold&n=10"
        first = self._fetch(server, path)
        second = self._fetch(server, path)
        assert first == second
        stats = json.loads(self._fetch(server, "/stats"))
        assert stats["serving"]["computations"] == 1
        assert stats["serving"]["cache"]["hits"] == 1

    def test_concurrent_clients_served_consistently(self, server):
        import concurrent.futures

        path = "/datasets/people/metrics?gold=people-gold"
        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            bodies = list(
                pool.map(lambda _: self._fetch(server, path), range(16))
            )
        assert len(set(bodies)) == 1
        stats = json.loads(self._fetch(server, "/stats"))
        assert stats["serving"]["requests"] == 16
        # every request beyond the coalesced cold computation(s) hit
        assert stats["serving"]["computations"] + (
            stats["serving"]["cache"]["hits"]
        ) >= 16
