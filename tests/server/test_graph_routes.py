"""``/graph`` route coverage: happy paths + parametrized error paths.

Follows the error-path suite style (test_error_paths.py): every wrong
name is a 404, every malformed parameter a 400, every wrong method a
405 — as structured JSON errors, never tracebacks.
"""

from __future__ import annotations

import pytest

from repro.core.platform import FrostPlatform
from repro.core.records import Record
from repro.server.api import ApiError, FrostApi
from repro.storage.database import FrostStore
from repro.streaming import build_session

CONFIG = {
    "key": {"kind": "first_token", "attribute": "name"},
    "similarities": {"name": "jaro_winkler", "zip": "exact"},
    "threshold": 0.6,
    "graph": True,
}

ROWS = [
    ("g1", "anna smith", "11111"),
    ("g2", "anna smyth", "11111"),
    ("g3", "bob jones", "22222"),
    ("g4", "bob jones", "22222"),
    ("g5", "carol white", "33333"),
]


@pytest.fixture
def api():
    store = FrostStore(":memory:")
    session = build_session(CONFIG, store=store, name="people")
    session.ingest(
        Record(native, {"name": name, "zip": zipcode})
        for native, name, zipcode in ROWS
    )
    return FrostApi(FrostPlatform(), store=store)


NOT_FOUND_CASES = [
    ("GET", "/graph/ghost", {}, None),
    ("GET", "/graph/ghost/neighbors", {"record": "g1"}, None),
    ("GET", "/graph/people/neighbors", {"record": "ghost"}, None),
    ("GET", "/graph/people/component", {"record": "ghost"}, None),
    ("GET", "/graph/people/path", {"from": "ghost", "to": "g1"}, None),
    ("GET", "/graph/people/explain", {"from": "g1", "to": "ghost"}, None),
    ("GET", "/graph/people/unknown-query", {}, None),
    ("GET", "/graph/people/neighbors/extra", {}, None),
]

BAD_REQUEST_CASES = [
    ("GET", "/graph/people/neighbors", {}, None),  # record missing
    ("GET", "/graph/people/neighbors", {"record": "g1", "k": "nope"}, None),
    ("GET", "/graph/people/neighbors", {"record": "g1", "k": "-1"}, None),
    (
        "GET",
        "/graph/people/neighbors",
        {"record": "g1", "threshold": "high"},
        None,
    ),
    ("GET", "/graph/people/path", {"from": "g1"}, None),  # to missing
    ("GET", "/graph/people/path", {"to": "g1"}, None),  # from missing
    (
        "GET",
        "/graph/people/path",
        {"from": "g1", "to": "g2", "threshold": "x"},
        None,
    ),
    ("GET", "/graph/people/components", {"limit": "many"}, None),
    ("GET", "/graph/people/components", {"limit": "-3"}, None),
    ("GET", "/graph/people/component", {}, None),  # record missing
    ("GET", "/graph/people/explain", {"from": "g1"}, None),
]

WRONG_METHOD_CASES = [
    ("PUT", "/graph", {}, None),
    ("DELETE", "/graph", {}, None),
    ("POST", "/graph/people", {}, None),
    ("PUT", "/graph/people/neighbors", {"record": "g1"}, None),
    ("DELETE", "/graph/people/explain", {"from": "g1", "to": "g2"}, None),
]


def _expect_status(api, method, path, query, body, status):
    with pytest.raises(ApiError) as excinfo:
        api.handle(path, query, method=method, body=body)
    assert excinfo.value.status == status
    assert excinfo.value.message


class TestGraphErrorStatuses:
    @pytest.mark.parametrize("method,path,query,body", NOT_FOUND_CASES)
    def test_unknown_names_and_routes_are_404(
        self, api, method, path, query, body
    ):
        _expect_status(api, method, path, query, body, 404)

    @pytest.mark.parametrize("method,path,query,body", BAD_REQUEST_CASES)
    def test_malformed_requests_are_400(self, api, method, path, query, body):
        _expect_status(api, method, path, query, body, 400)

    @pytest.mark.parametrize("method,path,query,body", WRONG_METHOD_CASES)
    def test_wrong_methods_are_405(self, api, method, path, query, body):
        _expect_status(api, method, path, query, body, 405)

    def test_graph_listing_without_store_is_empty_not_error(self):
        api = FrostApi(FrostPlatform())
        assert api.handle("/graph") == {"graphs": []}

    def test_named_graph_without_store_is_404(self):
        api = FrostApi(FrostPlatform())
        _expect_status(api, "GET", "/graph/people", {}, None, 404)


class TestGraphHappyPaths:
    def test_listing_and_summary(self, api):
        assert api.handle("/graph") == {"graphs": ["people"]}
        summary = api.handle("/graph/people")
        assert summary["node_count"] == len(ROWS)
        assert summary["threshold"] == CONFIG["threshold"]

    def test_neighbors_defaults_to_one_hop(self, api):
        result = api.handle("/graph/people/neighbors", {"record": "g1"})
        assert result["k"] == 1
        assert {row["record"] for row in result["neighbors"]} == {"g1", "g2"}

    def test_cross_component_path_is_found_false_not_404(self, api):
        result = api.handle(
            "/graph/people/path", {"from": "g1", "to": "g5"}
        )
        assert result == {
            "from": "g1",
            "to": "g5",
            "threshold": None,
            "found": False,
            "path": [],
            "edges": [],
        }

    def test_components_and_drilldown(self, api):
        listed = api.handle("/graph/people/components", {"limit": "2"})
        assert [c["size"] for c in listed["components"]] == [2, 2]
        drill = api.handle("/graph/people/component", {"record": "g3"})
        assert drill["records"] == ["g3", "g4"]
        assert drill["min_score"] == 1.0

    def test_explain_returns_evidence(self, api):
        result = api.handle(
            "/graph/people/explain", {"from": "g3", "to": "g4"}
        )
        assert result["found"]
        assert result["edges"][0]["evidence"] == {"name": 1.0, "zip": 1.0}
