"""Tests for the REST-style API dispatcher (Appendix A.4)."""

import pytest

from repro.core.platform import FrostPlatform
from repro.server.api import ApiError, FrostApi


@pytest.fixture
def api(people_dataset, people_gold, people_experiment):
    platform = FrostPlatform()
    platform.add_dataset(people_dataset)
    platform.add_gold(people_dataset.name, people_gold)
    platform.add_experiment(people_dataset.name, people_experiment)
    return FrostApi(platform)


class TestRoutes:
    def test_list_datasets(self, api):
        assert api.handle("/datasets") == {"datasets": ["people"]}

    def test_dataset_summary(self, api):
        summary = api.handle("/datasets/people")
        assert summary["records"] == 6
        assert summary["experiments"] == ["people-run"]
        assert summary["golds"] == ["people-gold"]

    def test_records_pagination(self, api):
        page = api.handle("/datasets/people/records", {"offset": "2", "limit": "2"})
        assert page["total"] == 6
        assert [r["id"] for r in page["records"]] == ["p3", "p4"]

    def test_experiment_summary(self, api):
        summary = api.handle("/datasets/people/experiments/people-run")
        assert summary["matches"] == 2
        assert summary["has_scores"] is True

    def test_metrics_route(self, api):
        payload = api.handle(
            "/datasets/people/metrics",
            {"gold": "people-gold", "metrics": "precision,recall"},
        )
        row = payload["metrics"]["people-run"]
        assert row == {"precision": 0.5, "recall": 0.5}

    def test_diagram_route(self, api):
        payload = api.handle(
            "/datasets/people/diagram",
            {"exp": "people-run", "gold": "people-gold", "n": "3"},
        )
        points = payload["points"]
        assert points[0]["threshold"] is None  # infinity serialized as null
        assert points[-1]["tp"] == 1

    def test_intersection_route(self, api):
        payload = api.handle(
            "/datasets/people/intersection",
            {"include": "people-gold", "exclude": "people-run"},
        )
        assert payload["size"] == 1
        assert payload["pairs"] == [["p3", "p4"]]


class TestErrors:
    def test_unknown_route_404(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.handle("/nope")
        assert excinfo.value.status == 404

    def test_unknown_dataset_404(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.handle("/datasets/ghost")
        assert excinfo.value.status == 404

    def test_missing_parameter_400(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.handle("/datasets/people/metrics")
        assert excinfo.value.status == 400

    def test_negative_offset_400(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.handle("/datasets/people/records", {"offset": "-1"})
        assert excinfo.value.status == 400
