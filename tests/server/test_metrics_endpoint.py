"""GET /metrics under concurrency: Prometheus text over a live server.

Eight threads hammer ``/stats``, ``/metrics``, and a cached evaluation
route at once; afterwards the exposition must parse line-by-line, the
registry totals must be exact, and the engine-cache / serving-cache /
coalescer counter families must all be present.
"""

from __future__ import annotations

import http.client
import json
import re
import threading

import pytest

from repro.core.platform import FrostPlatform
from repro.server.api import FrostApi
from repro.server.http import FrostHttpServer
from repro.telemetry import get_metrics

THREADS = 8
ROUNDS = 5

COUNTER_FAMILIES = [
    "frost_engine_cache_hits_total",
    "frost_engine_cache_misses_total",
    "frost_serving_cache_hits_total",
    "frost_serving_cache_misses_total",
    "frost_serving_requests_total",
    "frost_coalescer_leaders_total",
    "frost_coalescer_followers_total",
]


@pytest.fixture
def api(people_dataset, people_gold, people_experiment):
    platform = FrostPlatform()
    platform.add_dataset(people_dataset)
    platform.add_gold(people_dataset.name, people_gold)
    platform.add_experiment(people_dataset.name, people_experiment)
    registry = get_metrics()
    registry.reset()
    yield FrostApi(platform)
    registry.reset()


def _get(port: int, path: str) -> tuple[int, str, bytes]:
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return (
            response.status,
            response.getheader("Content-Type"),
            response.read(),
        )
    finally:
        connection.close()


def test_metrics_endpoint_serves_prometheus_text(api):
    with FrostHttpServer(api, port=0) as server:
        api.handle("/datasets/people/metrics", {"gold": "people-gold"})
        status, content_type, body = _get(server.port, "/metrics")
    assert status == 200
    assert content_type == "text/plain; version=0.0.4; charset=utf-8"
    text = body.decode("utf-8")
    for family in COUNTER_FAMILIES:
        assert f"# TYPE {family} counter" in text
    assert "# TYPE frost_serving_request_seconds histogram" in text
    assert re.search(r"frost_serving_cache_misses_total [1-9]", text)


def test_stats_exposes_the_registry_values(api):
    api.handle("/datasets/people/metrics", {"gold": "people-gold"})
    api.handle("/datasets/people/metrics", {"gold": "people-gold"})
    stats = api.handle("/stats")
    metrics = stats["metrics"]
    assert metrics["frost_serving_requests_total"] == 2
    assert metrics["frost_serving_cache_hits_total"] == 1
    assert metrics["frost_serving_cache_misses_total"] == 1
    assert metrics["frost_serving_request_seconds_count"] == 2


def test_eight_threads_hammering_metrics_and_stats(api):
    evaluation = "/datasets/people/metrics?gold=people-gold"
    errors: list[str] = []
    expositions: list[str] = []
    lock = threading.Lock()
    barrier = threading.Barrier(THREADS)

    with FrostHttpServer(api, port=0) as server:

        def hammer() -> None:
            try:
                barrier.wait(timeout=30)
                for _ in range(ROUNDS):
                    for path in (evaluation, "/stats", "/metrics"):
                        status, _, body = _get(server.port, path)
                        if status != 200:
                            with lock:
                                errors.append(f"{path}: HTTP {status}")
                        elif path == "/metrics":
                            with lock:
                                expositions.append(body.decode("utf-8"))
            except Exception as error:  # noqa: BLE001 - reported below
                with lock:
                    errors.append(f"{type(error).__name__}: {error}")

        threads = [threading.Thread(target=hammer) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)

        status, _, stats_body = _get(server.port, "/stats")

    assert not errors, errors[:5]
    assert status == 200
    assert len(expositions) == THREADS * ROUNDS

    # every concurrent exposition snapshot parses line-by-line
    sample = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$")
    for text in expositions:
        for line in text.strip().splitlines():
            assert line.startswith("#") or sample.match(line), line

    # exact totals: every evaluation request was counted exactly once
    metrics = json.loads(stats_body)["metrics"]
    total = THREADS * ROUNDS
    assert metrics["frost_serving_requests_total"] == total
    assert metrics["frost_serving_request_seconds_count"] == total
    assert (
        metrics["frost_serving_cache_hits_total"]
        + metrics["frost_serving_cache_misses_total"]
        + metrics["frost_coalescer_followers_total"]
        >= total
    )
    # one cold computation; everything else was cache or coalescing
    assert metrics["frost_serving_computations_total"] == 1
