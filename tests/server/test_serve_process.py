"""Integration tests for ``python -m repro serve`` as a real process.

Covers the satellite guarantees: ``--port 0`` ephemeral binding with
the bound port announced on stdout, and clean SIGINT/SIGTERM shutdown
(exit code 0, socket released) so test runs never leak sockets.
"""

import json
import re
import signal
import socket
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.core import Dataset, Experiment, GoldStandard, Record
from repro.storage.database import FrostStore

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def store_path(tmp_path):
    dataset = Dataset(
        [Record(f"r{index}", {"name": f"person {index}"}) for index in range(6)],
        name="people",
    )
    with FrostStore(tmp_path / "serve.db") as store:
        store.save_dataset(dataset)
        store.save_gold_standard(
            "people", GoldStandard.from_pairs([("r0", "r1")], name="gold")
        )
        store.save_experiment(
            "people", Experiment([("r0", "r1", 0.9)], name="run")
        )
    return tmp_path / "serve.db"


def _spawn(store_path, *extra):
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--store", str(store_path), "--port", "0", *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )


def _read_port(process) -> int:
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = re.search(r"serving on http://[^:]+:(\d+)", line)
        if match:
            return int(match.group(1))
    pytest.fail(f"server never announced its port: {process.stderr.read()}")


def _fetch(port: int, path: str):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=5
    ) as response:
        return json.loads(response.read())


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_ephemeral_port_and_graceful_shutdown(store_path, signum):
    process = _spawn(store_path)
    try:
        port = _read_port(process)
        assert _fetch(port, "/datasets") == {"datasets": ["people"]}
        assert _fetch(port, "/datasets/people/metrics?gold=gold")["metrics"]
        process.send_signal(signum)
        stdout, stderr = process.communicate(timeout=30)
        assert process.returncode == 0, stderr
        # diagnostics are logged to stderr; stdout keeps the port line
        assert "shut down cleanly" in stderr
        assert "shut down cleanly" not in stdout
        # the socket is actually released: the port can be rebound
        with socket.socket() as probe:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            probe.bind(("127.0.0.1", port))
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup path
            process.kill()
            process.communicate(timeout=10)


def test_serve_flags_reach_the_serving_layer(store_path):
    process = _spawn(store_path, "--workers", "2", "--cache-size", "7")
    try:
        port = _read_port(process)
        for _ in range(3):
            _fetch(port, "/datasets/people/metrics?gold=gold")
        stats = _fetch(port, "/stats")
        assert stats["durable"] is True
        assert stats["serving"]["cache"]["max_entries"] == 7
        assert stats["serving"]["computations"] == 1
        assert stats["serving"]["cache"]["hits"] == 2
        process.send_signal(signal.SIGTERM)
        _, stderr = process.communicate(timeout=30)
        assert process.returncode == 0, stderr
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup path
            process.kill()
            process.communicate(timeout=10)


def test_serve_foreground_in_process(store_path):
    """serve() binds port 0, serves, and stops cleanly via shutdown()."""
    from repro.serving import platform_from_store
    from repro.server.api import FrostApi
    from repro.server.http import serve
    import threading

    with FrostStore(store_path) as store:
        api = FrostApi(platform_from_store(store), store=store)
        announced = []
        bound = []
        ready = threading.Event()

        def on_bound(server) -> None:
            bound.append(server)
            ready.set()

        returned = []
        thread = threading.Thread(
            target=lambda: returned.append(
                serve(api, port=0, announce=announced.append, on_bound=on_bound)
            )
        )
        thread.start()
        assert ready.wait(timeout=10)
        port = bound[0].server_address[1]
        assert announced == [f"serving on http://127.0.0.1:{port}"]
        assert _fetch(port, "/datasets") == {"datasets": ["people"]}
        bound[0].shutdown()
        thread.join(timeout=10)
        assert returned == [port]


def test_command_serve_wires_the_layers(store_path, monkeypatch, capsys):
    """The CLI builds store -> platform -> engine -> serving -> server."""
    import repro.server.http as http_module
    from repro.cli import main

    captured = {}

    def fake_serve(api, host, port, announce=print, on_bound=None):
        captured["api"] = api
        captured["host"] = host
        captured["port"] = port
        announce(f"serving on http://{host}:12345")
        return 12345

    monkeypatch.setattr(http_module, "serve", fake_serve)
    code = main([
        "serve", "--store", str(store_path), "--port", "0",
        "--workers", "2", "--cache-size", "9",
    ])
    assert code == 0
    output = capsys.readouterr()
    assert "serving on http://127.0.0.1:12345" in output.out
    # announcements are logged to stderr; only the port line is stdout
    assert "serving 1 dataset(s)" in output.err
    assert "shut down cleanly" in output.err
    assert "shut down cleanly" not in output.out
    api = captured["api"]
    assert captured["port"] == 0
    assert api.platform.dataset_names() == ["people"]
    assert api.serving.cache.max_entries == 9
    assert api.engine.max_workers == 2
    assert api.handle("/stats")["durable"] is True


def test_serve_refuses_to_create_a_missing_store(tmp_path, capsys):
    """A typo'd --store path must error, not serve a new empty database."""
    from repro.cli import main

    code = main(["serve", "--store", str(tmp_path / "typo.db"), "--port", "0"])
    assert code == 1
    assert "does not exist" in capsys.readouterr().err
    assert not (tmp_path / "typo.db").exists()


def test_serve_with_missing_store_parent_fails_cleanly(tmp_path):
    completed = subprocess.run(
        [
            sys.executable, "-m", "repro", "serve",
            "--store", str(tmp_path / "nope" / "deep.db"), "--port", "0",
        ],
        capture_output=True,
        text=True,
        timeout=30,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    assert completed.returncode == 1
    assert "error:" in completed.stderr
