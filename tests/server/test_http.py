"""Tests for the stdlib HTTP server wrapper (Appendix A.4)."""

import json
import urllib.request

import pytest

from repro.core.platform import FrostPlatform
from repro.server.api import FrostApi
from repro.server.http import FrostHttpServer


@pytest.fixture
def server(people_dataset, people_gold, people_experiment):
    platform = FrostPlatform()
    platform.add_dataset(people_dataset)
    platform.add_gold(people_dataset.name, people_gold)
    platform.add_experiment(people_dataset.name, people_experiment)
    with FrostHttpServer(FrostApi(platform), port=0) as server:
        yield server


def fetch(server, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{server.port}{path}", timeout=5
    ) as response:
        return response.status, json.loads(response.read())


class TestHttpServer:
    def test_list_datasets_over_http(self, server):
        status, payload = fetch(server, "/datasets")
        assert status == 200
        assert payload == {"datasets": ["people"]}

    def test_metrics_over_http(self, server):
        status, payload = fetch(
            server, "/datasets/people/metrics?gold=people-gold&metrics=f1"
        )
        assert status == 200
        assert payload["metrics"]["people-run"]["f1"] == 0.5

    def test_error_status_propagates(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(server, "/datasets/ghost")
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert "error" in body

    def test_concurrent_requests(self, server):
        import concurrent.futures

        with concurrent.futures.ThreadPoolExecutor(4) as pool:
            results = list(
                pool.map(lambda _: fetch(server, "/datasets")[0], range(8))
            )
        assert results == [200] * 8

    def test_shutdown_waits_for_in_flight_requests(
        self, people_dataset, people_gold, people_experiment, monkeypatch
    ):
        """stop() joins handler threads: a mid-compute request answers."""
        import threading
        import time

        platform = FrostPlatform()
        platform.add_dataset(people_dataset)
        platform.add_gold(people_dataset.name, people_gold)
        platform.add_experiment(people_dataset.name, people_experiment)
        started = threading.Event()
        original = platform.metrics_table

        def slow_metrics_table(*args, **kwargs):
            started.set()
            time.sleep(0.5)
            return original(*args, **kwargs)

        monkeypatch.setattr(platform, "metrics_table", slow_metrics_table)
        server = FrostHttpServer(FrostApi(platform), port=0)
        server.start()
        outcome = {}

        def client() -> None:
            try:
                outcome["status"], outcome["payload"] = fetch(
                    server, "/datasets/people/metrics?gold=people-gold"
                )
            except Exception as error:  # pragma: no cover - failure path
                outcome["error"] = error

        thread = threading.Thread(target=client)
        thread.start()
        assert started.wait(timeout=10)  # the compute is in flight
        server.stop()  # must block until the handler finishes
        thread.join(timeout=10)
        assert outcome.get("status") == 200, outcome
        assert outcome["payload"]["metrics"]["people-run"]
