"""End-to-end integration tests across the whole platform.

Generate a benchmark -> run two real matching pipelines -> import into
the platform and the store -> evaluate metrics, diagrams, exploration,
and KPIs — the complete Frost workflow of Figure 4.
"""

import pytest

from repro.core import ConfusionMatrix, compute_diagram_optimized
from repro.core.platform import FrostPlatform
from repro.datagen import make_person_benchmark
from repro.exploration.attributes import null_ratios
from repro.exploration.selection import misclassified_outliers
from repro.exploration.setops import SetComparison
from repro.matching import (
    AttributeComparator,
    LogisticRegressionModel,
    MatchingPipeline,
    WeightedAverageModel,
    best_threshold,
    sorted_neighborhood,
    first_token_key,
    token_blocking,
)
from repro.metrics.pairwise import f1_score, precision, recall
from repro.metrics.registry import default_registry
from repro.storage import FrostStore


@pytest.fixture(scope="module")
def bench_data():
    return make_person_benchmark(400, seed=33)


@pytest.fixture(scope="module")
def rule_run(bench_data):
    comparator = AttributeComparator(
        {
            "first_name": "jaro_winkler",
            "last_name": "jaro_winkler",
            "city": "levenshtein",
            "zip": "exact",
            "phone": "exact",
        }
    )
    pipeline = MatchingPipeline(
        candidate_generator=lambda d: token_blocking(
            d, attributes=["last_name", "city"], max_block_size=100
        ),
        comparator=comparator,
        decision_model=WeightedAverageModel(
            {"first_name": 2, "last_name": 3, "city": 1, "zip": 2, "phone": 2}
        ),
        threshold=0.82,
        name="rule-run",
        solution="weighted-average",
    )
    return pipeline.run(bench_data.dataset)


@pytest.fixture(scope="module")
def ml_run(bench_data):
    attributes = ["first_name", "last_name", "city", "zip", "phone"]
    comparator = AttributeComparator(
        {a: "jaro_winkler" for a in attributes}
    )
    # label candidate pairs from the gold standard (the paper's §1:
    # 'trained by domain experts who label example pairs')
    candidates = sorted_neighborhood(
        bench_data.dataset, first_token_key("last_name"), window=10
    )
    vectors = [
        comparator.compare(bench_data.dataset[a], bench_data.dataset[b])
        for a, b in sorted(candidates)
    ]
    labels = [
        bench_data.gold.is_duplicate(*vector.pair) for vector in vectors
    ]
    model = LogisticRegressionModel(attributes, iterations=300).fit(
        vectors, labels
    )
    pipeline = MatchingPipeline(
        candidate_generator=lambda d: sorted_neighborhood(
            d, first_token_key("last_name"), window=10
        ),
        comparator=comparator,
        decision_model=model.score,
        threshold=0.5,
        name="ml-run",
        solution="logistic-regression",
    )
    return pipeline.run(bench_data.dataset)


class TestPipelineQuality:
    def test_both_solutions_perform_reasonably(self, bench_data, rule_run, ml_run):
        total = bench_data.dataset.total_pairs()
        for run in (rule_run, ml_run):
            matrix = ConfusionMatrix.from_clusterings(
                run.experiment.clustering(),
                bench_data.gold.clustering,
                total,
            )
            assert f1_score(matrix) > 0.5, run.experiment.name

    def test_blocking_stage_measurable(self, bench_data, rule_run):
        """Inter-stage evaluation (§1.2): candidate-generation quality."""
        total = bench_data.dataset.total_pairs()
        matrix = ConfusionMatrix.from_pair_sets(
            rule_run.candidates, bench_data.gold.pairs(), total
        )
        assert recall(matrix) > 0.5  # pairs completeness
        assert matrix.predicted_positives < total * 0.3  # real reduction


class TestPlatformWorkflow:
    @pytest.fixture(scope="class")
    def platform(self, bench_data, rule_run, ml_run):
        platform = FrostPlatform()
        platform.add_dataset(bench_data.dataset)
        platform.add_gold(bench_data.dataset.name, bench_data.gold)
        platform.add_experiment(bench_data.dataset.name, rule_run.experiment)
        platform.add_experiment(bench_data.dataset.name, ml_run.experiment)
        return platform

    def test_n_metrics_viewer(self, platform, bench_data):
        table = platform.metrics_table(
            bench_data.dataset.name,
            bench_data.gold.name,
            metric_names=["precision", "recall", "f1"],
        )
        assert set(table) == {"rule-run", "ml-run"}
        for row in table.values():
            assert 0.0 <= row["f1"] <= 1.0

    def test_set_comparison_finds_disagreements(self, platform, bench_data):
        comparison = platform.compare_sets(
            bench_data.dataset.name, ["rule-run", "ml-run", bench_data.gold.name]
        )
        regions = comparison.region_sizes()
        assert sum(regions.values()) > 0

    def test_diagram_and_threshold_tuning(self, bench_data, rule_run):
        """§5.4 workflow: check whether the chosen threshold was optimal."""
        comparator = AttributeComparator(
            {"first_name": "jaro_winkler", "last_name": "jaro_winkler"}
        )
        pipeline = MatchingPipeline(
            candidate_generator=lambda d: token_blocking(
                d, attributes=["last_name"], max_block_size=100
            ),
            comparator=comparator,
            decision_model=WeightedAverageModel(
                {"first_name": 1, "last_name": 1}
            ),
            threshold=0.99,  # deliberately bad
            name="scored",
        )
        scored = pipeline.scored_experiment(bench_data.dataset)
        points = compute_diagram_optimized(
            bench_data.dataset, scored, bench_data.gold, samples=50
        )
        threshold, value = best_threshold(points, f1_score)
        assert threshold < 0.99
        assert value > 0.3


class TestExplorationWorkflow:
    def test_misclassified_outliers_on_real_run(self, bench_data, rule_run):
        outliers = misclassified_outliers(
            rule_run.scored_pairs, 0.82, bench_data.gold, k=5
        )
        assert len(outliers) <= 5

    def test_null_ratio_analysis(self, bench_data, rule_run):
        ratios = null_ratios(
            bench_data.dataset, rule_run.experiment, bench_data.gold
        )
        assert {r.attribute for r in ratios} == set(bench_data.dataset.attributes)
        assert all(0.0 <= r.ratio <= 1.0 for r in ratios)

    def test_figure1_style_comparison(self, bench_data, rule_run, ml_run):
        comparison = SetComparison(
            bench_data.dataset,
            {
                "run-1": rule_run.experiment,
                "run-2": ml_run.experiment,
                "gold": bench_data.gold,
            },
        )
        found_by_2_not_1 = comparison.select(
            include=["gold", "run-2"], exclude=["run-1"]
        )
        enriched = comparison.enriched(found_by_2_not_1)
        for record_a, record_b in enriched:
            assert bench_data.gold.is_duplicate(
                record_a.record_id, record_b.record_id
            )


class TestStorageWorkflow:
    def test_full_round_trip_preserves_metrics(self, bench_data, rule_run, tmp_path):
        registry = default_registry()
        total = bench_data.dataset.total_pairs()
        before = registry.evaluate(
            ConfusionMatrix.from_clusterings(
                rule_run.experiment.clustering(),
                bench_data.gold.clustering,
                total,
            )
        )
        with FrostStore(tmp_path / "frost.db") as store:
            store.save_dataset(bench_data.dataset)
            store.save_experiment(bench_data.dataset.name, rule_run.experiment)
            store.save_gold_standard(bench_data.dataset.name, bench_data.gold)
        with FrostStore(tmp_path / "frost.db") as store:
            dataset = store.load_dataset(bench_data.dataset.name)
            experiment = store.load_experiment(
                bench_data.dataset.name, rule_run.experiment.name
            )
            gold = store.load_gold_standard(
                bench_data.dataset.name, bench_data.gold.name
            )
        after = registry.evaluate(
            ConfusionMatrix.from_clusterings(
                experiment.clustering(), gold.clustering, dataset.total_pairs()
            )
        )
        assert after == before
