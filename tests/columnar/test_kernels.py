"""Tests for the batch kernels: planning and per-kernel scalar identity."""

import numpy as np
import pytest

from repro.columnar import ColumnarStore, compare_block, kernel_for, plan_for
from repro.columnar.kernels import (
    ExactKernel,
    MemoizedKernel,
    NumericKernel,
    TfIdfKernel,
    TokenJaccardKernel,
)
from repro.core.records import Record
from repro.matching.attribute_matching import AttributeComparator
from repro.matching.similarity import (
    SIMILARITY_FUNCTIONS,
    TfIdfCosine,
    jaro_winkler,
)

# Values exercising the corner cases of every measure: nulls are handled
# upstream, so kernels only ever see non-null interned strings.
VALUES = [
    "alice smith",
    "alice  smith",
    "smith alice",
    "bob",
    "  ",
    "12.5",
    "12.0",
    "-12.5",
    "0",
    "0.0",
    "nan",
    "inf",
    "-infinity",
    "1e400",
    "Robert",
    "Rupert",
    "Ashcraft",
    "Tymczak",
    "123",
    "o'brien",
    "a much longer value with several tokens in it",
]


def store_of(values):
    records = {
        f"r{i}": Record(record_id=f"r{i}", values={"a": value})
        for i, value in enumerate(values)
    }
    return ColumnarStore.from_records(records, ["a"])


def all_vid_pairs(store):
    vids = np.arange(1, store.distinct_values + 1, dtype=np.int64)
    grid_a, grid_b = np.meshgrid(vids, vids, indexing="ij")
    return grid_a.ravel(), grid_b.ravel()


@pytest.mark.parametrize("name", sorted(SIMILARITY_FUNCTIONS))
def test_every_builtin_measure_scores_identically(name):
    """Each kernel's unique_scores equals the scalar measure bitwise."""
    function = SIMILARITY_FUNCTIONS[name]
    kernel = kernel_for(function)
    assert kernel is not None, f"no kernel for {name}"
    store = store_of(VALUES)
    vids_a, vids_b = all_vid_pairs(store)
    scores = kernel.unique_scores(store, vids_a, vids_b)
    for vid_a, vid_b, score in zip(
        vids_a.tolist(), vids_b.tolist(), scores.tolist()
    ):
        expected = function(store.value_of(vid_a), store.value_of(vid_b))
        assert score == expected, (
            f"{name}({store.value_of(vid_a)!r}, {store.value_of(vid_b)!r})"
        )
        # bitwise, not just ==: NaN would fail ==, and -0.0 vs 0.0 would
        # pass — assert the repr to close that gap
        assert repr(score) == repr(expected)


def test_tfidf_kernel_scores_identically():
    tfidf = TfIdfCosine(VALUES)
    kernel = kernel_for(tfidf)
    assert isinstance(kernel, TfIdfKernel)
    store = store_of(VALUES)
    vids_a, vids_b = all_vid_pairs(store)
    scores = kernel.unique_scores(store, vids_a, vids_b)
    for vid_a, vid_b, score in zip(
        vids_a.tolist(), vids_b.tolist(), scores.tolist()
    ):
        assert score == tfidf(store.value_of(vid_a), store.value_of(vid_b))


def test_tfidf_kernel_memoizes_distinct_pairs():
    tfidf = TfIdfCosine(VALUES)
    kernel = TfIdfKernel(tfidf)
    store = store_of(VALUES)
    vids = np.array([1, 2, 1, 2, 1, 2], dtype=np.int64)
    kernel.unique_scores(store, vids, vids[::-1])
    assert (1, 2) in kernel._memo


class TestKernelFor:
    def test_unknown_callable_has_no_kernel(self):
        assert kernel_for(lambda a, b: 1.0) is None

    def test_wrapped_builtin_has_no_kernel(self):
        # identity matters: a wrapper could change behaviour
        def wrapped(a, b):
            return jaro_winkler(a, b)

        assert kernel_for(wrapped) is None

    def test_builtin_names_resolve(self):
        assert isinstance(kernel_for(SIMILARITY_FUNCTIONS["exact"]), ExactKernel)
        assert isinstance(
            kernel_for(SIMILARITY_FUNCTIONS["token_jaccard"]), TokenJaccardKernel
        )
        assert isinstance(
            kernel_for(SIMILARITY_FUNCTIONS["numeric"]), NumericKernel
        )
        assert isinstance(
            kernel_for(SIMILARITY_FUNCTIONS["jaro_winkler"]), MemoizedKernel
        )

    def test_tfidf_subclass_has_no_kernel(self):
        class Tweaked(TfIdfCosine):
            def __call__(self, first, second):
                return 0.5

        assert kernel_for(Tweaked()) is None


class TestPlanFor:
    def test_full_plan_for_builtin_config(self):
        comparator = AttributeComparator(
            {"name": "jaro_winkler", "zip": "exact"}
        )
        plan = plan_for(comparator)
        assert plan is not None
        assert plan.attributes == ("name", "zip")

    def test_no_plan_when_any_measure_lacks_a_kernel(self):
        comparator = AttributeComparator(
            {"name": "jaro_winkler", "zip": lambda a, b: 0.0}
        )
        assert plan_for(comparator) is None

    def test_no_plan_for_comparator_subclass(self):
        class Custom(AttributeComparator):
            def compare(self, first, second):  # pragma: no cover
                raise NotImplementedError

        assert plan_for(Custom({"name": "exact"})) is None

    def test_no_plan_for_duck_typed_comparator(self):
        class Duck:
            functions = {"name": SIMILARITY_FUNCTIONS["exact"]}

        assert plan_for(Duck()) is None


def test_compare_block_empty_pairs():
    store = store_of(VALUES)
    comparator = AttributeComparator({"a": "exact"})
    assert compare_block(store, [], plan_for(comparator)) == []
