"""Columnar/scalar equivalence: serial, sharded, fallback, and wiring."""

import random
import struct

import pytest

from repro.core.records import Dataset, Record
from repro.engine.executors import SerialExecutor
from repro.matching.attribute_matching import AttributeComparator
from repro.matching.parallel import (
    COLUMNAR_MIN_PAIRS,
    ParallelConfig,
    compare_pairs_sharded,
)
from repro.matching.blocking import first_token_key, standard_blocking
from repro.matching.pipeline import MatchingPipeline
from repro.telemetry.metrics import get_metrics

FIRST = ["alice", "alicia", "bob", "robert", "carol", "karol", "dave"]
LAST = ["smith", "smyth", "jones", "johnson", "miller", "muller"]
CITY = ["berlin", "potsdam", "hamburg", "munich", ""]
ZIP = ["10115", "10117", "14467", "nan", "inf", None, "80331"]


def person_dataset(count, seed=7):
    rng = random.Random(seed)
    records = [
        Record(
            record_id=f"p{i:04d}",
            values={
                "first_name": rng.choice(FIRST),
                "last_name": rng.choice(LAST),
                "city": rng.choice(CITY),
                "zip": rng.choice(ZIP),
            },
        )
        for i in range(count)
    ]
    return Dataset(records, name="people")


def comparator():
    return AttributeComparator({
        "first_name": "jaro_winkler",
        "last_name": "monge_elkan",
        "city": "ngram_jaccard",
        "zip": "numeric",
    })


def bits(value):
    return None if value is None else struct.pack("<d", value)


def assert_identical(vectors_a, vectors_b):
    assert len(vectors_a) == len(vectors_b)
    for left, right in zip(vectors_a, vectors_b):
        assert left.pair == right.pair
        assert list(left.values) == list(right.values)
        for attribute in left.values:
            assert bits(left.values[attribute]) == bits(
                right.values[attribute]
            ), (attribute, left.pair)


@pytest.fixture
def dataset():
    return person_dataset(120)


@pytest.fixture
def candidates(dataset):
    return standard_blocking(dataset, first_token_key("last_name"))


class TestSerialEquivalence:
    def test_columnar_serial_matches_scalar_serial(self, dataset, candidates):
        scalar, missing_a = compare_pairs_sharded(
            dataset, candidates, comparator(), columnar=False
        )
        fast, missing_b = compare_pairs_sharded(
            dataset, candidates, comparator(), columnar=True
        )
        assert missing_a == missing_b == []
        assert len(fast) >= COLUMNAR_MIN_PAIRS
        assert_identical(scalar, fast)

    def test_small_blocks_fall_back_to_scalar_loop(self, dataset):
        # below the gate the scalar loop runs; output identical anyway
        pairs = sorted(
            standard_blocking(dataset, first_token_key("last_name"))
        )[: COLUMNAR_MIN_PAIRS - 1]
        scalar, _ = compare_pairs_sharded(
            dataset, pairs, comparator(), columnar=False
        )
        fast, _ = compare_pairs_sharded(
            dataset, pairs, comparator(), columnar=True
        )
        assert_identical(scalar, fast)


class TestShardedEquivalence:
    def test_columnar_shards_match_scalar_serial(self, dataset, candidates):
        scalar, _ = compare_pairs_sharded(
            dataset, candidates, comparator(), columnar=False
        )
        sharded, _ = compare_pairs_sharded(
            dataset,
            candidates,
            comparator(),
            config=ParallelConfig(workers=4, shards=7, min_pairs=0),
            executor=SerialExecutor(),
            columnar=True,
        )
        assert_identical(scalar, sharded)

    def test_columnar_shards_match_scalar_shards(self, dataset, candidates):
        config = ParallelConfig(workers=2, shards=5, min_pairs=0)
        scalar, _ = compare_pairs_sharded(
            dataset,
            candidates,
            comparator(),
            config=config,
            executor=SerialExecutor(),
            columnar=False,
        )
        fast, _ = compare_pairs_sharded(
            dataset,
            candidates,
            comparator(),
            config=config,
            executor=SerialExecutor(),
            columnar=True,
        )
        assert_identical(scalar, fast)


class TestFallback:
    def test_unkernelizable_measure_falls_back(self, dataset, candidates):
        def custom(a, b):
            return 0.25

        mixed = AttributeComparator(
            {"first_name": "jaro_winkler", "last_name": custom}
        )
        fallback = get_metrics().counter("frost_kernel_fallback_pairs_total")
        before = fallback.value
        vectors, _ = compare_pairs_sharded(
            dataset, candidates, mixed, columnar=True
        )
        assert fallback.value > before
        assert all(
            vector.values["last_name"] in (0.25, None) for vector in vectors
        )

    def test_missing_records_reported_same_as_scalar(self, dataset):
        pairs = sorted(
            standard_blocking(dataset, first_token_key("last_name"))
        )
        pairs.append(("p0000", "zz-gone"))
        scalar, missing_a = compare_pairs_sharded(
            dataset, pairs, comparator(), columnar=False
        )
        fast, missing_b = compare_pairs_sharded(
            dataset, pairs, comparator(), columnar=True
        )
        assert missing_a == missing_b == ["zz-gone"]
        assert_identical(scalar, fast)


class TestPipelineKnob:
    def test_with_columnar_off_is_byte_identical(self, dataset):
        def build(columnar):
            return MatchingPipeline(
                candidate_generator=lambda d: standard_blocking(
                    d, first_token_key("last_name")
                ),
                comparator=comparator(),
                decision_model=lambda v: v.mean(),
                threshold=0.8,
                columnar=columnar,
            )

        fast = build(True).run(dataset)
        slow = build(False).run(dataset)
        assert_identical(fast.vectors, slow.vectors)
        assert [
            (sp.pair, bits(sp.score)) for sp in fast.scored_pairs
        ] == [(sp.pair, bits(sp.score)) for sp in slow.scored_pairs]
        assert fast.experiment.matches == slow.experiment.matches

    def test_with_columnar_returns_clone(self, dataset):
        pipeline = MatchingPipeline(
            candidate_generator=lambda d: set(),
            comparator=comparator(),
            decision_model=lambda v: v.mean(),
        )
        assert pipeline.columnar is True
        clone = pipeline.with_columnar(False)
        assert clone is not pipeline
        assert clone.columnar is False
        assert pipeline.columnar is True
        assert clone.comparator is pipeline.comparator

    def test_fingerprint_ignores_columnar(self):
        pipeline = MatchingPipeline(
            candidate_generator=standard_blocking,
            comparator=comparator(),
            decision_model=lambda v: v.mean(),
        )
        assert (
            pipeline.config_fingerprint()
            == pipeline.with_columnar(False).config_fingerprint()
        )


class TestTelemetry:
    def test_kernel_counters_advance(self, dataset, candidates):
        metrics = get_metrics()
        pairs_counter = metrics.counter("frost_kernel_pairs_total")
        distinct_counter = metrics.counter("frost_kernel_distinct_pairs_total")
        builds_counter = metrics.counter("frost_kernel_store_builds_total")
        before = (
            pairs_counter.value,
            distinct_counter.value,
            builds_counter.value,
        )
        compare_pairs_sharded(dataset, candidates, comparator(), columnar=True)
        assert pairs_counter.value > before[0]
        assert distinct_counter.value > before[1]
        assert builds_counter.value > before[2]
