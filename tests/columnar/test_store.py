"""Tests for the columnar record store (interning, columns, slicing)."""

import pickle

import numpy as np
import pytest

from repro.columnar import NULL_VID, ColumnarStore
from repro.core.records import Dataset, Record


def make_records(rows):
    return {
        rid: Record(record_id=rid, values=values) for rid, values in rows
    }


@pytest.fixture
def store():
    records = make_records([
        ("r1", {"name": "alice smith", "zip": "12345"}),
        ("r2", {"name": "alice smith", "zip": None}),
        ("r3", {"name": "bob", "zip": ""}),
        ("r4", {"name": None, "zip": "12345"}),
    ])
    return ColumnarStore.from_records(records, ["name", "zip"])


class TestInterning:
    def test_duplicate_values_share_one_vid(self, store):
        column = store.column("name")
        assert column[0] == column[1]
        assert column[0] != column[2]

    def test_null_and_empty_map_to_null_vid(self, store):
        assert store.column("zip")[1] == NULL_VID
        assert store.column("zip")[2] == NULL_VID
        assert store.column("name")[3] == NULL_VID

    def test_vid_round_trips_to_string(self, store):
        vid = int(store.column("name")[2])
        assert store.value_of(vid) == "bob"
        assert store.value_of(NULL_VID) is None

    def test_distinct_values_counts_pool(self, store):
        # alice smith, bob, 12345
        assert store.distinct_values == 3

    def test_values_pool_is_shared_across_attributes(self):
        records = make_records([
            ("r1", {"a": "same", "b": "same"}),
        ])
        store = ColumnarStore.from_records(records, ["a", "b"])
        assert store.column("a")[0] == store.column("b")[0]

    def test_interning_is_case_sensitive(self):
        records = make_records([
            ("r1", {"a": "Alice"}),
            ("r2", {"a": "alice"}),
        ])
        store = ColumnarStore.from_records(records, ["a"])
        assert store.column("a")[0] != store.column("a")[1]


class TestContainer:
    def test_len_contains_row_of(self, store):
        assert len(store) == 4
        assert "r3" in store
        assert "nope" not in store
        assert store.row_of("r3") == 2

    def test_unknown_attribute_raises(self, store):
        with pytest.raises(KeyError, match="not in columnar store"):
            store.column("missing")

    def test_record_rebuilds_values(self, store):
        record = store.record("r2")
        assert record.record_id == "r2"
        assert record.value("name") == "alice smith"
        assert record.value("zip") is None

    def test_repr_mentions_shape(self, store):
        assert "rows=4" in repr(store)


class TestFromDataset:
    def test_rows_align_with_numeric_ids(self):
        dataset = Dataset(
            [Record(f"x{i}", {"name": f"v{i % 3}"}) for i in range(7)],
            name="d",
        )
        store = dataset.columnar_store()
        for record in dataset:
            assert store.row_of(record.record_id) == dataset.numeric_id(
                record.record_id
            )

    def test_dataset_caches_the_store(self):
        dataset = Dataset([Record("a", {"name": "x"})], name="d")
        assert dataset.columnar_store() is dataset.columnar_store()

    def test_values_first_entry_must_be_null(self):
        with pytest.raises(ValueError, match="null sentinel"):
            ColumnarStore(["a"], ["r1"], ["oops"], {"a": np.zeros(1)})

    def test_column_length_must_match_rows(self):
        with pytest.raises(ValueError, match="rows"):
            ColumnarStore(
                ["a"], ["r1", "r2"], [None, "x"], {"a": np.zeros(1)}
            )


class TestDerived:
    def test_token_csr_rows_are_sorted_unique(self, store):
        indptr, ids = store.token_csr()
        assert len(indptr) == store.distinct_values + 2  # pool incl. null
        for vid in range(len(indptr) - 1):
            row = ids[indptr[vid] : indptr[vid + 1]]
            assert list(row) == sorted(set(row.tolist()))
        # null vid owns no tokens
        assert indptr[NULL_VID + 1] - indptr[NULL_VID] == 0

    def test_token_sequences_preserve_order(self):
        records = make_records([("r1", {"a": "Zebra apple zebra"})])
        store = ColumnarStore.from_records(records, ["a"])
        vid = int(store.column("a")[0])
        assert store.token_sequences()[vid] == ("zebra", "apple", "zebra")

    def test_ngram_csr_cached_per_n(self, store):
        assert store.ngram_csr(2) is store.ngram_csr(2)
        assert store.ngram_csr(3) is not store.ngram_csr(2)

    def test_numeric_marks_finite_parses_only(self):
        records = make_records([
            ("r1", {"a": "12.5"}),
            ("r2", {"a": "inf"}),
            ("r3", {"a": "nan"}),
            ("r4", {"a": "abc"}),
            ("r5", {"a": "1e400"}),
        ])
        store = ColumnarStore.from_records(records, ["a"])
        parsed, usable = store.numeric()
        vid = lambda row: int(store.column("a")[row])
        assert usable[vid(0)] and parsed[vid(0)] == 12.5
        assert not usable[vid(1)]
        assert not usable[vid(2)]
        assert not usable[vid(3)]
        assert not usable[vid(4)]  # overflows to inf

    def test_soundex_codes_sentinel_is_zero(self):
        records = make_records([
            ("r1", {"a": "Robert"}),
            ("r2", {"a": "Rupert"}),
            ("r3", {"a": "123"}),
        ])
        store = ColumnarStore.from_records(records, ["a"])
        codes = store.soundex_codes()
        column = store.column("a")
        assert codes[column[0]] == codes[column[1]]  # both R163
        assert codes[column[2]] == 0  # sentinel


class TestSliceAndWire:
    def test_slice_keeps_requested_rows_in_order(self, store):
        sliced = store.slice(["r3", "r1"])
        assert sliced.row_ids == ("r3", "r1")
        assert sliced.record("r1").value("name") == "alice smith"
        assert sliced.record("r3").value("zip") is None

    def test_slice_reinterns_compactly(self, store):
        sliced = store.slice(["r3"])
        # only "bob" remains in the pool
        assert sliced.distinct_values == 1
        assert sliced.value_of(int(sliced.column("name")[0])) == "bob"

    def test_pickle_round_trip_drops_derived_state(self, store):
        store.token_csr()  # populate a derived cache
        clone = pickle.loads(pickle.dumps(store))
        assert clone.row_ids == store.row_ids
        assert clone._token_csr is None  # rebuilt lazily
        for attribute in store.attributes:
            np.testing.assert_array_equal(
                clone.column(attribute), store.column(attribute)
            )
        indptr_a, ids_a = store.token_csr()
        indptr_b, ids_b = clone.token_csr()
        np.testing.assert_array_equal(indptr_a, indptr_b)
        np.testing.assert_array_equal(ids_a, ids_b)
