"""Tests for the incremental blocking index (delta candidate emission)."""

import pytest

from repro.core.records import Dataset, Record
from repro.matching.blocking import (
    first_token_key,
    standard_blocking,
    token_blocking,
)
from repro.streaming.delta_blocking import (
    IncrementalBlockingIndex,
    single_key,
    token_keys,
)


def person(record_id, last, city=None):
    return Record(record_id, {"last": last, "city": city})


class TestSingleKeyIndex:
    def test_first_batch_emits_within_batch_pairs(self):
        index = IncrementalBlockingIndex(single_key(first_token_key("last")))
        delta = index.ingest(
            [person("a", "smith"), person("b", "smith"), person("c", "jones")]
        )
        assert delta == [("a", "b")]

    def test_second_batch_emits_only_delta(self):
        index = IncrementalBlockingIndex(single_key(first_token_key("last")))
        index.ingest([person("a", "smith"), person("b", "smith")])
        delta = index.ingest([person("c", "smith"), person("d", "jones")])
        assert delta == [("a", "c"), ("b", "c")]

    def test_null_keys_never_become_candidates(self):
        index = IncrementalBlockingIndex(single_key(first_token_key("last")))
        delta = index.ingest([person("a", None), person("b", None)])
        assert delta == []
        assert "a" in index  # still registered, just unblocked

    def test_duplicate_record_rejected(self):
        index = IncrementalBlockingIndex(single_key(first_token_key("last")))
        index.ingest([person("a", "smith")])
        with pytest.raises(ValueError, match="already indexed"):
            index.ingest([person("a", "smith")])

    def test_delta_union_equals_batch_blocking(self):
        """Ingest-by-ingest deltas sum to the batch candidate set."""
        records = [
            person(f"r{i}", last)
            for i, last in enumerate(
                ["smith", "smith", "jones", "smith", "jones", "brown"]
            )
        ]
        index = IncrementalBlockingIndex(single_key(first_token_key("last")))
        emitted = set()
        for start in range(0, len(records), 2):
            emitted.update(index.ingest(records[start : start + 2]))
        batch = standard_blocking(
            Dataset(records, name="d"), first_token_key("last")
        )
        assert emitted == batch


class TestTokenIndex:
    def test_matches_token_blocking_without_cap(self):
        records = [
            Record("a", {"name": "alpha beta gamma"}),
            Record("b", {"name": "beta delta"}),
            Record("c", {"name": "epsilon gamma"}),
            Record("d", {"name": "zeta"}),
        ]
        index = IncrementalBlockingIndex(token_keys(min_token_length=3))
        emitted = set(index.ingest(records[:2])) | set(index.ingest(records[2:]))
        batch = token_blocking(
            Dataset(records, name="d"), min_token_length=3, max_block_size=None
        )
        assert emitted == batch

    def test_min_token_length_respected(self):
        index = IncrementalBlockingIndex(token_keys(min_token_length=5))
        delta = index.ingest(
            [Record("a", {"name": "tiny word"}), Record("b", {"name": "tiny word"})]
        )
        assert delta == []  # both tokens are shorter than five characters

    def test_attribute_restriction(self):
        index = IncrementalBlockingIndex(
            token_keys(attributes=["name"], min_token_length=3)
        )
        delta = index.ingest(
            [
                Record("a", {"name": "unique1", "city": "shared"}),
                Record("b", {"name": "unique2", "city": "shared"}),
            ]
        )
        assert delta == []  # the shared token lives in an ignored attribute


class TestBlockSizeCap:
    def test_cap_stops_emission_but_keeps_membership(self):
        index = IncrementalBlockingIndex(
            single_key(first_token_key("last")), max_block_size=2
        )
        first = index.ingest([person("a", "smith"), person("b", "smith")])
        assert first == [("a", "b")]
        second = index.ingest([person("c", "smith")])
        assert second == []  # block is full: c joins silently
        assert index.block_items() == [
            ("smith", "a"), ("smith", "b"), ("smith", "c")
        ]

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            IncrementalBlockingIndex(
                single_key(first_token_key("last")), max_block_size=0
            )


class TestRestore:
    def test_restore_round_trips_block_items(self):
        index = IncrementalBlockingIndex(single_key(first_token_key("last")))
        index.ingest([person("a", "smith"), person("b", "smith"),
                      person("c", "jones")])
        clone = IncrementalBlockingIndex(single_key(first_token_key("last")))
        clone.restore(index.block_items())
        assert clone.block_items() == index.block_items()
        # the restored index continues emitting correct deltas
        assert clone.ingest([person("d", "smith")]) == [
            ("a", "d"), ("b", "d")
        ]

    def test_retract_undoes_the_latest_ingest(self):
        index = IncrementalBlockingIndex(single_key(first_token_key("last")))
        index.ingest([person("a", "smith"), person("b", "jones")])
        before = index.block_items()
        delta = index.ingest_delta([person("c", "smith"), person("d", "brown")])
        assert delta.pairs == [("a", "c")]
        assert delta.memberships == [("smith", "c"), ("brown", "d")]
        index.retract(delta)
        assert index.block_items() == before
        assert "c" not in index and "d" not in index
        # retracted records can be ingested again, emitting the same delta
        assert index.ingest([person("c", "smith")]) == [("a", "c")]

    def test_restore_requires_empty_index(self):
        index = IncrementalBlockingIndex(single_key(first_token_key("last")))
        index.ingest([person("a", "smith")])
        with pytest.raises(ValueError, match="empty"):
            index.restore([("smith", "b")])
