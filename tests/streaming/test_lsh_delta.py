"""Property-based tests for incremental MinHash-LSH delta blocking.

The correctness of streaming LSH rests on one invariant — banding is
append-only, so the union of the delta candidate sets over any batch
split equals the batch :func:`~repro.matching.lsh.lsh_blocking`
candidate set over the same records.  Hypothesis searches randomized
record corpora *and* randomized batch splits for a counterexample.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import Dataset, Record
from repro.matching.lsh import LshConfig, lsh_blocking
from repro.streaming import build_pipeline_and_index, build_session
from repro.streaming.delta_blocking import IncrementalLshIndex

# Small vocabulary + short values maximizes bucket collisions, which is
# where an append-only bookkeeping bug would hide.
words = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "epsil", "zeta", "eta", "theta"]
)
values = st.lists(words, min_size=0, max_size=4).map(" ".join)

# A faster config than the default keeps hypothesis example counts cheap
# without changing the code path under test.
SMALL = LshConfig(num_perm=16, bands=8)


def make_records(texts: list[str]) -> list[Record]:
    return [
        Record(f"r{index}", {"name": text or None})
        for index, text in enumerate(texts)
    ]


def split_batches(records: list[Record], sizes: list[int]) -> list[list[Record]]:
    """Chop ``records`` into consecutive batches of the drawn sizes."""
    batches = []
    cursor = 0
    for size in sizes:
        if cursor >= len(records):
            break
        batches.append(records[cursor:cursor + size])
        cursor += size
    if cursor < len(records):
        batches.append(records[cursor:])
    return batches


@given(
    texts=st.lists(values, min_size=0, max_size=24),
    sizes=st.lists(st.integers(min_value=1, max_value=7), max_size=12),
)
@settings(max_examples=60, deadline=None)
def test_delta_union_equals_batch_lsh_for_any_split(texts, sizes):
    """Union-of-deltas == batch LSH candidate set, for randomized batch
    splits — the exactness guarantee streaming sessions rely on."""
    records = make_records(texts)
    index = IncrementalLshIndex(SMALL)
    emitted = set()
    for batch in split_batches(records, sizes):
        emitted.update(index.ingest(batch))
    batch_candidates = lsh_blocking(Dataset(records, name="d"), SMALL)
    assert emitted == batch_candidates


@given(
    texts=st.lists(values, min_size=1, max_size=16),
    sizes=st.lists(st.integers(min_value=1, max_value=5), max_size=8),
)
@settings(max_examples=30, deadline=None)
def test_delta_ingests_are_disjoint(texts, sizes):
    """No pair is emitted twice across ingests (deltas partition the
    batch candidate set)."""
    records = make_records(texts)
    index = IncrementalLshIndex(SMALL)
    seen = set()
    for batch in split_batches(records, sizes):
        delta = index.ingest(batch)
        assert not (set(delta) & seen)
        seen.update(delta)


class TestIncrementalLshIndex:
    def test_exact_duplicates_pair_across_batches(self):
        index = IncrementalLshIndex()
        first = index.ingest([Record("a", {"name": "john smith"})])
        assert first == []
        second = index.ingest([Record("b", {"name": "john smith"})])
        assert second == [("a", "b")]

    def test_tokenless_records_join_silently(self):
        index = IncrementalLshIndex()
        assert index.ingest([Record("a", {"name": None})]) == []
        assert "a" in index
        assert index.block_count == 0

    def test_retract_undoes_the_latest_ingest(self):
        index = IncrementalLshIndex()
        index.ingest([Record("a", {"name": "john smith"})])
        before = index.block_items()
        delta = index.ingest_delta([Record("b", {"name": "john smith"})])
        assert delta.pairs == [("a", "b")]
        index.retract(delta)
        assert index.block_items() == before
        assert "b" not in index
        # a retracted record re-ingests with the identical delta
        assert index.ingest([Record("b", {"name": "john smith"})]) == [("a", "b")]

    def test_restore_round_trips_without_rehashing(self):
        index = IncrementalLshIndex()
        index.ingest(
            [Record("a", {"name": "john smith"}),
             Record("b", {"name": "john smith"}),
             Record("c", {"name": "unrelated tokens"})]
        )
        clone = IncrementalLshIndex()
        clone.restore(index.block_items())
        assert clone.block_items() == index.block_items()
        # the restored index keeps emitting correct deltas
        assert clone.ingest([Record("d", {"name": "john smith"})]) == [
            ("a", "d"), ("b", "d")
        ]

    def test_config_fingerprint_matches_batch_blocker(self):
        from repro.matching.lsh import LshBlocking

        config = LshConfig(num_perm=64, bands=16)
        assert (
            IncrementalLshIndex(config).config_fingerprint()
            == LshBlocking(config).config_fingerprint()
        )

    def test_capped_index_stops_emitting(self):
        config = LshConfig(max_block_size=2)
        index = IncrementalLshIndex(config)
        records = [Record(f"r{i}", {"name": "same tokens"}) for i in range(4)]
        index.ingest(records[:2])
        assert index.ingest(records[2:]) == []  # buckets are full


LSH_STREAM_CONFIG = {
    "key": {"kind": "lsh", "num_perm": 64, "bands": 16, "seed": 5},
    "similarities": {"name": "jaro_winkler", "zip": "exact"},
    "threshold": 0.7,
}


class TestLshStreamingSession:
    def rows(self):
        return [
            Record("r1", {"name": "alpha centauri system", "zip": "12"}),
            Record("r2", {"name": "alpha centauri systm", "zip": "12"}),
            Record("r3", {"name": "beta pictoris", "zip": "99"}),
            Record("r4", {"name": "beta pictoris b", "zip": "99"}),
            Record("r5", {"name": "gamma draconis", "zip": "50"}),
            Record("r6", {"name": "wholly different", "zip": "77"}),
        ]

    def test_incremental_clusters_equal_batch_recompute(self):
        records = self.rows()
        session = build_session(LSH_STREAM_CONFIG, name="lsh-stream")
        for start in range(0, len(records), 2):
            session.ingest(records[start:start + 2])
        pipeline, _ = build_pipeline_and_index(LSH_STREAM_CONFIG)
        batch_run = pipeline.run(Dataset(records, name="batch"))
        assert (
            session.clusters().nontrivial_clusters()
            == batch_run.experiment.clustering().nontrivial_clusters()
        )

    def test_status_reports_lsh_blocking(self):
        session = build_session(LSH_STREAM_CONFIG, name="lsh-stream")
        blocking = session.status()["blocking"]
        assert blocking["kind"] == "lsh"
        assert blocking["num_perm"] == 64
        assert blocking["rows"] == 4  # normalized: derived from bands

    def test_malformed_lsh_config_raises_value_error(self):
        bad = {
            "key": {"kind": "lsh", "num_perm": 100, "bands": 33},
            "similarities": {"name": "exact"},
        }
        with pytest.raises(ValueError, match="divide"):
            build_session(bad, name="broken")


class TestWindowedBlockerRejection:
    def test_sorted_neighborhood_gets_an_explanatory_error(self):
        """Regression: windowed blockers must fail loudly in delta mode
        with the *reason*, not a generic unknown-kind message."""
        from repro.streaming import validate_config

        config = {
            "key": {"kind": "sorted_neighborhood", "attribute": "name"},
            "similarities": {"name": "exact"},
        }
        with pytest.raises(ValueError, match="sort order"):
            validate_config(config)
        with pytest.raises(ValueError, match="delta"):
            validate_config(config)

    def test_unknown_kinds_list_the_supported_ones(self):
        from repro.streaming import validate_config

        with pytest.raises(ValueError, match="first_token.*lsh"):
            validate_config(
                {"key": {"kind": "nope"}, "similarities": {"name": "exact"}}
            )
