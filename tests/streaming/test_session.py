"""Tests for streaming matching sessions: snapshots, equivalence, durability."""

import pytest

from repro.core.records import Dataset, Record
from repro.storage.database import FrostStore
from repro.streaming import (
    StreamError,
    build_pipeline_and_index,
    build_session,
    open_session,
    validate_config,
)

CONFIG = {
    "key": {"kind": "first_token", "attribute": "last"},
    "similarities": {
        "first": "jaro_winkler",
        "last": "jaro_winkler",
        "zip": "exact",
    },
    "threshold": 0.8,
}


def person(record_id, first, last, zip_code=None):
    return Record(record_id, {"first": first, "last": last, "zip": zip_code})


BATCH_ONE = [
    person("p1", "john", "smith", "12345"),
    person("p2", "jon", "smith", "12345"),
    person("p3", "mary", "jones", "99999"),
]
BATCH_TWO = [
    person("p4", "maria", "jones", "99999"),
    person("p5", "johnny", "smith", "12345"),
]


class TestIngest:
    def test_snapshots_are_versioned_with_lineage(self):
        session = build_session(CONFIG)
        first = session.ingest(BATCH_ONE)
        second = session.ingest(BATCH_TWO)
        assert (first.version, first.parent_version) == (1, None)
        assert (second.version, second.parent_version) == (2, 1)
        assert session.version == 2
        assert [s.version for s in session.snapshots] == [1, 2]

    def test_delta_work_only(self):
        """The second batch scores new-vs-{new,old} pairs, nothing else."""
        session = build_session(CONFIG)
        session.ingest(BATCH_ONE)
        snapshot = session.ingest(BATCH_TWO)
        # smith block: p5 against p1, p2; jones block: p4 against p3
        assert snapshot.delta_candidates == 3

    def test_clusters_maintained_across_batches(self):
        session = build_session(CONFIG)
        session.ingest(BATCH_ONE)
        session.ingest(BATCH_TWO)
        assert set(session.clusters().clusters) == {
            ("p1", "p2", "p5"),
            ("p3", "p4"),
        }

    def test_duplicate_record_across_batches_rejected(self):
        session = build_session(CONFIG)
        session.ingest(BATCH_ONE)
        with pytest.raises(StreamError, match="already ingested"):
            session.ingest([person("p1", "john", "smith")])
        assert session.version == 1  # failed batch leaves no snapshot

    def test_json_rows_are_coerced(self):
        session = build_session(CONFIG)
        snapshot = session.ingest(
            [
                {"id": "p1", "first": "john", "last": "smith"},
                {"id": "p2", "first": "jon", "last": "smith"},
            ]
        )
        assert snapshot.record_count == 2
        assert snapshot.accepted_matches == 1

    def test_status_and_experiment(self):
        session = build_session(CONFIG, name="crm")
        session.ingest(BATCH_ONE)
        status = session.status()
        assert status["name"] == "crm"
        assert status["records"] == 3
        assert status["durable"] is False
        experiment = session.experiment()
        assert experiment.solution == "streaming"
        assert {m.pair for m in experiment} == {("p1", "p2")}


class TestBatchEquivalence:
    def test_incremental_equals_full_recompute(self):
        """The acceptance property: after k ingests the clustering is
        identical to one batch run over the union of the records."""
        session = build_session(CONFIG)
        session.ingest(BATCH_ONE)
        session.ingest(BATCH_TWO)
        pipeline, _ = build_pipeline_and_index(CONFIG)
        full = pipeline.run(Dataset(BATCH_ONE + BATCH_TWO, name="union"))
        assert set(session.clusters().clusters) == set(
            full.experiment.clustering().clusters
        )

    def test_equivalence_is_batch_split_invariant(self):
        """Any partition of the stream into batches converges to the
        same clusters (delta blocking is exact for key-based schemes)."""
        records = BATCH_ONE + BATCH_TWO
        one_by_one = build_session(CONFIG)
        for record in records:
            one_by_one.ingest([record])
        all_at_once = build_session(CONFIG)
        all_at_once.ingest(records)
        assert set(one_by_one.clusters().clusters) == set(
            all_at_once.clusters().clusters
        )


class TestDurability:
    def test_resume_restores_full_state(self):
        store = FrostStore(":memory:")
        session = build_session(CONFIG, store=store, name="crm")
        session.ingest(BATCH_ONE)
        session.ingest(BATCH_TWO)

        resumed = open_session(store, "crm")
        assert resumed.version == 2
        assert resumed.record_count == 5
        assert set(resumed.clusters().clusters) == set(
            session.clusters().clusters
        )
        assert [s.as_dict() for s in resumed.snapshots] == [
            s.as_dict() for s in session.snapshots
        ]

    def test_resumed_session_keeps_ingesting(self):
        store = FrostStore(":memory:")
        build_session(CONFIG, store=store, name="crm").ingest(BATCH_ONE)
        resumed = open_session(store, "crm")
        snapshot = resumed.ingest(BATCH_TWO)
        assert snapshot.version == 2
        assert set(resumed.clusters().clusters) == {
            ("p1", "p2", "p5"),
            ("p3", "p4"),
        }
        # and the continuation itself is durable
        assert open_session(store, "crm").version == 2

    def test_duplicate_stream_name_rejected(self):
        store = FrostStore(":memory:")
        build_session(CONFIG, store=store, name="crm")
        with pytest.raises(StreamError, match="already exists"):
            build_session(CONFIG, store=store, name="crm")

    def test_failed_persist_rolls_the_session_back(self):
        """A store rejection (e.g. a concurrent writer took the version)
        must leave the live session exactly as before the batch."""
        store = FrostStore(":memory:")
        session = build_session(CONFIG, store=store, name="crm")
        session.ingest(BATCH_ONE)
        before = session.status()
        before_clusters = set(session.clusters().clusters)

        # another writer (a second live session on the same stream)
        # persists version 2 first
        shadow = open_session(store, "crm")
        shadow.ingest([person("x1", "kim", "lee")])

        from repro.storage.database import StorageError

        with pytest.raises(StorageError, match="collides"):
            session.ingest(BATCH_TWO)
        assert session.status() == before
        assert set(session.clusters().clusters) == before_clusters
        # the rolled-back records are ingestable again after a resync
        resynced = open_session(store, "crm")
        snapshot = resynced.ingest(BATCH_TWO)
        assert snapshot.version == 3

    def test_snapshot_lineage_persisted(self):
        store = FrostStore(":memory:")
        session = build_session(CONFIG, store=store, name="crm")
        session.ingest(BATCH_ONE)
        session.ingest(BATCH_TWO)
        lineage = store.stream_snapshot_lineage("crm")
        assert [row["version"] for row in lineage] == [1, 2]
        assert lineage[1]["parent_version"] == 1
        assert lineage[1]["record_count"] == 5


class TestConfigValidation:
    def test_unknown_key_kind(self):
        with pytest.raises(ValueError, match="key.kind"):
            validate_config({**CONFIG, "key": {"kind": "nope"}})

    def test_missing_attribute(self):
        with pytest.raises(ValueError, match="attribute"):
            validate_config({**CONFIG, "key": {"kind": "prefix"}})

    def test_unknown_similarity(self):
        with pytest.raises(ValueError, match="unknown similarity"):
            validate_config({**CONFIG, "similarities": {"first": "nope"}})

    def test_unknown_preparer(self):
        with pytest.raises(ValueError, match="unknown preparer"):
            validate_config({**CONFIG, "preparers": ["nope"]})

    def test_token_config_builds(self):
        config = {
            "key": {"kind": "token", "attributes": ["last"],
                    "min_token_length": 3},
            "similarities": {"last": "jaro_winkler"},
            "threshold": 0.9,
        }
        session = build_session(config)
        snapshot = session.ingest(BATCH_ONE)
        assert snapshot.record_count == 3

    def test_columnar_must_be_boolean(self):
        with pytest.raises(ValueError, match="columnar"):
            validate_config({**CONFIG, "columnar": "yes"})

    def test_columnar_defaults_on_and_round_trips_when_set(self):
        assert "columnar" not in validate_config(CONFIG)
        normalized = validate_config({**CONFIG, "columnar": False})
        assert normalized["columnar"] is False
        pipeline, _ = build_pipeline_and_index({**CONFIG, "columnar": False})
        assert pipeline.columnar is False
        pipeline, _ = build_pipeline_and_index(CONFIG)
        assert pipeline.columnar is True

    def test_status_reports_columnar(self):
        session = build_session({**CONFIG, "columnar": False})
        assert session.status()["columnar"] is False
