"""Cross-layer integration: engine jobs, API routes, CLI commands."""

import pytest

from repro.core.platform import FrostPlatform
from repro.engine import ExperimentEngine, JobSpec
from repro.server.api import ApiError, FrostApi
from repro.storage.database import FrostStore
from repro.streaming import build_session

CONFIG = {
    "key": {"kind": "first_token", "attribute": "last"},
    "similarities": {"first": "jaro_winkler", "last": "jaro_winkler"},
    "threshold": 0.8,
}

ROWS_ONE = [
    {"id": "p1", "first": "john", "last": "smith"},
    {"id": "p2", "first": "jon", "last": "smith"},
    {"id": "p3", "first": "mary", "last": "jones"},
]
ROWS_TWO = [
    {"id": "p4", "first": "maria", "last": "jones"},
    {"id": "p5", "first": "johnny", "last": "smith"},
]


class TestStreamIngestJob:
    def test_ingest_runs_as_engine_job(self):
        engine = ExperimentEngine(FrostPlatform())
        session = build_session(CONFIG, name="crm")
        results = engine.run(
            [
                JobSpec(
                    "stream_ingest",
                    {"session": session, "records": ROWS_ONE},
                    job_id="b1",
                    cacheable=False,
                )
            ]
        )
        assert results["b1"].state.value == "succeeded"
        assert results["b1"].value["version"] == 1
        assert results["b1"].value["stream"] == "crm"
        assert session.record_count == 3

    def test_chained_batches_respect_dependencies(self):
        engine = ExperimentEngine(FrostPlatform())
        session = build_session(CONFIG, name="crm")
        results = engine.run(
            [
                JobSpec(
                    "stream_ingest",
                    {"session": session, "records": ROWS_ONE},
                    job_id="b1",
                    cacheable=False,
                ),
                JobSpec(
                    "stream_ingest",
                    {"session": session, "records": ROWS_TWO},
                    job_id="b2",
                    depends_on=("b1",),
                    cacheable=False,
                ),
            ]
        )
        assert results["b2"].value["version"] == 2
        assert results["b2"].value["record_count"] == 5

    def test_ingest_jobs_are_never_cached(self):
        """Identical batches into different streams must both execute."""
        engine = ExperimentEngine(FrostPlatform())
        first = build_session(CONFIG, name="one")
        second = build_session(CONFIG, name="two")
        results = engine.run(
            [
                JobSpec("stream_ingest",
                        {"session": first, "records": ROWS_ONE}, job_id="j1"),
                JobSpec("stream_ingest",
                        {"session": second, "records": ROWS_ONE}, job_id="j2",
                        depends_on=("j1",)),
            ]
        )
        assert not results["j1"].cached and not results["j2"].cached
        assert first.record_count == second.record_count == 3

    def test_failed_ingest_fails_job_only(self):
        engine = ExperimentEngine(FrostPlatform())
        session = build_session(CONFIG, name="crm")
        session.ingest(ROWS_ONE)
        results = engine.run(
            [
                JobSpec(
                    "stream_ingest",
                    {"session": session, "records": ROWS_ONE},
                    job_id="dup",
                    cacheable=False,
                )
            ]
        )
        assert results["dup"].state.value == "failed"
        assert "already ingested" in results["dup"].error
        assert session.version == 1


@pytest.fixture
def api():
    return FrostApi(FrostPlatform())


class TestStreamApiRoutes:
    def test_create_ingest_status_roundtrip(self, api):
        created = api.handle(
            "/streams", method="POST",
            body={"name": "crm", "config": CONFIG},
        )
        assert created["name"] == "crm"
        assert created["version"] == 0
        first = api.handle(
            "/streams/crm/batches", method="POST", body={"records": ROWS_ONE}
        )
        assert first["snapshot"]["version"] == 1
        second = api.handle(
            "/streams/crm/batches", method="POST", body={"records": ROWS_TWO}
        )
        assert second["snapshot"]["version"] == 2
        assert second["snapshot"]["record_count"] == 5
        status = api.handle("/streams/crm")
        assert status["version"] == 2
        assert len(status["snapshots"]) == 2
        listing = api.handle("/streams")
        assert listing == {"streams": ["crm"]}

    def test_unknown_stream_is_404(self, api):
        with pytest.raises(ApiError) as missing:
            api.handle("/streams/nope")
        assert missing.value.status == 404

    def test_bad_config_is_400(self, api):
        with pytest.raises(ApiError) as bad:
            api.handle(
                "/streams", method="POST",
                body={"name": "x", "config": {"key": {"kind": "nope"}}},
            )
        assert bad.value.status == 400

    @pytest.mark.parametrize(
        "parallelism",
        [{"workers": "4"}, {"workers": 2.5}, {"shards": 0}, {"typo": 1}],
    )
    def test_bad_parallelism_config_is_400(self, api, parallelism):
        with pytest.raises(ApiError) as bad:
            api.handle(
                "/streams", method="POST",
                body={
                    "name": "x",
                    "config": {**CONFIG, "parallelism": parallelism},
                },
            )
        assert bad.value.status == 400

    def test_duplicate_name_is_400(self, api):
        api.handle(
            "/streams", method="POST", body={"name": "crm", "config": CONFIG}
        )
        with pytest.raises(ApiError) as dup:
            api.handle(
                "/streams", method="POST",
                body={"name": "crm", "config": CONFIG},
            )
        assert dup.value.status == 400

    def test_malformed_records_are_400(self, api):
        api.handle(
            "/streams", method="POST", body={"name": "crm", "config": CONFIG}
        )
        with pytest.raises(ApiError) as no_id:
            api.handle(
                "/streams/crm/batches", method="POST",
                body={"records": [{"first": "alice"}]},
            )
        assert no_id.value.status == 400
        with pytest.raises(ApiError) as dup_in_batch:
            api.handle(
                "/streams/crm/batches", method="POST",
                body={"records": [ROWS_ONE[0], ROWS_ONE[0]]},
            )
        assert dup_in_batch.value.status == 400
        assert api.handle("/streams/crm")["records"] == 0

    def test_duplicate_record_is_400(self, api):
        api.handle(
            "/streams", method="POST", body={"name": "crm", "config": CONFIG}
        )
        api.handle(
            "/streams/crm/batches", method="POST", body={"records": ROWS_ONE}
        )
        with pytest.raises(ApiError) as dup:
            api.handle(
                "/streams/crm/batches", method="POST",
                body={"records": ROWS_ONE},
            )
        assert dup.value.status == 400

    def test_durable_streams_resume_across_api_instances(self, tmp_path):
        path = tmp_path / "streams.db"
        with FrostStore(path) as store:
            first_api = FrostApi(FrostPlatform(), store=store)
            first_api.handle(
                "/streams", method="POST",
                body={"name": "crm", "config": CONFIG},
            )
            first_api.handle(
                "/streams/crm/batches", method="POST",
                body={"records": ROWS_ONE},
            )
        with FrostStore(path) as store:
            second_api = FrostApi(FrostPlatform(), store=store)
            status = second_api.handle("/streams/crm")
            assert status["version"] == 1
            assert status["records"] == 3
            second_api.handle(
                "/streams/crm/batches", method="POST",
                body={"records": ROWS_TWO},
            )
            assert second_api.handle("/streams/crm")["records"] == 5


class TestStreamCli:
    def _write_csv(self, path, rows):
        lines = ["id,first,last"]
        lines += [f"{r['id']},{r['first']},{r['last']}" for r in rows]
        path.write_text("\n".join(lines) + "\n")

    def test_full_cli_lifecycle(self, tmp_path, capsys):
        from repro.cli import main

        store = str(tmp_path / "s.db")
        day1 = tmp_path / "day1.csv"
        day2 = tmp_path / "day2.csv"
        self._write_csv(day1, ROWS_ONE)
        self._write_csv(day2, ROWS_TWO)

        assert main([
            "stream", "init", "--store", store, "--name", "crm",
            "--key-attribute", "last",
            "--similarity", "first=jaro_winkler",
            "--similarity", "last=jaro_winkler",
            "--threshold", "0.8",
        ]) == 0
        assert main([
            "stream", "ingest", "--store", store, "--name", "crm",
            "--dataset", str(day1),
        ]) == 0
        assert main([
            "stream", "ingest", "--store", store, "--name", "crm",
            "--dataset", str(day2),
        ]) == 0
        assert main([
            "stream", "snapshot", "--store", store, "--name", "crm",
        ]) == 0
        assert main(["stream", "status", "--store", store]) == 0
        output = capsys.readouterr().out
        assert "v1" in output and "v2" in output
        assert "p1 p2 p5" in output
        assert "p3 p4" in output

    def test_parallel_flags_persist_and_override(self, tmp_path, capsys):
        """``stream init --workers/--shards`` lands in the stored config
        and ``stream ingest --workers`` overrides it per invocation —
        with clusters identical to a serial stream's."""
        from repro.cli import main
        from repro.storage.database import FrostStore
        from repro.streaming import open_session

        store = str(tmp_path / "s.db")
        day1 = tmp_path / "day1.csv"
        day2 = tmp_path / "day2.csv"
        self._write_csv(day1, ROWS_ONE)
        self._write_csv(day2, ROWS_TWO)

        assert main([
            "stream", "init", "--store", store, "--name", "crm",
            "--key-attribute", "last",
            "--similarity", "first=jaro_winkler",
            "--similarity", "last=jaro_winkler",
            "--threshold", "0.8",
            "--workers", "2", "--shards", "4",
        ]) == 0
        assert main([
            "stream", "ingest", "--store", store, "--name", "crm",
            "--dataset", str(day1),
        ]) == 0
        # per-ingest override (also exercises with_parallelism on resume)
        assert main([
            "stream", "ingest", "--store", store, "--name", "crm",
            "--dataset", str(day2), "--workers", "1",
        ]) == 0

        with FrostStore(store) as opened:
            config = opened.load_stream("crm")["config"]
            assert config["parallelism"]["workers"] == 2
            assert config["parallelism"]["shards"] == 4
            session = open_session(opened, "crm")
            assert session.status()["parallelism"]["workers"] == 2
            parallel_clusters = set(session.clusters().clusters)

        serial_store = str(tmp_path / "serial.db")
        assert main([
            "stream", "init", "--store", serial_store, "--name", "crm",
            "--key-attribute", "last",
            "--similarity", "first=jaro_winkler",
            "--similarity", "last=jaro_winkler",
            "--threshold", "0.8",
        ]) == 0
        for day in (day1, day2):
            assert main([
                "stream", "ingest", "--store", serial_store, "--name", "crm",
                "--dataset", str(day),
            ]) == 0
        with FrostStore(serial_store) as opened:
            serial_clusters = set(open_session(opened, "crm").clusters().clusters)
        assert parallel_clusters == serial_clusters

    def test_shards_alone_engages_all_cores(self, tmp_path):
        """--shards without --workers must not silently stay serial."""
        from repro.cli import main
        from repro.storage.database import FrostStore

        store = str(tmp_path / "s.db")
        assert main([
            "stream", "init", "--store", store, "--name", "crm",
            "--key-attribute", "last", "--similarity", "last=jaro_winkler",
            "--shards", "16",
        ]) == 0
        with FrostStore(store) as opened:
            parallelism = opened.load_stream("crm")["config"]["parallelism"]
        assert parallelism["shards"] == 16
        assert parallelism["workers"] == 0  # 0 = all cores

    def test_init_requires_key_attribute(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "stream", "init", "--store", str(tmp_path / "s.db"),
            "--name", "crm", "--similarity", "a=exact",
        ])
        assert code == 1
        assert "key-attribute" in capsys.readouterr().err

    def test_ingest_unknown_stream_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        day = tmp_path / "day.csv"
        self._write_csv(day, ROWS_ONE)
        store = str(tmp_path / "s.db")
        code = main([
            "stream", "ingest", "--store", store, "--name", "nope",
            "--dataset", str(day),
        ])
        assert code == 1
        assert "no stream named" in capsys.readouterr().err

    def test_bad_similarity_flag_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "stream", "init", "--store", str(tmp_path / "s.db"),
            "--name", "crm", "--key-attribute", "last",
            "--similarity", "broken",
        ])
        assert code == 1
        assert "ATTR=MEASURE" in capsys.readouterr().err


LSH_CONFIG = {
    "key": {"kind": "lsh", "num_perm": 64, "bands": 16, "seed": 2},
    "similarities": {"first": "jaro_winkler", "last": "jaro_winkler"},
    "threshold": 0.8,
}


class TestLshStreamApi:
    def test_create_ingest_status_roundtrip(self, api):
        created = api.handle(
            "/streams", method="POST",
            body={"name": "lsh-crm", "config": LSH_CONFIG},
        )
        assert created["blocking"]["kind"] == "lsh"
        assert created["blocking"]["rows"] == 4  # normalized (64 / 16)
        first = api.handle(
            "/streams/lsh-crm/batches", method="POST",
            body={"records": ROWS_ONE},
        )
        assert first["snapshot"]["version"] == 1
        status = api.handle("/streams/lsh-crm")
        assert status["blocking"]["num_perm"] == 64
        assert status["records"] == 3

    @pytest.mark.parametrize(
        "key",
        [
            {"kind": "lsh", "num_perm": 100, "bands": 33},  # not divisible
            {"kind": "lsh", "num_perm": "128"},
            {"kind": "lsh", "bands": 0},
            {"kind": "lsh", "rows": 5},
            {"kind": "lsh", "typo": 1},
            {"kind": "sorted_neighborhood", "attribute": "last"},
        ],
    )
    def test_malformed_lsh_config_is_400(self, api, key):
        with pytest.raises(ApiError) as bad:
            api.handle(
                "/streams", method="POST",
                body={"name": "x", "config": {**LSH_CONFIG, "key": key}},
            )
        assert bad.value.status == 400

    def test_durable_lsh_stream_resumes(self, tmp_path):
        store_path = tmp_path / "lsh.db"
        with FrostStore(str(store_path)) as store:
            first_api = FrostApi(FrostPlatform(), store=store)
            first_api.handle(
                "/streams", method="POST",
                body={"name": "durable", "config": LSH_CONFIG},
            )
            first_api.handle(
                "/streams/durable/batches", method="POST",
                body={"records": ROWS_ONE},
            )
        with FrostStore(str(store_path)) as store:
            resumed_api = FrostApi(FrostPlatform(), store=store)
            status = resumed_api.handle("/streams/durable")
            assert status["version"] == 1
            assert status["blocking"]["kind"] == "lsh"
            second = resumed_api.handle(
                "/streams/durable/batches", method="POST",
                body={"records": ROWS_TWO},
            )
            assert second["snapshot"]["version"] == 2
            assert second["snapshot"]["record_count"] == 5


class TestLshStreamCli:
    def _write_csv(self, path, rows):
        lines = ["id,first,last"]
        lines += [f"{r['id']},{r['first']},{r['last']}" for r in rows]
        path.write_text("\n".join(lines) + "\n")

    def test_lsh_lifecycle(self, tmp_path, capsys):
        from repro.cli import main

        store = str(tmp_path / "s.db")
        day1 = tmp_path / "day1.csv"
        day2 = tmp_path / "day2.csv"
        self._write_csv(day1, ROWS_ONE)
        self._write_csv(day2, ROWS_TWO)

        assert main([
            "stream", "init", "--store", store, "--name", "crm",
            "--blocker", "lsh", "--num-perm", "64", "--bands", "16",
            "--lsh-seed", "2",
            "--similarity", "first=jaro_winkler",
            "--similarity", "last=jaro_winkler",
            "--threshold", "0.8",
        ]) == 0
        assert "key=lsh" in capsys.readouterr().out
        assert main([
            "stream", "ingest", "--store", store, "--name", "crm",
            "--dataset", str(day1),
        ]) == 0
        assert main([
            "stream", "ingest", "--store", store, "--name", "crm",
            "--dataset", str(day2),
        ]) == 0
        out = capsys.readouterr().out
        assert "v2" in out and "5 total" in out
        assert main(["stream", "status", "--store", store, "--name", "crm"]) == 0
        assert "v2" in capsys.readouterr().out

    def test_lsh_flags_reject_bad_banding(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "stream", "init", "--store", str(tmp_path / "s.db"),
            "--name", "crm", "--blocker", "lsh",
            "--num-perm", "100", "--bands", "33",
            "--similarity", "last=jaro_winkler",
        ])
        assert code == 1
        assert "divide" in capsys.readouterr().err

    def test_cross_family_flags_fail_loudly(self, tmp_path, capsys):
        """A blocking flag of the unselected family must error, not be
        silently dropped into a very different candidate set."""
        from repro.cli import main

        store = str(tmp_path / "s.db")
        assert main([
            "stream", "init", "--store", store, "--name", "a",
            "--blocker", "lsh", "--key-attribute", "last",
            "--similarity", "last=exact",
        ]) == 1
        assert "--token-attributes" in capsys.readouterr().err
        assert main([
            "stream", "init", "--store", store, "--name", "b",
            "--bands", "16", "--key-attribute", "last",
            "--similarity", "last=exact",
        ]) == 1
        assert "--blocker lsh" in capsys.readouterr().err
