"""Tests for the persisted performance-trajectory harness."""

from __future__ import annotations

import json

import pytest

from benchmarks.trajectory import (
    REGRESSION_TOLERANCE,
    compare_trajectories,
    emit_trajectory,
    main,
    peak_rss_mb,
    percentile,
)


@pytest.fixture
def trajectory_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRAJECTORY_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_TRAJECTORY_ENFORCE", raising=False)
    return tmp_path


class TestPercentile:
    def test_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0
        assert percentile([5.0], 0.95) == 5.0
        assert percentile(range(101), 0.95) == 95.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)


def test_peak_rss_is_positive():
    assert peak_rss_mb() > 1.0


class TestEmit:
    def test_writes_schema_document(self, trajectory_dir):
        path = emit_trajectory(
            "unit",
            throughput={"records_per_second": 1000.0},
            seconds={"total": 2.5},
            latencies=[0.01, 0.02, 0.03, 0.10],
            counters={"pairs": 42},
            context={"smoke": True},
        )
        assert path == trajectory_dir / "BENCH_unit.json"
        document = json.loads(path.read_text())
        assert document["schema"] == 1
        assert document["area"] == "unit"
        assert document["context"] == {"smoke": True}
        assert document["throughput"] == {"records_per_second": 1000.0}
        assert document["seconds"] == {"total": 2.5}
        assert document["latency"]["p50_ms"] == pytest.approx(25.0)
        assert document["latency"]["p95_ms"] == pytest.approx(89.5)
        assert document["counters"] == {"pairs": 42}
        assert document["peak_rss_mb"] > 0

    def test_report_only_by_default(self, trajectory_dir, capsys):
        emit_trajectory("regress", throughput={"rate": 100.0}, context={})
        # a 50% throughput drop: far beyond tolerance, still no raise
        emit_trajectory("regress", throughput={"rate": 50.0}, context={})
        out = capsys.readouterr().out
        assert "trajectory: regress: throughput rate fell 50.0%" in out
        document = json.loads(
            (trajectory_dir / "BENCH_regress.json").read_text()
        )
        assert document["throughput"]["rate"] == 50.0  # newest point wins

    def test_enforcing_raises_on_regression(self, trajectory_dir, monkeypatch):
        emit_trajectory("hard", seconds={"total": 1.0}, context={})
        monkeypatch.setenv("REPRO_TRAJECTORY_ENFORCE", "1")
        with pytest.raises(AssertionError, match="seconds total grew"):
            emit_trajectory("hard", seconds={"total": 2.0}, context={})
        # improvements and within-tolerance noise never raise
        emit_trajectory("hard", seconds={"total": 1.9}, context={})
        emit_trajectory("hard", seconds={"total": 0.5}, context={})

    def test_context_change_is_never_a_regression(
        self, trajectory_dir, monkeypatch, capsys
    ):
        emit_trajectory("ctx", seconds={"total": 1.0}, context={"smoke": True})
        monkeypatch.setenv("REPRO_TRAJECTORY_ENFORCE", "1")
        emit_trajectory("ctx", seconds={"total": 50.0}, context={"smoke": False})
        assert "not comparable" in capsys.readouterr().out

    def test_context_mismatch_names_the_differing_field(
        self, trajectory_dir, capsys
    ):
        emit_trajectory(
            "ctx", seconds={"total": 1.0}, context={"smoke": True, "workers": 2}
        )
        capsys.readouterr()
        emit_trajectory(
            "ctx", seconds={"total": 1.0}, context={"smoke": False, "rows": 9}
        )
        out = capsys.readouterr().out
        assert "not comparable" in out
        assert "smoke: True -> False" in out
        assert "workers: 2 -> absent" in out
        assert "rows: absent -> 9" in out

    def test_context_mismatch_message_for_non_dict_contexts(self):
        from benchmarks.trajectory import _context_mismatch

        assert _context_mismatch({"a": 1}, {"a": 1}) == "contexts differ"
        assert _context_mismatch("old", "new") == "'old' -> 'new'"

    def test_points_flow_into_the_warehouse_when_configured(
        self, trajectory_dir, tmp_path, monkeypatch
    ):
        from repro.telemetry.store import TelemetryStore

        db = tmp_path / "warehouse.db"
        monkeypatch.setenv("REPRO_TELEMETRY_STORE", str(db))
        emit_trajectory("ingest", seconds={"total": 1.0}, context={"smoke": True})
        with TelemetryStore(db) as warehouse:
            points = warehouse.trajectory_history("ingest")
        assert len(points) == 1
        assert points[0]["document"]["seconds"]["total"] == 1.0

    def test_warehouse_ingest_failure_is_not_fatal(
        self, trajectory_dir, tmp_path, monkeypatch, capsys
    ):
        # point the knob at a path that cannot be a database
        monkeypatch.setenv(
            "REPRO_TELEMETRY_STORE", str(tmp_path / "no" / "such" / "dir.db")
        )
        path = emit_trajectory(
            "survives", seconds={"total": 1.0}, context={}
        )
        assert path.exists()  # the JSON point still landed
        assert "warehouse ingest" in capsys.readouterr().out


class TestCompare:
    def test_flags_throughput_drops_and_duration_growth(self):
        previous = {
            "area": "x",
            "context": {},
            "throughput": {"rate": 100.0},
            "seconds": {"total": 1.0},
            "latency": {"p95_ms": 10.0},
        }
        current = {
            "area": "x",
            "context": {},
            "throughput": {"rate": 70.0},
            "seconds": {"total": 1.5},
            "latency": {"p95_ms": 9.0},
        }
        findings = compare_trajectories(previous, current)
        assert len(findings) == 2
        assert any("throughput rate fell 30.0%" in f for f in findings)
        assert any("seconds total grew 50.0%" in f for f in findings)

    def test_within_tolerance_is_silent(self):
        previous = {"area": "x", "context": {}, "throughput": {"rate": 100.0}}
        current = {
            "area": "x",
            "context": {},
            "throughput": {"rate": 100.0 * (1 - REGRESSION_TOLERANCE) + 0.1},
        }
        assert compare_trajectories(previous, current) == []

    def test_new_and_dropped_series_are_ignored(self):
        previous = {"area": "x", "context": {}, "seconds": {"gone": 1.0}}
        current = {"area": "x", "context": {}, "seconds": {"new": 9.0}}
        assert compare_trajectories(previous, current) == []

    def test_counters_and_rss_are_informational(self):
        previous = {
            "area": "x", "context": {}, "counters": {"n": 1}, "peak_rss_mb": 10,
        }
        current = {
            "area": "x", "context": {}, "counters": {"n": 99}, "peak_rss_mb": 999,
        }
        assert compare_trajectories(previous, current) == []


class TestMain:
    def test_no_files_is_a_clean_run(self, trajectory_dir, capsys):
        assert main() == 0
        assert "no BENCH_*.json" in capsys.readouterr().out

    def test_uncommitted_files_report_as_new(self, trajectory_dir, capsys):
        emit_trajectory("fresh", seconds={"total": 1.0}, context={})
        assert main() == 0
        assert "BENCH_fresh.json is new" in capsys.readouterr().out
