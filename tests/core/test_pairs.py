"""Tests for canonical record pairs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pairs import ScoredPair, canonical_pairs, make_pair, pair_key


class TestMakePair:
    def test_orders_lexicographically(self):
        assert make_pair("b", "a") == ("a", "b")

    def test_keeps_sorted_order(self):
        assert make_pair("a", "b") == ("a", "b")

    def test_rejects_self_pair(self):
        with pytest.raises(ValueError, match="two distinct records"):
            make_pair("x", "x")

    @given(st.text(min_size=1), st.text(min_size=1))
    def test_symmetric(self, first, second):
        if first == second:
            return
        assert make_pair(first, second) == make_pair(second, first)

    @given(st.text(min_size=1), st.text(min_size=1))
    def test_always_sorted(self, first, second):
        if first == second:
            return
        pair = make_pair(first, second)
        assert pair[0] < pair[1]


class TestPairKey:
    def test_from_list(self):
        assert pair_key(["z", "a"]) == ("a", "z")

    def test_from_set(self):
        assert pair_key({"x", "y"}) == ("x", "y")


class TestCanonicalPairs:
    def test_deduplicates_mirrored_pairs(self):
        pairs = canonical_pairs([("a", "b"), ("b", "a"), ("a", "c")])
        assert pairs == {("a", "b"), ("a", "c")}

    def test_empty(self):
        assert canonical_pairs([]) == set()


class TestScoredPair:
    def test_of_canonicalizes(self):
        sp = ScoredPair.of("z", "a", 0.5)
        assert sp.pair == ("a", "z")
        assert sp.first == "a"
        assert sp.second == "z"

    def test_sorts_by_score_first(self):
        low = ScoredPair.of("a", "b", 0.1)
        high = ScoredPair.of("c", "d", 0.9)
        assert sorted([high, low]) == [low, high]

    def test_ties_broken_by_pair(self):
        first = ScoredPair.of("a", "b", 0.5)
        second = ScoredPair.of("a", "c", 0.5)
        assert sorted([second, first]) == [first, second]
