"""Tests for the dynamically maintained intersection clustering
(Appendix D.3), including the paper's worked example (Figure 10)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intersection import DynamicIntersection
from repro.core.unionfind import PairCountingUnionFind


def run_batches(truth_of, batches):
    """Apply match batches to experiment + intersection; return both."""
    experiment = PairCountingUnionFind(len(truth_of))
    intersection = DynamicIntersection(truth_of)
    pair_counts = []
    for batch in batches:
        merges = experiment.tracked_union(batch)
        intersection.update(merges)
        pair_counts.append(intersection.pair_count)
    return experiment, intersection, pair_counts


class TestPaperExamples:
    def test_figure10_example(self):
        """a,b,c,d = 0..3; truth g0={a,b}, g1={c,d};
        matches {a,c},{b,d},{a,b} give TP counts 0,0,2."""
        truth_of = [0, 0, 1, 1]
        _, _, tp = run_batches(truth_of, [[(0, 2)], [(1, 3)], [(0, 1)]])
        assert tp == [0, 0, 2]

    def test_figure9_pitfall(self):
        """truth {{a,b},{c}}; merging {b,c} then {a,c}: the first merge
        does not change the intersection, the second must join a and b."""
        truth_of = [0, 0, 1]  # a, b, c
        _, intersection, tp = run_batches(truth_of, [[(1, 2)], [(0, 2)]])
        assert tp == [0, 1]
        assert intersection.intersection_cluster_of(
            0
        ) == intersection.intersection_cluster_of(1)

    def test_appendix_d3_merge_example(self):
        """The update walkthrough of Appendix D.3 (merging a and b after
        {a,c} and {b,d} were merged)."""
        truth_of = [0, 0, 1, 1]
        experiment = PairCountingUnionFind(4)
        intersection = DynamicIntersection(truth_of)
        intersection.update(experiment.tracked_union([(0, 2), (1, 3)]))
        assert intersection.pair_count == 0
        intersection.update(experiment.tracked_union([(0, 1)]))
        # intersection now {a,b} and {c,d}
        clusters = sorted(
            tuple(sorted(m)) for m in intersection.clusters().values() if len(m) > 1
        )
        assert clusters == [(0, 1), (2, 3)]


class TestEdgeCases:
    def test_empty(self):
        intersection = DynamicIntersection([])
        assert intersection.pair_count == 0
        assert len(intersection) == 0

    def test_no_merges(self):
        intersection = DynamicIntersection([0, 1, 2])
        intersection.update([])
        assert intersection.pair_count == 0

    def test_unknown_source_raises(self):
        from repro.core.unionfind import MergeEntry

        intersection = DynamicIntersection([0, 1])
        intersection.update([MergeEntry(sources=(0, 1), target=2)])
        try:
            intersection.update([MergeEntry(sources=(0, 1), target=3)])
        except KeyError as error:
            assert "exactly once" in str(error)
        else:
            raise AssertionError("expected KeyError on replayed merge")

    def test_all_same_truth_cluster(self):
        truth_of = [0, 0, 0]
        _, intersection, tp = run_batches(truth_of, [[(0, 1), (1, 2)]])
        assert tp == [3]

    def test_all_distinct_truth_clusters(self):
        truth_of = [0, 1, 2]
        _, intersection, tp = run_batches(truth_of, [[(0, 1), (1, 2)]])
        assert tp == [0]


def naive_intersection_pairs(experiment: PairCountingUnionFind, truth_of) -> int:
    """Reference implementation: rebuild the meet from scratch."""
    groups: dict[tuple[int, int], int] = {}
    for element in range(len(truth_of)):
        key = (experiment.find(element), truth_of[element])
        groups[key] = groups.get(key, 0) + 1
    return sum(size * (size - 1) // 2 for size in groups.values())


@st.composite
def intersection_cases(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    truth_of = [draw(st.integers(min_value=0, max_value=max(0, n // 2))) for _ in range(n)]
    batch_count = draw(st.integers(min_value=1, max_value=5))
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    batches = []
    for _ in range(batch_count):
        batch = [
            (rng.randrange(n), rng.randrange(n))
            for _ in range(rng.randrange(0, n))
        ]
        batches.append([(a, b) for a, b in batch if a != b])
    return truth_of, batches


class TestAgainstNaiveRecomputation:
    @given(intersection_cases())
    @settings(max_examples=80)
    def test_matches_fresh_meet_after_every_batch(self, case):
        """The core Appendix D invariant: the dynamic intersection's pair
        count equals a from-scratch meet computation at every step."""
        truth_of, batches = case
        experiment = PairCountingUnionFind(len(truth_of))
        intersection = DynamicIntersection(truth_of)
        for batch in batches:
            merges = experiment.tracked_union(batch)
            intersection.update(merges)
            assert intersection.pair_count == naive_intersection_pairs(
                experiment, truth_of
            )

    @given(intersection_cases())
    @settings(max_examples=40)
    def test_batching_is_irrelevant(self, case):
        """Applying matches in one batch or many yields the same result."""
        truth_of, batches = case
        flat = [pair for batch in batches for pair in batch]
        _, _, incremental = run_batches(truth_of, batches)
        _, _, single = run_batches(truth_of, [flat] if flat else [[]])
        assert incremental[-1] == single[-1]
