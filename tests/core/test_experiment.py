"""Tests for experiments and gold standards."""

import pytest

from repro.core import Experiment, GoldStandard, Match
from repro.core.pairs import ScoredPair


class TestExperimentConstruction:
    def test_accepts_tuples_and_matches(self):
        experiment = Experiment(
            [("a", "b"), ("c", "d", 0.5), Match(pair=("e", "f"), score=0.9)]
        )
        assert len(experiment) == 3
        assert experiment.score_of("c", "d") == 0.5
        assert experiment.score_of("a", "b") is None

    def test_accepts_scored_pairs(self):
        experiment = Experiment([ScoredPair.of("a", "b", 0.7)])
        assert experiment.score_of("b", "a") == 0.7

    def test_duplicate_pairs_keep_first(self):
        experiment = Experiment([("a", "b", 0.9), ("b", "a", 0.1)])
        assert len(experiment) == 1
        assert experiment.score_of("a", "b") == 0.9

    def test_bad_input_rejected(self):
        with pytest.raises(TypeError, match="cannot interpret"):
            Experiment([("a",)])

    def test_contains(self):
        experiment = Experiment([("a", "b")])
        assert ("b", "a") in experiment
        assert ("a", "c") not in experiment


class TestExperimentViews:
    def test_pairs(self):
        experiment = Experiment([("b", "a"), ("c", "d")])
        assert experiment.pairs() == {("a", "b"), ("c", "d")}

    def test_original_pairs_excludes_clustering_additions(self):
        experiment = Experiment(
            [
                Match(pair=("a", "b"), score=0.9),
                Match(pair=("a", "c"), from_clustering=True),
            ]
        )
        assert experiment.original_pairs() == {("a", "b")}

    def test_scored_pairs_skips_unscored(self):
        experiment = Experiment([("a", "b", 0.5), ("c", "d")])
        assert [sp.pair for sp in experiment.scored_pairs()] == [("a", "b")]

    def test_has_scores(self):
        assert Experiment([("a", "b", 0.5)]).has_scores()
        assert not Experiment([("a", "b")]).has_scores()
        assert Experiment([]).has_scores()


class TestExperimentDerived:
    def test_clustering_closes_transitively(self):
        experiment = Experiment([("a", "b"), ("b", "c")])
        assert experiment.clustering().same_cluster("a", "c")

    def test_clustering_cached(self):
        experiment = Experiment([("a", "b")])
        assert experiment.clustering() is experiment.clustering()

    def test_closure_distance(self):
        experiment = Experiment([("a", "b"), ("b", "c")])
        assert experiment.closure_distance() == 1

    def test_closed_flags_added_pairs(self):
        experiment = Experiment([("a", "b", 0.9), ("b", "c", 0.8)])
        closed = experiment.closed()
        assert len(closed) == 3
        added = [m for m in closed.matches if m.from_clustering]
        assert [m.pair for m in added] == [("a", "c")]
        assert added[0].score is None
        # original experiment untouched
        assert len(experiment) == 2

    def test_threshold_subset(self):
        experiment = Experiment([("a", "b", 0.9), ("c", "d", 0.4)])
        subset = experiment.threshold_subset(0.5)
        assert subset.pairs() == {("a", "b")}

    def test_threshold_subset_drops_unscored(self):
        experiment = Experiment([("a", "b", 0.9), ("c", "d")])
        assert experiment.threshold_subset(0.0).pairs() == {("a", "b")}


class TestGoldStandard:
    def test_from_pairs_closes(self):
        gold = GoldStandard.from_pairs([("a", "b"), ("b", "c")])
        assert gold.is_duplicate("a", "c")
        assert gold.pair_count() == 3

    def test_from_assignment(self, abcd_gold):
        assert abcd_gold.is_duplicate("a", "b")
        assert not abcd_gold.is_duplicate("b", "c")
        assert abcd_gold.pair_count() == 2

    def test_pairs_cached(self, abcd_gold):
        assert abcd_gold.pairs() is abcd_gold.pairs()

    def test_as_experiment(self, abcd_gold):
        experiment = abcd_gold.as_experiment()
        assert experiment.pairs() == abcd_gold.pairs()
        assert experiment.solution == "gold"
