"""Tests for records and datasets."""

import pytest

from repro.core import Dataset, DatasetError, Record


class TestRecord:
    def test_value_returns_content(self):
        record = Record("r1", {"name": "alice"})
        assert record.value("name") == "alice"

    def test_empty_string_is_null(self):
        record = Record("r1", {"name": ""})
        assert record.value("name") is None
        assert record.is_null("name")

    def test_missing_attribute_is_null(self):
        record = Record("r1", {})
        assert record.is_null("anything")

    def test_tokens_single_attribute(self):
        record = Record("r1", {"title": "deep learning methods"})
        assert record.tokens("title") == ["deep", "learning", "methods"]

    def test_tokens_all_attributes(self):
        record = Record("r1", {"a": "x y", "b": None, "c": "z"})
        assert sorted(record.tokens()) == ["x", "y", "z"]

    def test_frozen(self):
        record = Record("r1", {})
        with pytest.raises(AttributeError):
            record.record_id = "r2"


class TestDataset:
    def test_len_and_iteration(self, people_dataset):
        assert len(people_dataset) == 6
        assert [r.record_id for r in people_dataset][:2] == ["p1", "p2"]

    def test_getitem_by_native_id(self, people_dataset):
        assert people_dataset["p3"].value("first") == "mary"

    def test_getitem_unknown_raises_with_context(self, people_dataset):
        with pytest.raises(KeyError, match="nope.*people"):
            people_dataset["nope"]

    def test_contains(self, people_dataset):
        assert "p1" in people_dataset
        assert "p99" not in people_dataset

    def test_numeric_ids_are_dense_insertion_order(self, people_dataset):
        assert people_dataset.numeric_id("p1") == 0
        assert people_dataset.numeric_id("p6") == 5
        assert people_dataset.native_id(2) == "p3"
        assert people_dataset.by_numeric(0).record_id == "p1"

    def test_duplicate_ids_rejected(self):
        with pytest.raises(DatasetError, match="duplicate record id"):
            Dataset([Record("x", {}), Record("x", {})])

    def test_attributes_inferred_in_first_seen_order(self):
        dataset = Dataset(
            [Record("a", {"x": "1"}), Record("b", {"y": "2", "x": "3"})]
        )
        assert dataset.attributes == ("x", "y")

    def test_explicit_attributes_respected(self):
        dataset = Dataset([Record("a", {"x": "1"})], attributes=["x", "y"])
        assert dataset.attributes == ("x", "y")

    def test_total_pairs(self, people_dataset):
        assert people_dataset.total_pairs() == 15  # C(6, 2)

    def test_total_pairs_degenerate(self):
        assert Dataset([]).total_pairs() == 0
        assert Dataset([Record("a", {})]).total_pairs() == 0

    def test_vocabulary(self):
        dataset = Dataset(
            [Record("a", {"t": "hello world"}), Record("b", {"t": "hello there"})]
        )
        assert dataset.vocabulary() == {"hello", "world", "there"}

    def test_subset_preserves_schema(self, people_dataset):
        subset = people_dataset.subset(["p2", "p5"])
        assert len(subset) == 2
        assert subset.attributes == people_dataset.attributes
        assert subset.numeric_id("p2") == 0

    def test_record_ids(self, people_dataset):
        assert people_dataset.record_ids == ["p1", "p2", "p3", "p4", "p5", "p6"]
