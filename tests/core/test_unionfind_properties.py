"""Property-based tests for :class:`PairCountingUnionFind`.

The streaming subsystem keeps one union-find alive across ingests
(``grow`` + ``union`` interleaved), and the parallel equivalence
guarantee leans on clustering being insensitive to union order and
repetition.  Hypothesis drives randomized operation sequences against
a naive reference partition.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.unionfind import PairCountingUnionFind


def _reference_partition(n: int, unions: list[tuple[int, int]]) -> set[frozenset[int]]:
    """Naive O(n²) partition: repeatedly merge overlapping sets."""
    clusters = [{element} for element in range(n)]
    for first, second in unions:
        merged = {first, second}
        keep = []
        for cluster in clusters:
            if cluster & merged:
                merged |= cluster
            else:
                keep.append(cluster)
        keep.append(merged)
        clusters = keep
    return {frozenset(cluster) for cluster in clusters}


sizes = st.integers(min_value=0, max_value=40)


@st.composite
def union_sequences(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).filter(lambda p: p[0] != p[1]),
            max_size=80,
        )
    )
    return n, pairs


@given(union_sequences())
def test_matches_reference_partition(sequence):
    n, unions = sequence
    uf = PairCountingUnionFind(n)
    for first, second in unions:
        uf.union(first, second)
    members = {
        frozenset(cluster) for cluster in uf.clusters().values()
    }
    assert members == _reference_partition(n, unions)
    # pair_count is the sum of C(size, 2) over clusters
    assert uf.pair_count == sum(
        len(c) * (len(c) - 1) // 2 for c in members
    )
    assert uf.cluster_count == len(members)


@given(union_sequences())
@settings(max_examples=50)
def test_union_is_idempotent(sequence):
    """Replaying a union batch is a no-op: same clusters, same counts,
    and no fresh generation ids are minted for already-connected pairs."""
    n, unions = sequence
    once = PairCountingUnionFind(n)
    for first, second in unions:
        once.union(first, second)
    twice = PairCountingUnionFind(n)
    for first, second in unions + unions:
        twice.union(first, second)
    assert twice.clusters() == once.clusters()
    assert twice.pair_count == once.pair_count
    assert twice.cluster_count == once.cluster_count
    # re-union of a connected pair keeps the existing cluster id
    for first, second in unions:
        id_before = once.cluster_id_of(first)
        assert once.union(first, second) == id_before
        assert once.cluster_id_of(first) == id_before


@given(counts=st.lists(st.integers(min_value=0, max_value=12), max_size=10))
def test_grow_appends_fresh_singletons(counts):
    uf = PairCountingUnionFind(0)
    total = 0
    for count in counts:
        added = uf.grow(count)
        assert added == range(total, total + count)
        total += count
        assert len(uf) == total
        assert uf.cluster_count == total
        assert uf.pair_count == 0
    # all generation ids distinct across growth batches
    ids = [uf.cluster_id_of(element) for element in range(total)]
    assert len(set(ids)) == total


@given(union_sequences(), st.integers(min_value=1, max_value=10))
@settings(max_examples=50)
def test_grow_interleaved_with_unions_keeps_ids_unique(sequence, growth):
    """Ids minted by growth never collide with ids minted by merges."""
    n, unions = sequence
    uf = PairCountingUnionFind(n)
    half = len(unions) // 2
    for first, second in unions[:half]:
        uf.union(first, second)
    added = uf.grow(growth)
    for first, second in unions[half:]:
        uf.union(first, second)
    # new elements stay singletons (nothing unioned them)
    for element in added:
        assert uf.cluster_size(element) == 1
    cluster_ids = {uf.cluster_id_of(element) for element in range(len(uf))}
    assert len(cluster_ids) == uf.cluster_count
    assert uf.cluster_count == len(uf.clusters())


def test_grow_rejects_negative():
    import pytest

    uf = PairCountingUnionFind(3)
    with pytest.raises(ValueError):
        uf.grow(-1)
