"""Tests for the pair-level confusion matrix (Figure 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Clustering, ConfusionMatrix


class TestConstruction:
    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ConfusionMatrix(-1, 0, 0, 0)

    def test_from_pair_sets(self):
        matrix = ConfusionMatrix.from_pair_sets(
            experiment=[("a", "b"), ("a", "c")],
            ground_truth=[("a", "b"), ("c", "d")],
            total_pairs=6,
        )
        assert matrix.as_dict() == {"tp": 1, "fp": 1, "fn": 1, "tn": 3}

    def test_from_pair_sets_canonicalizes(self):
        matrix = ConfusionMatrix.from_pair_sets(
            experiment=[("b", "a")], ground_truth=[("a", "b")], total_pairs=1
        )
        assert matrix.true_positives == 1

    def test_from_pair_sets_rejects_impossible_total(self):
        with pytest.raises(ValueError, match="too small"):
            ConfusionMatrix.from_pair_sets(
                experiment=[("a", "b")], ground_truth=[("c", "d")], total_pairs=1
            )

    def test_from_clusterings(self):
        experiment = Clustering([["a", "b", "c"]])
        truth = Clustering([["a", "b"], ["c", "d"]])
        matrix = ConfusionMatrix.from_clusterings(experiment, truth, 6)
        assert matrix.as_dict() == {"tp": 1, "fp": 2, "fn": 1, "tn": 2}

    def test_from_counts(self):
        matrix = ConfusionMatrix.from_counts(
            tp=2, experiment_pairs=5, truth_pairs=3, total_pairs=10
        )
        assert matrix.as_dict() == {"tp": 2, "fp": 3, "fn": 1, "tn": 4}


class TestDerived:
    def test_marginals(self):
        matrix = ConfusionMatrix(2, 3, 1, 4)
        assert matrix.total == 10
        assert matrix.predicted_positives == 5
        assert matrix.actual_positives == 3
        assert matrix.predicted_negatives == 5
        assert matrix.actual_negatives == 7

    def test_addition(self):
        total = ConfusionMatrix(1, 0, 1, 0) + ConfusionMatrix(0, 2, 0, 3)
        assert total.as_dict() == {"tp": 1, "fp": 2, "fn": 1, "tn": 3}

    def test_frozen(self):
        matrix = ConfusionMatrix(1, 1, 1, 1)
        with pytest.raises(AttributeError):
            matrix.true_positives = 5


@st.composite
def clustering_pairs(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    ids = [f"r{i}" for i in range(n)]

    def draw_pairs(max_pairs):
        pairs = []
        for _ in range(draw(st.integers(min_value=0, max_value=max_pairs))):
            a = draw(st.sampled_from(ids))
            b = draw(st.sampled_from(ids))
            if a != b:
                pairs.append((a, b))
        return pairs

    return n, draw_pairs(15), draw_pairs(15)


class TestInvariants:
    @given(clustering_pairs())
    @settings(max_examples=60)
    def test_quadrants_sum_to_total(self, case):
        n, experiment_pairs, truth_pairs = case
        experiment = Clustering.from_pairs(experiment_pairs)
        truth = Clustering.from_pairs(truth_pairs)
        total = n * (n - 1) // 2
        matrix = ConfusionMatrix.from_clusterings(experiment, truth, total)
        assert matrix.total == total

    @given(clustering_pairs())
    @settings(max_examples=60)
    def test_clustering_and_pairset_paths_agree(self, case):
        n, experiment_pairs, truth_pairs = case
        experiment = Clustering.from_pairs(experiment_pairs)
        truth = Clustering.from_pairs(truth_pairs)
        total = n * (n - 1) // 2
        from_clusterings = ConfusionMatrix.from_clusterings(experiment, truth, total)
        from_pairs = ConfusionMatrix.from_pair_sets(
            experiment.pairs(), truth.pairs(), total
        )
        assert from_clusterings == from_pairs
