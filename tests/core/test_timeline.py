"""Tests for the threshold timeline with efficient rewinds (App. D outlook)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Dataset,
    DiagramTimeline,
    Experiment,
    GoldStandard,
    Record,
    compute_diagram_optimized,
)
from repro.core.clustering import Clustering


def _random_case(seed, n=25, matches=30):
    rng = random.Random(seed)
    dataset = Dataset([Record(f"r{i}", {}) for i in range(n)], name="rand")
    assignment = {f"r{i}": str(rng.randrange(max(1, n // 2))) for i in range(n)}
    gold = GoldStandard.from_assignment(assignment)
    matches = min(matches, n * (n - 1) // 2)
    pairs = set()
    while len(pairs) < matches:
        a, b = rng.sample(range(n), 2)
        pairs.add((f"r{min(a, b)}", f"r{max(a, b)}"))
    experiment = Experiment(
        [(a, b, rng.random()) for a, b in sorted(pairs)], name="rand-run"
    )
    return dataset, experiment, gold


class TestMatrixAt:
    @pytest.mark.parametrize("checkpoint_every", [1, 3, 7, 1000])
    @pytest.mark.parametrize("seed", range(4))
    def test_equals_diagram_at_every_sampled_threshold(
        self, seed, checkpoint_every
    ):
        """matrix_at(t) must agree with the one-pass diagram algorithm."""
        dataset, experiment, gold = _random_case(seed)
        timeline = DiagramTimeline(
            dataset, experiment, gold, checkpoint_every=checkpoint_every
        )
        points = compute_diagram_optimized(
            dataset, experiment, gold, samples=len(experiment) + 1
        )
        for point in points:
            assert timeline.matrix_at(point.threshold) == point.matrix

    def test_rewind_equals_fresh_query(self):
        """Backwards jumps return the same matrices as forward ones."""
        dataset, experiment, gold = _random_case(1)
        timeline = DiagramTimeline(dataset, experiment, gold, checkpoint_every=5)
        thresholds = [0.1, 0.9, 0.5, 0.95, 0.2, 0.8]
        forward = {t: timeline.matrix_at(t) for t in sorted(thresholds)}
        for threshold in thresholds:  # deliberately non-monotone order
            assert timeline.matrix_at(threshold) == forward[threshold]

    def test_infinite_threshold_is_empty_experiment(self):
        dataset, experiment, gold = _random_case(2)
        timeline = DiagramTimeline(dataset, experiment, gold)
        matrix = timeline.matrix_at(math.inf)
        assert matrix.true_positives == 0
        assert matrix.false_positives == 0
        assert matrix.false_negatives == gold.pair_count()

    def test_threshold_zero_applies_everything(self):
        dataset, experiment, gold = _random_case(3)
        timeline = DiagramTimeline(dataset, experiment, gold)
        matrix = timeline.matrix_at(0.0)
        closed = experiment.clustering().pair_count()
        assert matrix.predicted_positives == closed

    def test_matches_at_boundaries(self):
        dataset = Dataset([Record(x, {}) for x in "abcd"])
        gold = GoldStandard.from_pairs([("a", "b")])
        experiment = Experiment([("a", "b", 0.9), ("c", "d", 0.5)])
        timeline = DiagramTimeline(dataset, experiment, gold)
        assert timeline.matches_at(math.inf) == 0
        assert timeline.matches_at(0.91) == 0
        assert timeline.matches_at(0.9) == 1
        assert timeline.matches_at(0.5) == 2
        assert timeline.matches_at(0.0) == 2

    def test_unscored_match_rejected(self):
        dataset = Dataset([Record(x, {}) for x in "ab"])
        gold = GoldStandard.from_pairs([("a", "b")])
        with pytest.raises(ValueError, match="unscored"):
            DiagramTimeline(dataset, Experiment([("a", "b")]), gold)

    def test_bad_checkpoint_interval_rejected(self):
        dataset, experiment, gold = _random_case(4)
        with pytest.raises(ValueError, match="checkpoint interval"):
            DiagramTimeline(dataset, experiment, gold, checkpoint_every=0)

    def test_empty_experiment(self):
        dataset = Dataset([Record(x, {}) for x in "abc"])
        gold = GoldStandard.from_pairs([("a", "b")])
        timeline = DiagramTimeline(dataset, Experiment([]), gold)
        assert len(timeline) == 0
        assert timeline.matrix_at(0.5).predicted_positives == 0


class TestSegment:
    def _closure_pairs(self, dataset, experiment, threshold):
        subset = experiment.threshold_subset(threshold)
        return Clustering.from_pairs(subset.pairs()).pairs()

    @pytest.mark.parametrize("seed", range(5))
    def test_segment_equals_closure_difference(self, seed):
        """The segment must equal the diff of the two full closures."""
        dataset, experiment, gold = _random_case(seed, n=15, matches=20)
        timeline = DiagramTimeline(dataset, experiment, gold, checkpoint_every=4)
        high, low = 0.7, 0.3
        expected_gain = self._closure_pairs(
            dataset, experiment, low
        ) - self._closure_pairs(dataset, experiment, high)
        segment = timeline.segment(high, low)
        gained = segment.new_true_positives | segment.new_false_positives
        assert gained == expected_gain

    def test_segment_labels_against_gold(self):
        dataset = Dataset([Record(x, {}) for x in "abcd"])
        gold = GoldStandard.from_pairs([("a", "b")])
        experiment = Experiment(
            [("a", "b", 0.9), ("c", "d", 0.6), ("b", "c", 0.4)]
        )
        segment = DiagramTimeline(dataset, experiment, gold).segment(1.0, 0.5)
        assert segment.new_true_positives == {("a", "b")}
        assert segment.new_false_positives == {("c", "d")}

    def test_segment_includes_closure_pairs(self):
        """Merging two clusters reports all cross pairs, not just the match."""
        dataset = Dataset([Record(x, {}) for x in "abcd"])
        gold = GoldStandard.from_assignment(
            {"a": "g", "b": "g", "c": "g", "d": "g"}
        )
        experiment = Experiment(
            [("a", "b", 0.9), ("c", "d", 0.8), ("b", "c", 0.5)]
        )
        segment = DiagramTimeline(dataset, experiment, gold).segment(0.6, 0.5)
        # merging {a,b} with {c,d} gains 4 cross pairs
        assert segment.new_true_positives == {
            ("a", "c"), ("a", "d"), ("b", "c"), ("b", "d"),
        }

    def test_empty_range(self):
        dataset, experiment, gold = _random_case(6)
        timeline = DiagramTimeline(dataset, experiment, gold)
        segment = timeline.segment(math.inf, 1.01)
        assert not segment.new_true_positives
        assert not segment.new_false_positives

    def test_invalid_range_rejected(self):
        dataset, experiment, gold = _random_case(7)
        timeline = DiagramTimeline(dataset, experiment, gold)
        with pytest.raises(ValueError, match="high > low"):
            timeline.segment(0.3, 0.7)
        with pytest.raises(ValueError, match="high > low"):
            timeline.segment(0.5, 0.5)

    @given(st.integers(min_value=0, max_value=5000))
    @settings(max_examples=20, deadline=None)
    def test_adjacent_segments_partition_full_range(self, seed):
        """Segments over [1, m] and [m, 0] together equal [1, 0]."""
        rng = random.Random(seed)
        dataset, experiment, gold = _random_case(
            seed, n=rng.randrange(5, 15), matches=rng.randrange(2, 15)
        )
        timeline = DiagramTimeline(dataset, experiment, gold, checkpoint_every=3)
        middle = rng.random() * 0.8 + 0.1
        top = timeline.segment(2.0, middle)
        bottom = timeline.segment(middle, -0.1)
        full = timeline.segment(2.0, -0.1)
        union_true = top.new_true_positives | bottom.new_true_positives
        union_false = top.new_false_positives | bottom.new_false_positives
        assert union_true == full.new_true_positives
        assert union_false == full.new_false_positives
        assert not (top.new_true_positives & bottom.new_true_positives)
        assert not (top.new_false_positives & bottom.new_false_positives)
