"""Tests for the pair-counting, merge-tracking union-find (Appendix D)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.unionfind import PairCountingUnionFind


class TestBasics:
    def test_initial_state(self):
        uf = PairCountingUnionFind(4)
        assert uf.cluster_count == 4
        assert uf.pair_count == 0
        assert not uf.connected(0, 1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            PairCountingUnionFind(-1)

    def test_union_connects(self):
        uf = PairCountingUnionFind(4)
        uf.union(0, 1)
        assert uf.connected(0, 1)
        assert uf.cluster_count == 3
        assert uf.pair_count == 1

    def test_union_is_idempotent_on_pair_count(self):
        uf = PairCountingUnionFind(3)
        first_id = uf.union(0, 1)
        second_id = uf.union(1, 0)
        assert uf.pair_count == 1
        assert second_id == first_id  # no-op keeps the existing id

    def test_pair_count_triangle(self):
        uf = PairCountingUnionFind(3)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.pair_count == 3  # C(3,2)

    def test_cluster_sizes(self):
        uf = PairCountingUnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.cluster_size(0) == 3
        assert uf.cluster_size(4) == 1

    def test_fresh_cluster_ids_minted_per_merge(self):
        uf = PairCountingUnionFind(4)
        first = uf.union(0, 1)
        second = uf.union(2, 3)
        third = uf.union(0, 2)
        assert first == 4
        assert second == 5
        assert third == 6
        assert uf.cluster_id_of(3) == 6

    def test_clusters_materialization(self):
        uf = PairCountingUnionFind(4)
        uf.union(0, 1)
        clusters = uf.clusters()
        members = sorted(tuple(sorted(m)) for m in clusters.values())
        assert members == [(0, 1), (2,), (3,)]

    def test_copy_is_independent(self):
        uf = PairCountingUnionFind(3)
        uf.union(0, 1)
        clone = uf.copy()
        clone.union(1, 2)
        assert uf.pair_count == 1
        assert clone.pair_count == 3


class TestEdgeCases:
    def test_empty_structure(self):
        uf = PairCountingUnionFind(0)
        assert len(uf) == 0
        assert uf.cluster_count == 0
        assert uf.pair_count == 0
        assert uf.clusters() == {}
        assert uf.tracked_union([]) == []

    def test_self_pair_union_is_a_no_op(self):
        uf = PairCountingUnionFind(2)
        kept = uf.union(1, 1)
        assert kept == uf.cluster_id_of(1)
        assert uf.cluster_count == 2
        assert uf.pair_count == 0

    def test_self_pairs_in_tracked_union_are_ignored(self):
        uf = PairCountingUnionFind(3)
        merges = uf.tracked_union([(0, 0), (1, 1)])
        assert merges == []
        assert uf.cluster_count == 3

    def test_duplicate_pairs_count_once(self):
        uf = PairCountingUnionFind(3)
        merges = uf.tracked_union([(0, 1), (0, 1), (1, 0)])
        assert len(merges) == 1
        assert uf.pair_count == 1
        assert uf.cluster_count == 2

    def test_copy_stays_independent_after_further_unions(self):
        """Mutating either side after copy() never leaks to the other."""
        uf = PairCountingUnionFind(4)
        uf.union(0, 1)
        clone = uf.copy()
        uf.union(2, 3)      # original moves on
        clone.union(0, 2)   # clone diverges
        assert uf.pair_count == 2
        assert clone.pair_count == 3
        assert not clone.connected(2, 3)
        assert not uf.connected(0, 2)
        # fresh ids minted after the copy must not collide
        assert uf.cluster_id_of(2) == clone.cluster_id_of(0) == 5

    def test_copy_of_empty_structure(self):
        clone = PairCountingUnionFind(0).copy()
        assert len(clone) == 0
        indices = clone.grow(2)
        assert list(indices) == [0, 1]
        assert clone.cluster_count == 2


class TestGrow:
    def test_grow_appends_singletons(self):
        uf = PairCountingUnionFind(2)
        indices = uf.grow(3)
        assert list(indices) == [2, 3, 4]
        assert len(uf) == 5
        assert uf.cluster_count == 5
        assert uf.pair_count == 0

    def test_grow_zero_is_a_no_op(self):
        uf = PairCountingUnionFind(2)
        assert list(uf.grow(0)) == []
        assert len(uf) == 2

    def test_negative_growth_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            PairCountingUnionFind(2).grow(-1)

    def test_grown_elements_get_fresh_cluster_ids(self):
        """Growth interleaved with merges never reuses a cluster id."""
        uf = PairCountingUnionFind(2)
        merged_id = uf.union(0, 1)  # mints id 2
        (new_element,) = uf.grow(1)
        assert uf.cluster_id_of(new_element) != merged_id
        assert uf.cluster_id_of(new_element) == 3
        later = uf.union(0, new_element)
        assert later == 4

    def test_grown_elements_participate_in_unions(self):
        uf = PairCountingUnionFind(1)
        uf.grow(2)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.cluster_size(0) == 3
        assert uf.pair_count == 3


class TestTrackedUnion:
    def test_paper_example(self):
        """Appendix D.1: {{a},{b},{c,d}} + pairs {a,b},{b,c} -> one entry."""
        uf = PairCountingUnionFind(4)  # a=0, b=1, c=2, d=3
        cd_id = uf.union(2, 3)
        merges = uf.tracked_union([(0, 1), (1, 2)])
        assert len(merges) == 1
        entry = merges[0]
        assert sorted(entry.sources) == [0, 1, cd_id]
        assert entry.target == uf.cluster_id_of(0)

    def test_no_op_batch(self):
        uf = PairCountingUnionFind(3)
        uf.union(0, 1)
        assert uf.tracked_union([(0, 1), (1, 0)]) == []

    def test_disjoint_merges_produce_separate_entries(self):
        uf = PairCountingUnionFind(4)
        merges = uf.tracked_union([(0, 1), (2, 3)])
        assert len(merges) == 2
        targets = {entry.target for entry in merges}
        assert targets == {uf.cluster_id_of(0), uf.cluster_id_of(2)}

    def test_sources_are_pre_batch_ids_only(self):
        """Mid-batch intermediate cluster ids never leak into sources."""
        uf = PairCountingUnionFind(4)
        merges = uf.tracked_union([(0, 1), (1, 2), (2, 3)])
        assert len(merges) == 1
        assert sorted(merges[0].sources) == [0, 1, 2, 3]

    def test_figure10_sequence(self):
        """The three single-pair batches of the Figure 10 run."""
        uf = PairCountingUnionFind(4)  # a,b,c,d = 0..3
        step1 = uf.tracked_union([(0, 2)])  # {a,c}
        assert [sorted(e.sources) for e in step1] == [[0, 2]]
        step2 = uf.tracked_union([(1, 3)])  # {b,d}
        assert [sorted(e.sources) for e in step2] == [[1, 3]]
        step3 = uf.tracked_union([(0, 1)])  # {a,b} merges both clusters
        assert [sorted(e.sources) for e in step3] == [
            [step1[0].target, step2[0].target]
        ]
        assert uf.pair_count == 6  # all four together


@st.composite
def union_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    pair_count = draw(st.integers(min_value=0, max_value=60))
    pairs = [
        (
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.integers(min_value=0, max_value=n - 1)),
        )
        for _ in range(pair_count)
    ]
    pairs = [(a, b) for a, b in pairs if a != b]
    return n, pairs


class TestProperties:
    @given(union_sequences())
    @settings(max_examples=60)
    def test_pair_count_matches_cluster_sizes(self, case):
        n, pairs = case
        uf = PairCountingUnionFind(n)
        for a, b in pairs:
            uf.union(a, b)
        expected = sum(
            len(members) * (len(members) - 1) // 2
            for members in uf.clusters().values()
        )
        assert uf.pair_count == expected

    @given(union_sequences())
    @settings(max_examples=60)
    def test_cluster_count_plus_merges_is_n(self, case):
        n, pairs = case
        uf = PairCountingUnionFind(n)
        merges = 0
        for a, b in pairs:
            if not uf.connected(a, b):
                merges += 1
            uf.union(a, b)
        assert uf.cluster_count == n - merges

    @given(union_sequences())
    @settings(max_examples=60)
    def test_tracked_union_matches_plain_union(self, case):
        """A tracked batch produces the identical partition."""
        n, pairs = case
        tracked = PairCountingUnionFind(n)
        plain = PairCountingUnionFind(n)
        tracked.tracked_union(pairs)
        for a, b in pairs:
            plain.union(a, b)
        tracked_partition = sorted(
            tuple(sorted(m)) for m in tracked.clusters().values()
        )
        plain_partition = sorted(
            tuple(sorted(m)) for m in plain.clusters().values()
        )
        assert tracked_partition == plain_partition
        assert tracked.pair_count == plain.pair_count

    @given(union_sequences())
    @settings(max_examples=60)
    def test_merge_log_sources_partition_targets(self, case):
        """Each entry's sources are disjoint pre-batch clusters whose
        union is exactly the target cluster."""
        n, pairs = case
        uf = PairCountingUnionFind(n)
        before = {
            cluster_id: set(members)
            for cluster_id, members in uf.clusters().items()
        }
        merges = uf.tracked_union(pairs)
        after = uf.clusters()
        for entry in merges:
            combined: set[int] = set()
            for source in entry.sources:
                assert source in before
                assert not (combined & before[source])
                combined |= before[source]
            assert combined == set(after[entry.target])
