"""Tests for clusterings, transitive closure, and intersection."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import Clustering, closure_distance, transitive_closure
from repro.core.pairs import make_pair


class TestConstruction:
    def test_from_clusters(self):
        clustering = Clustering([["a", "b"], ["c"]])
        assert len(clustering) == 2
        assert clustering.same_cluster("a", "b")
        assert not clustering.same_cluster("a", "c")

    def test_overlapping_clusters_rejected(self):
        with pytest.raises(ValueError, match="more than one cluster"):
            Clustering([["a", "b"], ["b", "c"]])

    def test_empty_clusters_skipped(self):
        clustering = Clustering([[], ["a"]])
        assert len(clustering) == 1

    def test_from_pairs_transitively_closes(self):
        clustering = Clustering.from_pairs([("a", "b"), ("b", "c")])
        assert clustering.same_cluster("a", "c")

    def test_from_assignment(self):
        clustering = Clustering.from_assignment({"a": "x", "b": "x", "c": "y"})
        assert clustering.same_cluster("a", "b")
        assert not clustering.same_cluster("a", "c")

    def test_equality_ignores_singletons(self):
        with_singleton = Clustering([["a", "b"], ["c"]])
        without = Clustering([["a", "b"]])
        assert with_singleton == without
        assert hash(with_singleton) == hash(without)


class TestQueries:
    def test_cluster_of_unmentioned_record_is_singleton(self):
        clustering = Clustering([["a", "b"]])
        assert clustering.cluster_of("z") == ("z",)

    def test_pairs_of_triangle(self):
        clustering = Clustering([["a", "b", "c"]])
        assert clustering.pairs() == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_pair_count_matches_pairs(self):
        clustering = Clustering([["a", "b", "c"], ["d", "e"]])
        assert clustering.pair_count() == len(clustering.pairs()) == 4

    def test_cluster_sizes_descending(self):
        clustering = Clustering([["a"], ["b", "c", "d"], ["e", "f"]])
        assert clustering.cluster_sizes() == [3, 2, 1]

    def test_records(self):
        clustering = Clustering([["a", "b"], ["c"]])
        assert clustering.records() == {"a", "b", "c"}

    def test_restricted_to(self):
        clustering = Clustering([["a", "b", "c"], ["d", "e"]])
        restricted = clustering.restricted_to(["a", "b", "d"])
        assert restricted.same_cluster("a", "b")
        assert restricted.cluster_of("d") == ("d",)


class TestIntersect:
    def test_figure9_pitfall(self):
        """Ground truth {{a,b},{c}}; merging {b,c} then {a,c} must put
        a and b together in the intersection (Figure 9)."""
        truth = Clustering([["a", "b"], ["c"]])
        experiment = Clustering.from_pairs([("b", "c"), ("a", "c")])
        meet = experiment.intersect(truth)
        assert meet.same_cluster("a", "b")
        assert not meet.same_cluster("a", "c")

    def test_meet_pair_count_is_tp(self):
        truth = Clustering([["a", "b"], ["c", "d"]])
        experiment = Clustering([["a", "b", "c", "d"]])
        assert experiment.intersect(truth).pair_count() == 2

    def test_intersect_with_itself(self):
        clustering = Clustering([["a", "b"], ["c", "d", "e"]])
        assert clustering.intersect(clustering).pairs() == clustering.pairs()

    def test_intersect_commutative(self):
        left = Clustering([["a", "b", "c"]])
        right = Clustering([["b", "c", "d"]])
        assert left.intersect(right).pairs() == right.intersect(left).pairs()


class TestTransitiveClosure:
    def test_chain_closes(self):
        closed = transitive_closure([("a", "b"), ("b", "c"), ("c", "d")])
        assert closed == {
            make_pair(a, b) for a, b in combinations("abcd", 2)
        }

    def test_already_closed_is_identity(self):
        pairs = {("a", "b"), ("a", "c"), ("b", "c")}
        assert transitive_closure(pairs) == pairs

    def test_closure_distance(self):
        assert closure_distance([("a", "b"), ("b", "c")]) == 1
        assert closure_distance([("a", "b")]) == 0
        assert closure_distance([]) == 0


@st.composite
def pair_lists(draw):
    n = draw(st.integers(min_value=2, max_value=15))
    ids = [f"r{i}" for i in range(n)]
    count = draw(st.integers(min_value=0, max_value=25))
    pairs = []
    for _ in range(count):
        a = draw(st.sampled_from(ids))
        b = draw(st.sampled_from(ids))
        if a != b:
            pairs.append((a, b))
    return pairs


class TestProperties:
    @given(pair_lists())
    @settings(max_examples=60)
    def test_from_pairs_produces_closed_pair_set(self, pairs):
        closed = Clustering.from_pairs(pairs).pairs()
        # closing again is a fixed point
        assert transitive_closure(closed) == closed

    @given(pair_lists())
    @settings(max_examples=60)
    def test_closure_contains_input(self, pairs):
        canonical = {make_pair(a, b) for a, b in pairs}
        assert canonical <= transitive_closure(pairs)

    @given(pair_lists(), pair_lists())
    @settings(max_examples=40)
    def test_meet_is_subset_of_both(self, pairs_a, pairs_b):
        left = Clustering.from_pairs(pairs_a)
        right = Clustering.from_pairs(pairs_b)
        meet_pairs = left.intersect(right).pairs()
        assert meet_pairs <= left.pairs() | set()
        assert meet_pairs <= right.pairs() | set()
        # and equals the set intersection of the two closed pair sets
        assert meet_pairs == (left.pairs() & right.pairs())
