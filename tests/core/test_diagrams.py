"""Tests for metric/metric diagram algorithms (Algorithm 1, Appendix D)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Dataset,
    Experiment,
    GoldStandard,
    Record,
    compute_diagram_naive_clustering,
    compute_diagram_naive_pairwise,
    compute_diagram_optimized,
    metric_metric_series,
)
from repro.core.diagrams import _sample_boundaries
from repro.metrics.pairwise import precision, recall


class TestFigure10:
    def test_optimized_reproduces_paper_matrices(
        self, abcd_dataset, abcd_gold, abcd_experiment
    ):
        points = compute_diagram_optimized(
            abcd_dataset, abcd_experiment, abcd_gold, samples=4
        )
        matrices = [p.matrix.as_dict() for p in points]
        assert matrices == [
            {"tp": 0, "fp": 0, "fn": 2, "tn": 4},
            {"tp": 0, "fp": 1, "fn": 2, "tn": 3},
            {"tp": 0, "fp": 2, "fn": 2, "tn": 2},
            {"tp": 2, "fp": 4, "fn": 0, "tn": 0},
        ]

    def test_first_point_is_infinite_threshold(
        self, abcd_dataset, abcd_gold, abcd_experiment
    ):
        points = compute_diagram_optimized(
            abcd_dataset, abcd_experiment, abcd_gold, samples=4
        )
        assert math.isinf(points[0].threshold)
        assert points[0].matches_applied == 0

    def test_thresholds_are_descending_scores(
        self, abcd_dataset, abcd_gold, abcd_experiment
    ):
        points = compute_diagram_optimized(
            abcd_dataset, abcd_experiment, abcd_gold, samples=4
        )
        assert [p.threshold for p in points[1:]] == [0.9, 0.8, 0.7]


class TestValidation:
    def test_unscored_matches_rejected(self, abcd_dataset, abcd_gold):
        experiment = Experiment([("a", "b")])
        with pytest.raises(ValueError, match="unscored"):
            compute_diagram_optimized(abcd_dataset, experiment, abcd_gold)

    def test_zero_samples_rejected(self, abcd_dataset, abcd_gold, abcd_experiment):
        with pytest.raises(ValueError, match="at least one sample"):
            compute_diagram_optimized(
                abcd_dataset, abcd_experiment, abcd_gold, samples=0
            )

    def test_empty_experiment(self, abcd_dataset, abcd_gold):
        points = compute_diagram_optimized(
            abcd_dataset, Experiment([]), abcd_gold, samples=5
        )
        assert len(points) == 1
        assert points[0].matrix.true_positives == 0
        assert points[0].matrix.false_negatives == 2


class TestSampleBoundaries:
    def test_divisible(self):
        assert _sample_boundaries(9, 4) == [0, 3, 6, 9]

    def test_non_divisible_still_monotone_and_complete(self):
        boundaries = _sample_boundaries(10, 4)
        assert boundaries[0] == 0
        assert boundaries[-1] == 10
        assert boundaries == sorted(boundaries)

    def test_more_samples_than_matches(self):
        boundaries = _sample_boundaries(2, 5)
        assert boundaries[0] == 0
        assert boundaries[-1] == 2


def _random_case(seed, n=30, matches=40, samples=7):
    rng = random.Random(seed)
    dataset = Dataset([Record(f"r{i}", {}) for i in range(n)], name="rand")
    # random ground truth clustering
    assignment = {f"r{i}": str(rng.randrange(n // 2)) for i in range(n)}
    gold = GoldStandard.from_assignment(assignment)
    matches = min(matches, n * (n - 1) // 2)  # cannot exceed C(n, 2)
    pairs = set()
    while len(pairs) < matches:
        a, b = rng.sample(range(n), 2)
        pairs.add((f"r{min(a,b)}", f"r{max(a,b)}"))
    experiment = Experiment(
        [(a, b, rng.random()) for a, b in sorted(pairs)], name="rand-run"
    )
    return dataset, experiment, gold, samples


class TestAlgorithmEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_optimized_equals_naive_clustering(self, seed):
        dataset, experiment, gold, samples = _random_case(seed)
        optimized = compute_diagram_optimized(dataset, experiment, gold, samples)
        naive = compute_diagram_naive_clustering(dataset, experiment, gold, samples)
        assert [p.matrix for p in optimized] == [p.matrix for p in naive]
        assert [p.threshold for p in optimized] == [p.threshold for p in naive]

    @pytest.mark.parametrize("seed", range(4))
    def test_optimized_equals_naive_pairwise(self, seed):
        dataset, experiment, gold, samples = _random_case(seed, n=15, matches=20)
        optimized = compute_diagram_optimized(dataset, experiment, gold, samples)
        pairwise = compute_diagram_naive_pairwise(dataset, experiment, gold, samples)
        assert [p.matrix for p in optimized] == [p.matrix for p in pairwise]

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_equivalence_property(self, seed):
        rng = random.Random(seed)
        dataset, experiment, gold, _ = _random_case(
            seed, n=rng.randrange(4, 20), matches=rng.randrange(1, 25)
        )
        samples = rng.randrange(2, 9)
        optimized = compute_diagram_optimized(dataset, experiment, gold, samples)
        naive = compute_diagram_naive_clustering(dataset, experiment, gold, samples)
        assert [p.matrix for p in optimized] == [p.matrix for p in naive]


class TestMonotonicity:
    @pytest.mark.parametrize("seed", range(4))
    def test_sweep_invariants(self, seed):
        """As the threshold drops: |E| grows, FN shrinks, TP grows."""
        dataset, experiment, gold, _ = _random_case(seed)
        points = compute_diagram_optimized(dataset, experiment, gold, samples=9)
        for before, after in zip(points, points[1:]):
            assert (
                after.matrix.predicted_positives
                >= before.matrix.predicted_positives
            )
            assert after.matrix.true_positives >= before.matrix.true_positives
            assert after.matrix.false_negatives <= before.matrix.false_negatives

    def test_total_constant_across_sweep(self, abcd_dataset, abcd_gold, abcd_experiment):
        points = compute_diagram_optimized(
            abcd_dataset, abcd_experiment, abcd_gold, samples=4
        )
        totals = {p.matrix.total for p in points}
        assert totals == {abcd_dataset.total_pairs()}


class TestMetricSeries:
    def test_precision_recall_series(self, abcd_dataset, abcd_gold, abcd_experiment):
        points = compute_diagram_optimized(
            abcd_dataset, abcd_experiment, abcd_gold, samples=4
        )
        series = metric_metric_series(points, recall, precision)
        assert len(series) == 4
        # first point: nothing predicted -> recall 0, precision 1 (vacuous)
        assert series[0] == (0.0, 1.0)
        # last point: everything merged -> recall 1, precision 2/6
        assert series[-1][0] == 1.0
        assert series[-1][1] == pytest.approx(2 / 6)
