"""Tests for the FrostPlatform facade."""

import pytest

from repro.core.platform import FrostPlatform


@pytest.fixture
def platform(people_dataset, people_gold, people_experiment):
    platform = FrostPlatform()
    platform.add_dataset(people_dataset)
    platform.add_gold(people_dataset.name, people_gold)
    platform.add_experiment(people_dataset.name, people_experiment)
    return platform


class TestRegistry:
    def test_names(self, platform):
        assert platform.dataset_names() == ["people"]
        assert platform.experiment_names("people") == ["people-run"]
        assert platform.gold_names("people") == ["people-gold"]

    def test_duplicate_dataset_rejected(self, platform, people_dataset):
        with pytest.raises(ValueError, match="already registered"):
            platform.add_dataset(people_dataset)

    def test_duplicate_experiment_rejected(self, platform, people_experiment):
        with pytest.raises(ValueError, match="already registered"):
            platform.add_experiment("people", people_experiment)

    def test_unknown_dataset_error_lists_known(self, platform):
        with pytest.raises(KeyError, match="known: people"):
            platform.dataset("nope")

    def test_unknown_experiment_error_lists_known(self, platform):
        with pytest.raises(KeyError, match="people-run"):
            platform.experiment("people", "nope")


class TestEvaluations:
    def test_confusion(self, platform):
        matrix = platform.confusion("people", "people-run", "people-gold")
        # found p1~p2 (tp), invented p5~p6 (fp), missed p3~p4 (fn)
        assert matrix.as_dict() == {"tp": 1, "fp": 1, "fn": 1, "tn": 12}

    def test_metrics_table(self, platform):
        table = platform.metrics_table(
            "people", "people-gold", metric_names=["precision", "recall", "f1"]
        )
        row = table["people-run"]
        assert row["precision"] == 0.5
        assert row["recall"] == 0.5
        assert row["f1"] == 0.5

    def test_diagram(self, platform):
        points = platform.diagram("people", "people-run", "people-gold", samples=3)
        assert points[0].matches_applied == 0
        assert points[-1].matches_applied == 2

    def test_compare_sets_with_gold(self, platform):
        comparison = platform.compare_sets("people", ["people-run", "people-gold"])
        missed = comparison.select(include=["people-gold"], exclude=["people-run"])
        assert missed == {("p3", "p4")}

    def test_compare_sets_unknown_name(self, platform):
        with pytest.raises(KeyError, match="no experiment or gold"):
            platform.compare_sets("people", ["nope"])


class TestConvenienceViews:
    def test_profile_uses_registered_gold(self, platform):
        profile = platform.profile("people")
        assert profile.tuple_count == 6
        # people-gold has 2 duplicate pairs over C(6,2)=15 pairs
        assert profile.positive_ratio == pytest.approx(2 / 15)

    def test_profile_without_gold(self, people_dataset):
        bare = FrostPlatform()
        bare.add_dataset(people_dataset)
        profile = bare.profile("people")
        assert profile.positive_ratio is None

    def test_timeline_matches_diagram(self, platform):
        timeline = platform.timeline("people", "people-run", "people-gold")
        for point in platform.diagram("people", "people-run", "people-gold", 3):
            assert timeline.matrix_at(point.threshold) == point.matrix
