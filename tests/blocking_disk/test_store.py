"""DiskBlockingStore: run lifecycle, spilling, and the pushed-down joins."""

import os
import sqlite3

import pytest

from repro.blocking_disk.store import DEFAULT_CHUNK_SIZE, DiskBlockingStore
from repro.storage.database import SCHEMA_VERSION, FrostStore
from repro.telemetry.metrics import get_metrics


@pytest.fixture
def store():
    with DiskBlockingStore() as store:
        yield store


def spill(store, run_id, rows):
    return store.spill_keys(run_id, iter(rows))


class TestLifecycle:
    def test_scratch_database_is_removed_on_close(self):
        store = DiskBlockingStore()
        path = store.connection.execute("PRAGMA database_list").fetchone()[2]
        assert os.path.exists(path)
        store.close()
        assert not os.path.exists(path)

    def test_close_is_idempotent(self):
        store = DiskBlockingStore()
        store.close()
        store.close()

    def test_explicit_path_is_kept(self, tmp_path):
        path = tmp_path / "blocking.db"
        with DiskBlockingStore(path) as store:
            run_id = store.begin_run("standard_blocking", {"k": 1})
            spill(store, run_id, [("a", "r1")])
        assert path.exists()
        with DiskBlockingStore(path) as store:
            assert store.key_count(run_id) == 1

    def test_path_and_connection_are_exclusive(self, tmp_path):
        connection = sqlite3.connect(":memory:")
        with pytest.raises(ValueError, match="not both"):
            DiskBlockingStore(tmp_path / "x.db", connection=connection)
        connection.close()

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError, match="positive"):
            DiskBlockingStore(chunk_size=0)

    def test_run_catalog(self, store):
        run_id = store.begin_run("lsh_blocking", {"num_perm": 16})
        info = store.run_info(run_id)
        assert info == {"scheme": "lsh_blocking", "config": {"num_perm": 16}}
        with pytest.raises(KeyError):
            store.run_info(run_id + 17)

    def test_drop_run_removes_all_rows(self, store):
        run_id = store.begin_run("standard_blocking", {})
        spill(store, run_id, [("a", "r1"), ("a", "r2")])
        store.spill_signatures(run_id, [("r1", b"\x01")])
        store.drop_run(run_id)
        assert store.key_count(run_id) == 0
        assert store.signature(run_id, "r1") is None
        with pytest.raises(KeyError):
            store.run_info(run_id)


class TestSpilling:
    def test_spill_from_generator_in_batches(self):
        with DiskBlockingStore(chunk_size=7) as store:
            run_id = store.begin_run("standard_blocking", {})
            rows = ((f"k{i % 5}", f"r{i:03d}") for i in range(100))
            assert store.spill_keys(run_id, rows) == 100
            assert store.key_count(run_id) == 100
            assert store.block_count(run_id) == 5

    def test_rows_spilled_counter(self, store):
        counter = get_metrics().counter("frost_blocking_rows_spilled_total", "")
        before = counter.value
        run_id = store.begin_run("standard_blocking", {})
        spill(store, run_id, [("a", "r1"), ("a", "r2"), ("b", "r3")])
        assert counter.value == before + 3

    def test_signatures_round_trip(self, store):
        run_id = store.begin_run("lsh_blocking", {})
        blob = bytes(range(32))
        store.spill_signatures(run_id, [("r1", blob), ("r2", b"\xff" * 8)])
        assert store.signature(run_id, "r1") == blob
        assert store.signature(run_id, "r2") == b"\xff" * 8
        assert store.signature(run_id, "r3") is None


class TestEquiJoin:
    def test_basic_blocks(self, store):
        run_id = store.begin_run("standard_blocking", {})
        spill(
            store,
            run_id,
            [("a", "r1"), ("a", "r2"), ("a", "r3"), ("b", "r4"), ("b", "r5")],
        )
        assert store.candidates(run_id) == {
            ("r1", "r2"), ("r1", "r3"), ("r2", "r3"), ("r4", "r5"),
        }

    def test_pairs_sharing_blocks_are_distinct(self, store):
        run_id = store.begin_run("token_blocking", {})
        spill(store, run_id, [("a", "r1"), ("a", "r2"), ("b", "r1"), ("b", "r2")])
        assert store.candidates(run_id) == {("r1", "r2")}

    def test_purge_filter_drops_oversized_blocks(self, store):
        run_id = store.begin_run("token_blocking", {})
        spill(
            store,
            run_id,
            [("big", f"r{i}") for i in range(5)]
            + [("ok", "r1"), ("ok", "r9")],
        )
        assert store.purge_stats(run_id, 3) == (1, 5)
        assert store.candidates(run_id, max_block_size=3) == {("r1", "r9")}
        assert store.purge_stats(run_id, None) == (0, 0)
        assert len(store.candidates(run_id)) == 10 + 1

    def test_runs_are_isolated(self, store):
        first = store.begin_run("standard_blocking", {})
        second = store.begin_run("standard_blocking", {})
        spill(store, first, [("a", "r1"), ("a", "r2")])
        spill(store, second, [("a", "r8"), ("a", "r9")])
        assert store.candidates(first) == {("r1", "r2")}
        assert store.candidates(second) == {("r8", "r9")}

    def test_chunk_streaming_bounded_and_sorted(self, store):
        run_id = store.begin_run("standard_blocking", {})
        spill(store, run_id, [("a", f"r{i:02d}") for i in range(12)])
        chunks_counter = get_metrics().counter("frost_blocking_chunks_total", "")
        before = chunks_counter.value
        chunks = list(store.iter_candidate_chunks(run_id, chunk_size=10))
        # C(12, 2) = 66 pairs in chunks of <= 10
        assert [len(c) for c in chunks] == [10, 10, 10, 10, 10, 10, 6]
        flat = [pair for chunk in chunks for pair in chunk]
        assert flat == sorted(flat)
        assert chunks_counter.value == before + 7


class TestWindowJoin:
    def test_window_pairs_positions(self, store):
        run_id = store.begin_run("sorted_neighborhood", {})
        spill(store, run_id, [("a", "r1"), ("b", "r2"), ("c", "r3"), ("d", "r4")])
        assert store.candidates(run_id, window=2) == {
            ("r1", "r2"), ("r2", "r3"), ("r3", "r4"),
        }

    def test_window_pairs_canonicalized(self, store):
        # keys invert the id order: the CASE pair must still emit first < second
        run_id = store.begin_run("sorted_neighborhood", {})
        spill(store, run_id, [("z", "r1"), ("a", "r2")])
        assert store.candidates(run_id, window=2) == {("r1", "r2")}

    def test_window_validation(self, store):
        run_id = store.begin_run("sorted_neighborhood", {})
        with pytest.raises(ValueError, match="at least 2"):
            next(iter(store.iter_candidate_chunks(run_id, window=1)))
        with pytest.raises(ValueError, match="no block purge"):
            next(
                iter(
                    store.iter_candidate_chunks(
                        run_id, window=3, max_block_size=5
                    )
                )
            )


class TestFrostStoreBacked:
    def test_blocking_store_shares_the_connection(self):
        with FrostStore(":memory:") as frost:
            assert frost.schema_version == SCHEMA_VERSION
            blocking = frost.blocking_store()
            run_id = blocking.begin_run("standard_blocking", {})
            spill(blocking, run_id, [("a", "r1"), ("a", "r2")])
            assert blocking.candidates(run_id) == {("r1", "r2")}
            # borrowed connection: closing the view must not close the store
            blocking.close()
            assert frost.dataset_names() == []

    def test_blocking_rows_persist_in_store_file(self, tmp_path):
        path = str(tmp_path / "platform.db")
        with FrostStore(path) as frost:
            blocking = frost.blocking_store()
            run_id = blocking.begin_run("token_blocking", {"max_block_size": 9})
            spill(blocking, run_id, [("t", "r1"), ("t", "r2")])
        with FrostStore(path) as frost:
            blocking = frost.blocking_store()
            assert blocking.run_info(run_id)["scheme"] == "token_blocking"
            assert blocking.candidates(run_id) == {("r1", "r2")}
