"""DiskBlockingIndex: drop-in equivalence with the in-memory delta index."""

import pytest

from repro.blocking_disk import DiskBlockingIndex, DiskBlockingStore
from repro.core.records import Record
from repro.datagen import make_person_benchmark
from repro.storage.database import FrostStore
from repro.streaming.config import build_session, delta_index_from_key, open_session
from repro.streaming.delta_blocking import (
    IncrementalBlockingIndex,
    single_key,
    token_keys,
)
from repro.matching.blocking import first_token_key


def person(record_id, last):
    return Record(record_id, {"last": last})


def make_pair_of_indexes(max_block_size=None):
    emitter = single_key(first_token_key("last"))
    return (
        IncrementalBlockingIndex(emitter, max_block_size=max_block_size),
        DiskBlockingIndex(emitter, max_block_size=max_block_size),
    )


@pytest.fixture(scope="module")
def people():
    return list(make_person_benchmark(240, seed=3).dataset)


class TestEquivalence:
    def test_delta_pairs_match_memory_index(self, people):
        emitter = token_keys(min_token_length=3)
        memory = IncrementalBlockingIndex(emitter)
        disk = DiskBlockingIndex(emitter)
        for start in range(0, len(people), 60):
            batch = people[start : start + 60]
            assert disk.ingest_delta(batch).pairs == (
                memory.ingest_delta(batch).pairs
            )
        assert disk.block_count == memory.block_count
        assert disk.block_items() == memory.block_items()
        assert len(disk) == len(memory)
        disk.close()

    def test_emission_cap_is_order_dependent_like_memory(self):
        memory, disk = make_pair_of_indexes(max_block_size=2)
        batches = [
            [person("a", "smith"), person("b", "smith")],
            [person("c", "smith")],  # block full: joins silently
            [person("d", "smith")],
        ]
        for batch in batches:
            assert disk.ingest_delta(batch).pairs == (
                memory.ingest_delta(batch).pairs
            )
        # membership is kept even when emission stopped
        assert disk.block_items() == memory.block_items()
        disk.close()

    def test_duplicate_record_rejected(self):
        _, disk = make_pair_of_indexes()
        disk.ingest_delta([person("a", "smith")])
        with pytest.raises(ValueError, match="already indexed"):
            disk.ingest_delta([person("a", "smith")])
        disk.close()

    def test_contains_and_len(self):
        _, disk = make_pair_of_indexes()
        disk.ingest_delta([person("a", "smith"), person("b", "jones")])
        assert "a" in disk and "b" in disk and "z" not in disk
        assert len(disk) == 2
        disk.close()


class TestRetractRestore:
    def test_retract_undoes_the_latest_ingest(self):
        memory, disk = make_pair_of_indexes()
        first = [person("a", "smith"), person("b", "smith")]
        second = [person("c", "smith"), person("d", "jones")]
        for index in (memory, disk):
            index.ingest_delta(first)
        memory_delta = memory.ingest_delta(second)
        disk_delta = disk.ingest_delta(second)
        memory.retract(memory_delta)
        disk.retract(disk_delta)
        assert disk.block_items() == memory.block_items()
        assert "c" not in disk and "d" not in disk
        # re-ingesting after the retract emits the same delta again
        assert disk.ingest_delta(second).pairs == disk_delta.pairs
        disk.close()

    def test_restore_rebuilds_without_emitting(self):
        memory, disk = make_pair_of_indexes()
        rows = [("smith", "a"), ("smith", "b"), ("jones", "c")]
        memory.restore(rows)
        disk.restore(rows)
        assert disk.block_items() == memory.block_items()
        # the next ingest emits against the restored membership
        assert disk.ingest_delta([person("d", "smith")]).pairs == [
            ("a", "d"), ("b", "d"),
        ]
        disk.close()

    def test_restore_requires_empty_index(self):
        _, disk = make_pair_of_indexes()
        disk.ingest_delta([person("a", "smith")])
        with pytest.raises(ValueError, match="empty"):
            disk.restore([("smith", "b")])
        disk.close()


class TestSharedStore:
    def test_borrowed_store_not_closed(self):
        with DiskBlockingStore() as store:
            index = DiskBlockingIndex(
                single_key(first_token_key("last")), store=store
            )
            index.ingest_delta([person("a", "smith"), person("b", "smith")])
            index.close()  # no-op: the store is borrowed
            assert store.key_count(1) == 2


class TestDurableSessions:
    CONFIG = {
        "key": {"kind": "first_token", "attribute": "first_name"},
        "similarities": {
            "first_name": "jaro_winkler",
            "last_name": "jaro_winkler",
        },
        "threshold": 0.85,
        "blocking_storage": "disk",
    }

    def test_disk_session_matches_memory_session(self, people, tmp_path):
        memory_config = {
            k: v for k, v in self.CONFIG.items() if k != "blocking_storage"
        }
        with FrostStore(str(tmp_path / "disk.db")) as store:
            disk_session = build_session(self.CONFIG, store=store, name="d")
            disk_snapshots = [
                disk_session.ingest(people[:150]),
                disk_session.ingest(people[150:]),
            ]
        with FrostStore(str(tmp_path / "memory.db")) as store:
            memory_session = build_session(memory_config, store=store, name="m")
            memory_snapshots = [
                memory_session.ingest(people[:150]),
                memory_session.ingest(people[150:]),
            ]
        for disk_snap, memory_snap in zip(disk_snapshots, memory_snapshots):
            assert disk_snap.delta_candidates == memory_snap.delta_candidates
            assert disk_snap.cluster_count == memory_snap.cluster_count

    def test_resume_rebuilds_a_disk_index(self, people, tmp_path):
        path = str(tmp_path / "resume.db")
        with FrostStore(path) as store:
            session = build_session(self.CONFIG, store=store, name="s")
            session.ingest(people[:150])
        with FrostStore(path) as store:
            resumed = open_session(store, "s")
            assert isinstance(resumed.index, DiskBlockingIndex)
            assert resumed.status()["blocking_storage"] == "disk"
            snapshot = resumed.ingest(people[150:])
            assert snapshot.record_count == len(people)


class TestFactory:
    def test_delta_index_from_key_storage_knob(self):
        key = {"kind": "first_token", "attribute": "last"}
        assert isinstance(
            delta_index_from_key(key), IncrementalBlockingIndex
        )
        disk = delta_index_from_key(key, storage="disk")
        assert isinstance(disk, DiskBlockingIndex)
        disk.close()

    def test_lsh_disk_index_matches_memory(self, people):
        key = {"kind": "lsh", "num_perm": 16, "bands": 4, "max_block_size": 25}
        memory = delta_index_from_key(key)
        disk = delta_index_from_key(key, storage="disk")
        emitted_memory, emitted_disk = set(), set()
        for start in range(0, len(people), 80):
            batch = people[start : start + 80]
            emitted_memory.update(memory.ingest_delta(batch).pairs)
            emitted_disk.update(disk.ingest_delta(batch).pairs)
        assert emitted_disk == emitted_memory
        disk.close()
