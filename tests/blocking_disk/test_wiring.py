"""The blocking_storage knob through pipeline, engine, config, and CLI."""

import pytest

from repro.cli import build_parser, main
from repro.core.platform import FrostPlatform
from repro.datagen import make_person_benchmark
from repro.engine import ExperimentEngine
from repro.engine.jobs import JobSpec, JobState
from repro.matching.attribute_matching import AttributeComparator
from repro.matching.blocking import token_blocking
from repro.matching.pipeline import MatchingPipeline
from repro.streaming.config import build_pipeline_and_index, validate_config
from repro.telemetry.metrics import get_metrics


def _mean(vector):
    values = [value for value in vector.values.values() if value is not None]
    return sum(values) / len(values) if values else 0.0


@pytest.fixture(scope="module")
def people():
    return make_person_benchmark(200, seed=13).dataset


@pytest.fixture
def pipeline():
    return MatchingPipeline(
        candidate_generator=token_blocking,
        comparator=AttributeComparator(
            {"first_name": "jaro_winkler", "last_name": "jaro_winkler"}
        ),
        decision_model=_mean,
        threshold=0.85,
        name="disk-wiring",
    )


class TestPipelineKnob:
    def test_validation(self, pipeline):
        with pytest.raises(ValueError, match="memory.*disk"):
            pipeline.with_blocking_storage("papyrus")
        with pytest.raises(ValueError, match="blocking_storage"):
            MatchingPipeline(
                candidate_generator=token_blocking,
                comparator=pipeline.comparator,
                decision_model=_mean,
                blocking_storage="cloud",
            )

    def test_with_blocking_storage_is_a_shallow_copy(self, pipeline):
        disk = pipeline.with_blocking_storage("disk")
        assert disk is not pipeline
        assert disk.blocking_storage == "disk"
        assert pipeline.blocking_storage == "memory"
        assert disk.comparator is pipeline.comparator

    def test_identical_run_results(self, pipeline, people):
        disk = pipeline.with_blocking_storage("disk")
        memory_run = pipeline.run(people)
        disk_run = disk.run(people)
        assert disk_run.candidates == memory_run.candidates
        assert disk_run.experiment.pairs() == memory_run.experiment.pairs()

    def test_fingerprint_excludes_the_knob(self, pipeline):
        assert pipeline.config_fingerprint() == (
            pipeline.with_blocking_storage("disk").config_fingerprint()
        )

    def test_fallback_counts_and_warns(self, people, pipeline, caplog):
        def custom(dataset):
            return {("x", "y")}

        fallback = get_metrics().counter("frost_blocking_disk_fallback_total", "")
        unplannable = pipeline.with_blocker(custom).with_blocking_storage("disk")
        before = fallback.value
        prepared = unplannable.prepare(people)
        assert unplannable.generate_candidates(prepared) == {("x", "y")}
        assert fallback.value == before + 1


class TestEngineParam:
    @pytest.fixture
    def engine(self, people):
        platform = FrostPlatform()
        platform.add_dataset(people)
        return ExperimentEngine(platform, max_workers=2)

    def test_disk_jobs_share_the_memory_cache_entry(
        self, engine, pipeline, people
    ):
        memory = engine.run(
            [JobSpec(
                "pipeline",
                {"pipeline": pipeline, "dataset": people.name,
                 "register": False},
                job_id="mem",
            )]
        )["mem"]
        disk = engine.run(
            [JobSpec(
                "pipeline",
                {"pipeline": pipeline, "dataset": people.name,
                 "blocking_storage": "disk", "register": False},
                job_id="dsk",
            )]
        )["dsk"]
        assert memory.state is JobState.SUCCEEDED, memory.error
        assert disk.state is JobState.SUCCEEDED, disk.error
        # execution knob: identical output, identical cache key — the
        # second job is a cache hit
        assert disk.cache_key == memory.cache_key
        assert disk.cached is True

    def test_disk_job_output_matches_direct_run(self, engine, pipeline, people):
        result = engine.run(
            [JobSpec(
                "pipeline",
                {"pipeline": pipeline, "dataset": people.name,
                 "blocking_storage": "disk", "register": False,
                 "cacheable": False},
                job_id="out",
            )]
        )["out"]
        assert result.state is JobState.SUCCEEDED, result.error
        direct = pipeline.run(people).experiment
        assert sorted(
            (first, second) for first, second, _, _ in result.value["matches"]
        ) == sorted(tuple(match.pair) for match in direct)


class TestStreamConfig:
    BASE = {
        "key": {"kind": "first_token", "attribute": "first_name"},
        "similarities": {"first_name": "jaro_winkler"},
    }

    def test_normalization_keeps_explicit_values_only(self):
        assert "blocking_storage" not in validate_config(self.BASE)
        normalized = validate_config({**self.BASE, "blocking_storage": "disk"})
        assert normalized["blocking_storage"] == "disk"
        normalized = validate_config({**self.BASE, "blocking_storage": "memory"})
        assert normalized["blocking_storage"] == "memory"

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError, match="blocking_storage"):
            validate_config({**self.BASE, "blocking_storage": "tape"})
        with pytest.raises(ValueError, match="blocking_storage"):
            validate_config({**self.BASE, "blocking_storage": True})

    def test_build_pipeline_applies_the_knob(self):
        memory_pipeline, _ = build_pipeline_and_index(self.BASE)
        disk_pipeline, _ = build_pipeline_and_index(
            {**self.BASE, "blocking_storage": "disk"}
        )
        assert memory_pipeline.blocking_storage == "memory"
        assert disk_pipeline.blocking_storage == "disk"
        assert memory_pipeline.config_fingerprint() == (
            disk_pipeline.config_fingerprint()
        )


DATASET_CSV = """id,first_name,last_name
r1,john,smith
r2,jon,smith
r3,mary,jones
r4,mary,jones
"""


class TestCli:
    def test_parser_accepts_the_flag(self):
        args = build_parser().parse_args(
            ["stream", "init", "--store", "s.db", "--name", "s",
             "--key-attribute", "first_name", "--similarity",
             "first_name=jaro_winkler", "--blocking-storage", "disk"]
        )
        assert args.blocking_storage == "disk"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["stream", "init", "--store", "s.db", "--name", "s",
                 "--key-attribute", "first_name",
                 "--blocking-storage", "floppy"]
            )

    def test_stream_init_persists_the_knob(self, tmp_path, capsys):
        from repro.storage.database import FrostStore
        from repro.streaming import open_session

        dataset = tmp_path / "d.csv"
        dataset.write_text(DATASET_CSV)
        store = tmp_path / "s.db"
        code = main([
            "stream", "init", "--store", str(store), "--name", "cli-disk",
            "--key-attribute", "first_name",
            "--similarity", "first_name=jaro_winkler",
            "--similarity", "last_name=jaro_winkler",
            "--blocking-storage", "disk",
        ])
        assert code == 0
        code = main([
            "stream", "ingest", "--store", str(store), "--name", "cli-disk",
            "--dataset", str(dataset),
        ])
        capsys.readouterr()
        assert code == 0
        with FrostStore(str(store)) as frost:
            session = open_session(frost, "cli-disk")
            assert session.status()["blocking_storage"] == "disk"

    def test_trace_parser_accepts_the_flag(self):
        args = build_parser().parse_args(
            ["trace", "--blocking-storage", "disk"]
        )
        assert args.blocking_storage == "disk"
