"""Disk-executed blockers: set identity with the in-memory path."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.blocking_disk import (
    DiskBlockingStore,
    disk_candidates,
    disk_lsh_blocking,
    disk_sorted_neighborhood,
    disk_standard_blocking,
    disk_token_blocking,
    plan_for_generator,
    run_disk_blocking,
    sorted_neighborhood_plan,
    token_plan,
)
from repro.core import Dataset, Record
from repro.datagen import make_person_benchmark
from repro.matching import blocking
from repro.matching.lsh import LshBlocking, LshConfig, lsh_blocking

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(scope="module")
def people():
    return make_person_benchmark(400, seed=29).dataset


@pytest.fixture
def messy():
    """Hand-crafted edge cases: None values, blanks, shared tokens."""
    rows = [
        ("r01", "smith john", "berlin"),
        ("r02", "smith jon", "berlin"),
        ("r03", "smyth john", None),
        ("r04", "jones mary", "hamburg"),
        ("r05", None, "hamburg"),
        ("r06", "   ", "berlin"),
        ("r07", "smith john", "berlin"),
        ("r08", "lee", ""),
    ]
    return Dataset(
        [Record(rid, {"name": name, "city": city}) for rid, name, city in rows],
        name="messy",
    )


class TestIdentity:
    def test_standard_blocking(self, people, messy):
        for dataset in (people, messy):
            for key in (
                blocking.first_token_key("name" if dataset is messy else "last_name"),
                blocking.soundex_key("name" if dataset is messy else "last_name"),
            ):
                assert disk_standard_blocking(dataset, key) == (
                    blocking.standard_blocking(dataset, key)
                )

    def test_token_blocking(self, people, messy):
        for dataset, cap in ((people, 40), (people, None), (messy, 3)):
            assert disk_token_blocking(dataset, max_block_size=cap) == (
                blocking.token_blocking(dataset, max_block_size=cap)
            )

    def test_sorted_neighborhood(self, people, messy):
        for dataset, window in ((people, 2), (people, 7), (messy, 3), (messy, 100)):
            key = blocking.first_token_key(
                "name" if dataset is messy else "last_name"
            )
            assert disk_sorted_neighborhood(dataset, key, window=window) == (
                blocking.sorted_neighborhood(dataset, key, window=window)
            )

    def test_lsh_blocking(self, people):
        config = LshConfig(num_perm=32, bands=8, max_block_size=25)
        assert disk_lsh_blocking(people, config) == (
            lsh_blocking(people, config)
        )

    def test_empty_dataset(self):
        empty = Dataset([])
        key = blocking.first_token_key("name")
        assert disk_standard_blocking(empty, key) == set()
        assert disk_token_blocking(empty) == set()
        assert disk_sorted_neighborhood(empty, key, window=3) == set()
        assert disk_lsh_blocking(empty) == set()

    def test_all_none_keys(self):
        dataset = Dataset([Record(f"r{i}", {"name": None}) for i in range(4)])
        key = blocking.first_token_key("name")
        assert disk_standard_blocking(dataset, key) == set()
        assert disk_sorted_neighborhood(dataset, key, window=4) == (
            blocking.sorted_neighborhood(dataset, key, window=4)
        )


class TestPlans:
    def test_lsh_plan_spills_signatures(self, people):
        config = LshConfig(num_perm=16, bands=4)
        with DiskBlockingStore() as store:
            generator = LshBlocking(config)
            plan = generator.disk_blocking_plan()
            run_disk_blocking(plan, people, store=store)
            # signatures persisted: 8 bytes per permutation per record
            blob = store.signature(1, next(iter(people)).record_id)
            assert blob is not None and len(blob) == 16 * 8

    def test_plan_for_generator_recognition(self):
        assert plan_for_generator(blocking.token_blocking).scheme == (
            "token_blocking"
        )
        assert plan_for_generator(LshBlocking()).scheme == "lsh_blocking"
        assert plan_for_generator(lambda dataset: set()) is None

    def test_disk_candidates_fallback_signal(self, messy):
        def custom(dataset):
            return set()

        assert disk_candidates(custom, messy) is None
        assert disk_candidates(blocking.token_blocking, messy) == (
            blocking.token_blocking(messy)
        )

    def test_window_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            sorted_neighborhood_plan(blocking.first_token_key("name"), window=1)

    def test_token_plan_config_round_trip(self):
        plan = token_plan(["name"], min_token_length=4, max_block_size=9)
        assert plan.config == {
            "attributes": ["name"],
            "min_token_length": 4,
            "max_block_size": 9,
        }


class TestHashSeedInvariance:
    """Disk and memory candidates agree under different hash seeds.

    MinHash band keys and Python set iteration both involve string
    hashing; the disk path must not leak any hash-order dependence into
    the candidate set.  Runs the same corpus under two PYTHONHASHSEED
    values in subprocesses and compares the sorted pair lists.
    """

    _SCRIPT = """
import sys
from repro.blocking_disk import disk_lsh_blocking, disk_token_blocking
from repro.datagen import make_person_benchmark
from repro.matching.blocking import token_blocking
from repro.matching.lsh import LshConfig, lsh_blocking

dataset = make_person_benchmark(250, seed=77).dataset
config = LshConfig(num_perm=16, bands=4, max_block_size=30)
disk = sorted(disk_lsh_blocking(dataset, config))
memory = sorted(lsh_blocking(dataset, config))
assert disk == memory, "lsh disk/memory diverged in-process"
disk_t = sorted(disk_token_blocking(dataset, max_block_size=40))
memory_t = sorted(token_blocking(dataset, max_block_size=40))
assert disk_t == memory_t, "token disk/memory diverged in-process"
for pair in disk + disk_t:
    print(pair[0], pair[1])
"""

    def _run(self, seed: str) -> str:
        result = subprocess.run(
            [sys.executable, "-c", self._SCRIPT],
            capture_output=True,
            text=True,
            env={"PYTHONHASHSEED": seed, "PYTHONPATH": str(SRC), "PATH": ""},
            check=False,
        )
        assert result.returncode == 0, result.stderr
        return result.stdout

    def test_candidates_identical_across_hash_seeds(self):
        assert self._run("1") == self._run("4242")
