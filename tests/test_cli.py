"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

DATASET = """id,name,city
r1,john smith,springfield
r2,jon smith,springfield
r3,mary jones,riverside
r4,mary jones,riverside
r5,alice brown,salem
"""

GOLD_PAIRS = """p1,p2
r1,r2
r3,r4
"""

GOLD_CLUSTERS = """id,cluster
r1,c1
r2,c1
r3,c2
r4,c2
r5,c3
"""

EXPERIMENT = """p1,p2,score
r1,r2,0.95
r3,r4,0.85
r1,r5,0.55
"""


@pytest.fixture
def files(tmp_path):
    (tmp_path / "d.csv").write_text(DATASET)
    (tmp_path / "g.csv").write_text(GOLD_PAIRS)
    (tmp_path / "gc.csv").write_text(GOLD_CLUSTERS)
    (tmp_path / "e.csv").write_text(EXPERIMENT)
    return tmp_path


def run(capsys, *argv):
    code = main([str(part) for part in argv])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--store", "x.db"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.workers == 4
        assert args.cache_size == 1024

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--store", "x.db", "--port", "0",
             "--workers", "8", "--cache-size", "64"]
        )
        assert args.port == 0
        assert args.workers == 8
        assert args.cache_size == 64

    def test_serve_requires_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])


class TestMetrics:
    def test_default_metrics(self, files, capsys):
        code, out, _ = run(
            capsys,
            "metrics",
            "--dataset", files / "d.csv",
            "--gold", files / "g.csv",
            "--experiment", files / "e.csv",
        )
        assert code == 0
        assert "precision" in out
        # 2 TP, 1 FP, 0 FN -> precision 2/3, recall 1
        assert "0.6667" in out
        assert "1.0000" in out

    def test_cluster_format_gold(self, files, capsys):
        code, out, _ = run(
            capsys,
            "metrics",
            "--dataset", files / "d.csv",
            "--gold", files / "gc.csv",
            "--gold-format", "clusters",
            "--experiment", files / "e.csv",
        )
        assert code == 0
        assert "0.6667" in out

    def test_custom_metric_selection(self, files, capsys):
        code, out, _ = run(
            capsys,
            "metrics",
            "--dataset", files / "d.csv",
            "--gold", files / "g.csv",
            "--experiment", files / "e.csv",
            "--metric", "matthews_correlation",
        )
        assert code == 0
        assert "matthews_correlation" in out

    def test_unknown_metric_fails_cleanly(self, files, capsys):
        code, _, err = run(
            capsys,
            "metrics",
            "--dataset", files / "d.csv",
            "--gold", files / "g.csv",
            "--experiment", files / "e.csv",
            "--metric", "nonsense",
        )
        assert code == 1
        assert "error:" in err

    def test_missing_file_fails_cleanly(self, files, capsys):
        code, _, err = run(
            capsys,
            "metrics",
            "--dataset", files / "missing.csv",
            "--gold", files / "g.csv",
            "--experiment", files / "e.csv",
        )
        assert code == 1
        assert "error:" in err


class TestDiagram:
    def test_prints_threshold_rows(self, files, capsys):
        code, out, _ = run(
            capsys,
            "diagram",
            "--dataset", files / "d.csv",
            "--gold", files / "g.csv",
            "--experiment", files / "e.csv",
            "--samples", "4",
        )
        assert code == 0
        lines = out.strip().splitlines()
        assert lines[0].startswith("threshold")
        assert len(lines) == 5  # header + 4 samples
        assert lines[1].startswith("inf")


class TestVenn:
    def test_region_sizes(self, files, capsys):
        code, out, _ = run(
            capsys,
            "venn",
            "--dataset", files / "d.csv",
            "--gold", files / "g.csv",
            "--experiment", files / "e.csv",
        )
        assert code == 0
        assert "gold ∩ e: 2" in out
        assert "e \\ gold: 1" in out


class TestProfile:
    def test_single_dataset(self, files, capsys):
        code, out, _ = run(capsys, "profile", "--dataset", files / "d.csv")
        assert code == 0
        assert "records=5" in out

    def test_two_datasets_report_vocabulary(self, files, capsys):
        code, out, _ = run(
            capsys,
            "profile",
            "--dataset", files / "d.csv",
            "--dataset", files / "d.csv",
        )
        assert code == 0
        assert "vocabulary similarity: 1.000" in out


class TestCategorize:
    def test_report_printed(self, files, capsys):
        code, out, _ = run(
            capsys,
            "categorize",
            "--dataset", files / "d.csv",
            "--gold", files / "g.csv",
            "--experiment", files / "e.csv",
        )
        assert code == 0
        assert "Error categorization" in out

    def test_separator_option(self, tmp_path, capsys):
        (tmp_path / "d.csv").write_text("id;name\nr1;a\nr2;b\n")
        (tmp_path / "g.csv").write_text("p1;p2\nr1;r2\n")
        (tmp_path / "e.csv").write_text("p1;p2;score\nr1;r2;0.9\n")
        code, out, _ = run(
            capsys,
            "--separator", ";",
            "metrics",
            "--dataset", tmp_path / "d.csv",
            "--gold", tmp_path / "g.csv",
            "--experiment", tmp_path / "e.csv",
        )
        assert code == 0
        assert "1.0000" in out


class TestEngine:
    def test_run_repeat_serves_from_cache(self, files, capsys):
        code, out, _ = run(
            capsys,
            "engine", "run",
            "--dataset", files / "d.csv",
            "--gold", files / "g.csv",
            "--experiment", files / "e.csv",
            "--repeat", "2",
        )
        assert code == 0
        assert "[computed]" in out
        assert "[cached]" in out
        assert "1 computed, 1 cached" in out

    def test_run_diagram_job(self, files, capsys):
        code, out, _ = run(
            capsys,
            "engine", "run",
            "--dataset", files / "d.csv",
            "--gold", files / "g.csv",
            "--experiment", files / "e.csv",
            "--job", "diagram",
            "--samples", "4",
        )
        assert code == 0
        assert "4 diagram points" in out

    def test_sweep_prints_threshold_table(self, files, capsys):
        code, out, _ = run(
            capsys,
            "engine", "sweep",
            "--dataset", files / "d.csv",
            "--gold", files / "g.csv",
            "--experiment", files / "e.csv",
            "--thresholds", "0.5:0.9:3",
        )
        assert code == 0
        lines = out.strip().splitlines()
        assert lines[0].startswith("threshold")
        assert any(line.startswith("0.5000") for line in lines)
        assert any(line.startswith("0.9000") for line in lines)

    def test_store_persists_cache_between_invocations(self, files, capsys):
        store = files / "cache.db"
        argv = [
            "engine", "run",
            "--dataset", files / "d.csv",
            "--gold", files / "g.csv",
            "--experiment", files / "e.csv",
            "--store", store,
        ]
        code, out, _ = run(capsys, *argv)
        assert code == 0 and "[computed]" in out
        code, out, _ = run(capsys, *argv)
        assert code == 0 and "[cached]" in out
        code, out, _ = run(capsys, "engine", "status", "--store", store)
        assert code == 0
        assert "cached results: 1" in out
        assert "metrics: 1" in out

    def test_degenerate_threshold_grid_deduplicates(self, files, capsys):
        code, out, _ = run(
            capsys,
            "engine", "sweep",
            "--dataset", files / "d.csv",
            "--gold", files / "g.csv",
            "--experiment", files / "e.csv",
            "--thresholds", "0.7:0.7:3",
        )
        assert code == 0
        lines = out.strip().splitlines()
        assert sum(line.startswith("0.7000") for line in lines) == 1

    def test_bad_threshold_grid_fails_cleanly(self, files, capsys):
        code, _, err = run(
            capsys,
            "engine", "sweep",
            "--dataset", files / "d.csv",
            "--gold", files / "g.csv",
            "--experiment", files / "e.csv",
            "--thresholds", "nope",
        )
        assert code == 1
        assert "error:" in err


class TestTrace:
    def test_traced_run_prints_span_tree_and_metrics(self, capsys):
        code, out, _ = run(
            capsys,
            "trace", "--generate", "150", "--workers", "2", "--repeat", "2",
        )
        assert code == 0
        # the span tree covers submission, engine jobs, every pipeline
        # stage, and the process-pool comparison shards
        for name in (
            "trace.run",
            "engine.job",
            "pipeline.run",
            "pipeline.candidates",
            "pipeline.similarity",
            "comparison.sharded",
            "comparison.shard",
            "pipeline.clustering",
        ):
            assert name in out, f"span {name!r} missing from trace output"
        # the chained re-run is served from the engine cache, visible
        # both as a span annotation and as a registry counter
        assert "cached=True" in out
        assert "frost_engine_cache_hits_total 1" in out
        assert "# TYPE frost_engine_cache_hits_total counter" in out

    def test_traced_csv_run_with_gold_metrics_job(self, files, capsys):
        code, out, _ = run(
            capsys,
            "trace",
            "--dataset", files / "d.csv",
            "--gold", files / "g.csv",
            "--similarity", "name=jaro_winkler",
            "--key-attribute", "name",
            "--repeat", "1",
        )
        assert code == 0
        assert "trace.run" in out
        assert "engine.job" in out
        assert "job=trace:metrics" in out

    def test_output_directory_receives_spans_and_metrics(self, tmp_path, capsys):
        import json

        code, out, _ = run(
            capsys,
            "trace", "--generate", "80", "--repeat", "1",
            "--output", tmp_path / "telemetry",
        )
        assert code == 0
        spans = [
            json.loads(line)
            for line in (tmp_path / "telemetry" / "spans.jsonl")
            .read_text().splitlines()
        ]
        assert any(row["name"] == "pipeline.run" for row in spans)
        metrics = json.loads(
            (tmp_path / "telemetry" / "metrics.json").read_text()
        )
        assert metrics["frost_blocking_candidates_total"]["value"] > 0

    def test_trace_leaves_the_tracer_disabled(self, capsys):
        from repro.telemetry import get_tracer

        code, _, _ = run(capsys, "trace", "--generate", "60", "--repeat", "1")
        assert code == 0
        assert get_tracer().enabled is False

    def test_generate_and_dataset_are_mutually_exclusive(self, files, capsys):
        code, _, err = run(
            capsys, "trace", "--generate", "50", "--dataset", files / "d.csv"
        )
        assert code == 1
        assert "error:" in err
        code, _, err = run(capsys, "trace")
        assert code == 1
        assert "error:" in err


class TestTelemetryWarehouse:
    @pytest.fixture
    def warehouse_db(self, tmp_path, capsys):
        """A warehouse holding two traced, profiled runs."""
        db = tmp_path / "warehouse.db"
        for name in ("baseline", "candidate"):
            code, out, _ = run(
                capsys,
                "trace", "--generate", "80", "--repeat", "1",
                "--profile", "--store", db, "--run-name", name,
            )
            assert code == 0
            assert f"recorded in {db}" in out
        return db

    def test_trace_store_records_and_list_shows_runs(
        self, warehouse_db, capsys
    ):
        code, out, _ = run(capsys, "telemetry", "list", "--store", warehouse_db)
        assert code == 0
        lines = out.strip().splitlines()
        assert len(lines) == 2
        # newest first, with span counts and profiler attribution
        assert "candidate" in lines[0]
        assert "baseline" in lines[1]
        assert "spans" in lines[0]

    def test_show_renders_tree_metrics_and_profile(self, warehouse_db, capsys):
        code, out, _ = run(
            capsys, "telemetry", "show", "--store", warehouse_db, "baseline"
        )
        assert code == 0
        assert "trace.run" in out
        assert "pipeline.run" in out
        assert "frost_blocking_candidates_total" in out

    def test_slowest_spans_globally_and_scoped(self, warehouse_db, capsys):
        code, out, _ = run(
            capsys, "telemetry", "slowest", "--store", warehouse_db,
            "--limit", "3",
        )
        assert code == 0
        assert len(out.strip().splitlines()) == 3
        assert "ms" in out
        code, out, _ = run(
            capsys, "telemetry", "slowest", "--store", warehouse_db,
            "--run", "candidate", "--limit", "2",
        )
        assert code == 0
        assert all("(candidate)" in line for line in out.strip().splitlines())

    def test_diff_reports_per_stage_deltas(self, warehouse_db, capsys):
        code, out, _ = run(
            capsys, "telemetry", "diff", "--store", warehouse_db,
            "baseline", "candidate",
        )
        assert code == 0
        assert "per-stage wall time" in out
        assert "pipeline.similarity" in out
        assert "->" in out

    def test_diff_against_itself_is_clean(self, warehouse_db, capsys):
        code, out, _ = run(
            capsys, "telemetry", "diff", "--store", warehouse_db,
            "baseline", "baseline",
        )
        assert code == 0
        assert "only in" not in out

    def test_prune_keeps_newest(self, warehouse_db, capsys):
        code, out, _ = run(
            capsys, "telemetry", "prune", "--store", warehouse_db,
            "--keep", "1",
        )
        assert code == 0
        assert "pruned 1 run(s), 1 kept" in out
        code, out, _ = run(capsys, "telemetry", "list", "--store", warehouse_db)
        assert code == 0
        assert "candidate" in out
        assert "baseline" not in out

    def test_prune_requires_a_policy(self, warehouse_db, capsys):
        code, _, err = run(
            capsys, "telemetry", "prune", "--store", warehouse_db
        )
        assert code == 1
        assert "--keep and/or --older-than" in err

    def test_missing_store_fails_cleanly(self, tmp_path, capsys):
        code, _, err = run(
            capsys, "telemetry", "list", "--store", tmp_path / "ghost.db"
        )
        assert code == 1
        assert "does not exist" in err

    def test_unknown_run_fails_cleanly(self, warehouse_db, capsys):
        code, _, err = run(
            capsys, "telemetry", "show", "--store", warehouse_db, "ghost"
        )
        assert code == 1
        assert "no telemetry run" in err
